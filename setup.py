"""Setup shim enabling legacy editable installs on offline machines.

The sandbox has setuptools but no ``wheel`` package, so PEP 517 editable
builds (which shell out to ``bdist_wheel``) fail.  ``setup.py``-based
installs work everywhere: ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
