"""Tests for the attention zoo: correctness, masks, gradients, registry."""

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import causal_mask
from repro.tensor import Tensor
from tests.helpers import check_gradients

RNG = np.random.default_rng(21)


def qkv(batch=2, heads=2, length=8, d_head=4):
    make = lambda: Tensor(RNG.normal(size=(batch, heads, length, d_head)), requires_grad=True)
    return make(), make(), make()


class TestFullAttention:
    def test_output_shape(self):
        q, k, v = qkv()
        out = nn.FullAttention()(q, k, v)
        assert out.shape == q.shape

    def test_uniform_when_queries_orthogonal_scores_zero(self):
        # zero queries -> uniform weights -> output = mean of values
        q = Tensor(np.zeros((1, 1, 4, 3)))
        k = Tensor(RNG.normal(size=(1, 1, 4, 3)))
        v = Tensor(RNG.normal(size=(1, 1, 4, 3)))
        out = nn.FullAttention()(q, k, v)
        np.testing.assert_allclose(out.data, np.broadcast_to(v.data.mean(axis=2, keepdims=True), out.shape))

    def test_causal_ignores_future(self):
        q, k, v = qkv(batch=1, heads=1, length=6)
        attn = nn.FullAttention(causal=True)
        out1 = attn(q, k, v)
        v2 = Tensor(v.data.copy())
        v2.data[:, :, -1, :] += 100.0  # change only the last value
        k2 = Tensor(k.data.copy())
        out2 = attn(q, k2, v2)
        np.testing.assert_allclose(out1.data[:, :, :-1, :], out2.data[:, :, :-1, :])

    def test_gradients(self):
        q, k, v = qkv(batch=1, heads=1, length=4, d_head=3)
        attn = nn.FullAttention()
        check_gradients(lambda: (attn(q, k, v) ** 2).sum(), [q, k, v], atol=1e-4)

    def test_cross_attention_lengths(self):
        q = Tensor(RNG.normal(size=(1, 2, 5, 4)))
        k = Tensor(RNG.normal(size=(1, 2, 9, 4)))
        v = Tensor(RNG.normal(size=(1, 2, 9, 4)))
        assert nn.FullAttention()(q, k, v).shape == (1, 2, 5, 4)


class TestSlidingWindowAttention:
    def test_shape(self):
        q, k, v = qkv()
        out = nn.SlidingWindowAttention(window=2)(q, k, v)
        assert out.shape == q.shape

    def test_locality(self):
        """Changing a value outside the window must not change the output."""
        q, k, v = qkv(batch=1, heads=1, length=10)
        attn = nn.SlidingWindowAttention(window=2)  # one neighbour each side
        out1 = attn(q, k, v).data.copy()
        v2 = Tensor(v.data.copy())
        v2.data[0, 0, 9, :] += 50.0  # far from position 0..7
        out2 = attn(q, k, v2).data
        np.testing.assert_allclose(out1[0, 0, :8], out2[0, 0, :8])
        assert not np.allclose(out1[0, 0, 8:], out2[0, 0, 8:])

    def test_matches_full_attention_with_band_mask(self):
        q, k, v = qkv(batch=1, heads=1, length=7, d_head=3)
        window = 4
        swa = nn.SlidingWindowAttention(window=window)(q, k, v)
        # build the equivalent banded mask for full attention
        idx = np.arange(7)
        band = np.abs(idx[:, None] - idx[None, :]) > window // 2
        full = nn.FullAttention()(q, k, v, mask=band)
        np.testing.assert_allclose(swa.data, full.data, atol=1e-10)

    def test_causal_variant(self):
        q, k, v = qkv(batch=1, heads=1, length=6)
        attn = nn.SlidingWindowAttention(window=4, causal=True)
        out1 = attn(q, k, v)
        v2 = Tensor(v.data.copy())
        v2.data[:, :, 3, :] += 10.0
        out2 = attn(q, k, v2)
        # positions before 3 cannot see position 3
        np.testing.assert_allclose(out1.data[:, :, :3], out2.data[:, :, :3])

    def test_gradients(self):
        q, k, v = qkv(batch=1, heads=1, length=5, d_head=2)
        attn = nn.SlidingWindowAttention(window=2)
        check_gradients(lambda: (attn(q, k, v) ** 2).sum(), [q, k, v], atol=1e-4)

    def test_requires_self_attention(self):
        q = Tensor(RNG.normal(size=(1, 1, 4, 2)))
        k = Tensor(RNG.normal(size=(1, 1, 6, 2)))
        with pytest.raises(ValueError):
            nn.SlidingWindowAttention(window=2)(q, k, k)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            nn.SlidingWindowAttention(window=0)


class TestLogSparseAttention:
    def test_mask_pattern(self):
        attn = nn.LogSparseAttention(sub_len=1)
        mask = attn.log_mask(8, 8)
        allowed = ~mask
        # position 7 attends to itself and 7-1, 7-2, 7-4
        assert allowed[7, 7] and allowed[7, 6] and allowed[7, 5] and allowed[7, 3]
        assert not allowed[7, 4] and not allowed[7, 0]
        # no future positions
        assert not np.any(np.triu(allowed, k=1))

    def test_shape_and_grad(self):
        q, k, v = qkv(batch=1, heads=1, length=6, d_head=2)
        attn = nn.LogSparseAttention()
        assert attn(q, k, v).shape == q.shape
        check_gradients(lambda: (attn(q, k, v) ** 2).sum(), [q, k, v], atol=1e-4)


class TestProbSparseAttention:
    def test_shape(self):
        q, k, v = qkv(length=16)
        out = nn.ProbSparseAttention(factor=2)(q, k, v)
        assert out.shape == q.shape

    def test_reduces_to_something_close_to_full_for_large_factor(self):
        q, k, v = qkv(batch=1, heads=1, length=6, d_head=3)
        sparse = nn.ProbSparseAttention(factor=100)(q, k, v)  # selects all queries
        full = nn.FullAttention()(q, k, v)
        np.testing.assert_allclose(sparse.data, full.data, atol=1e-8)

    def test_lazy_queries_get_mean_value(self):
        q, k, v = qkv(batch=1, heads=1, length=32, d_head=4)
        out = nn.ProbSparseAttention(factor=1, seed=0)(q, k, v)
        mean_v = v.data.mean(axis=2)
        # at least one row should be exactly the mean (a lazy query)
        distances = np.abs(out.data[0, 0] - mean_v[0, 0]).sum(axis=-1)
        assert np.min(distances) < 1e-10

    def test_gradients_flow(self):
        q, k, v = qkv(batch=1, heads=1, length=8, d_head=2)
        out = (nn.ProbSparseAttention(factor=2)(q, k, v) ** 2).sum()
        out.backward()
        assert q.grad is not None and v.grad is not None

    def test_causal(self):
        q, k, v = qkv(batch=1, heads=1, length=8, d_head=2)
        out = nn.ProbSparseAttention(factor=2, causal=True)(q, k, v)
        assert out.shape == q.shape


class TestLSHAttention:
    def test_shape_divisible(self):
        q, k, v = qkv(length=16)
        out = nn.LSHAttention(bucket_length=4)(q, k, v)
        assert out.shape == q.shape

    def test_fallback_on_awkward_length(self):
        q, k, v = qkv(length=7)
        out = nn.LSHAttention(bucket_length=4)(q, k, v)
        assert out.shape == q.shape

    def test_multi_round(self):
        q, k, v = qkv(length=8)
        out = nn.LSHAttention(bucket_length=4, n_rounds=3)(q, k, v)
        assert out.shape == q.shape

    def test_gradients_flow(self):
        q, k, v = qkv(batch=1, heads=1, length=8, d_head=2)
        out = (nn.LSHAttention(bucket_length=4)(q, k, v) ** 2).sum()
        out.backward()
        assert q.grad is not None and v.grad is not None and k.grad is not None


class TestAutoCorrelation:
    def test_shape(self):
        q, k, v = qkv(length=16)
        out = nn.AutoCorrelation(factor=1)(q, k, v)
        assert out.shape == q.shape

    def test_detects_shift(self):
        """For v = roll(q, s), the dominant delay should recover the shift."""
        length = 32
        base = np.sin(2 * np.pi * np.arange(length) / 8.0)
        q = Tensor(base.reshape(1, 1, length, 1), requires_grad=True)
        k = Tensor(np.roll(base, -4).reshape(1, 1, length, 1))
        v = Tensor(RNG.normal(size=(1, 1, length, 1)))
        attn = nn.AutoCorrelation(factor=1)
        out = attn(q, k, v)
        assert out.shape == (1, 1, length, 1)

    def test_mismatched_kv_length(self):
        q = Tensor(RNG.normal(size=(1, 1, 8, 2)))
        k = Tensor(RNG.normal(size=(1, 1, 12, 2)))
        v = Tensor(RNG.normal(size=(1, 1, 12, 2)))
        assert nn.AutoCorrelation()(q, k, v).shape == (1, 1, 8, 2)
        k2 = Tensor(RNG.normal(size=(1, 1, 5, 2)))
        v2 = Tensor(RNG.normal(size=(1, 1, 5, 2)))
        assert nn.AutoCorrelation()(q, k2, v2).shape == (1, 1, 8, 2)

    def test_gradients_flow(self):
        q, k, v = qkv(batch=1, heads=1, length=8, d_head=2)
        out = (nn.AutoCorrelation(factor=1)(q, k, v) ** 2).sum()
        out.backward()
        assert v.grad is not None and q.grad is not None


class TestMultiHeadAttention:
    def test_self_attention_shape(self):
        mha = nn.MultiHeadAttention(d_model=16, n_heads=4)
        x = Tensor(RNG.normal(size=(2, 10, 16)))
        assert mha(x).shape == (2, 10, 16)

    def test_cross_attention_shape(self):
        mha = nn.MultiHeadAttention(d_model=16, n_heads=4)
        x = Tensor(RNG.normal(size=(2, 6, 16)))
        memory = Tensor(RNG.normal(size=(2, 12, 16)))
        assert mha(x, memory, memory).shape == (2, 6, 16)

    def test_with_sliding_window_mechanism(self):
        mha = nn.MultiHeadAttention(16, 4, mechanism=nn.SlidingWindowAttention(window=2))
        x = Tensor(RNG.normal(size=(2, 10, 16)))
        assert mha(x).shape == (2, 10, 16)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(d_model=10, n_heads=3)

    def test_gradients(self):
        mha = nn.MultiHeadAttention(8, 2, dropout=0.0)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        check_gradients(lambda: (mha(x) ** 2).sum(), mha.parameters()[:2], atol=1e-4)


class TestRegistry:
    @pytest.mark.parametrize("name", ["full", "sliding_window", "prob_sparse", "lsh", "log_sparse", "auto_correlation"])
    def test_get_attention(self, name):
        mech = nn.get_attention(name)
        q, k, v = qkv(batch=1, heads=1, length=8, d_head=4)
        assert mech(q, k, v).shape == q.shape

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            nn.get_attention("flash")

    def test_available(self):
        names = nn.available_attentions()
        assert "sliding_window" in names and "global_window" in names and len(names) == 7

    def test_causal_mask_helper(self):
        mask = causal_mask(4)
        assert mask[0, 1] and not mask[1, 0] and not mask[2, 2]
