"""Unit tests for nn layers: shapes, gradients, modes, serialization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, functional as F
from tests.helpers import check_gradients

RNG = np.random.default_rng(11)


def randt(*shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestLinear:
    def test_shape(self):
        layer = nn.Linear(4, 7)
        out = layer(Tensor(RNG.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_batched_time_input(self):
        layer = nn.Linear(4, 7)
        out = layer(Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_gradients(self):
        layer = nn.Linear(3, 2)
        x = Tensor(RNG.normal(size=(4, 3)))
        check_gradients(lambda: (layer(x) ** 2).sum(), layer.parameters())

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert len(layer.parameters()) == 1


class TestConv1d:
    def test_same_padding_keeps_length(self):
        conv = nn.Conv1d(3, 8, kernel_size=3, padding="same")
        out = conv(Tensor(RNG.normal(size=(2, 10, 3))))
        assert out.shape == (2, 10, 8)

    def test_circular_padding(self):
        conv = nn.Conv1d(2, 4, kernel_size=3, padding="same", padding_mode="circular")
        out = conv(Tensor(RNG.normal(size=(1, 6, 2))))
        assert out.shape == (1, 6, 4)

    def test_gradients(self):
        conv = nn.Conv1d(2, 3, kernel_size=3, padding="same")
        x = Tensor(RNG.normal(size=(2, 5, 2)))
        check_gradients(lambda: (conv(x) ** 2).sum(), conv.parameters())

    def test_even_kernel_same_padding_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv1d(2, 2, kernel_size=4, padding="same")


class TestNorms:
    def test_layernorm_normalizes(self):
        ln = nn.LayerNorm(16)
        x = Tensor(RNG.normal(3.0, 5.0, size=(4, 9, 16)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradients(self):
        ln = nn.LayerNorm(5)
        x = randt(3, 5)
        check_gradients(lambda: (ln(x) ** 2).sum(), [x] + ln.parameters(), atol=1e-4)

    def test_batchnorm_train_vs_eval(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(RNG.normal(2.0, 3.0, size=(8, 10, 4)))
        out_train = bn(x)
        np.testing.assert_allclose(out_train.data.mean(axis=(0, 1)), 0.0, atol=1e-7)
        bn.eval()
        out_eval = bn(x)
        assert out_eval.shape == x.shape
        assert not np.allclose(out_eval.data, out_train.data)


class TestDropout:
    def test_train_mode_drops(self):
        drop = nn.Dropout(0.5, seed=3)
        x = Tensor(np.ones((100, 100)))
        out = drop(x)
        frac_zero = np.mean(out.data == 0.0)
        assert 0.4 < frac_zero < 0.6
        # inverted scaling preserves expectation
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_eval_mode_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = Tensor(RNG.normal(size=(5, 5)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestMovingAverage:
    def test_constant_invariant(self):
        ma = nn.MovingAverage(7)
        x = Tensor(np.full((2, 20, 3), 4.2))
        np.testing.assert_allclose(ma(x).data, 4.2)

    def test_removes_high_frequency(self):
        t = np.arange(64)
        series = np.sin(2 * np.pi * t / 32) + 0.5 * np.sin(2 * np.pi * t / 4)
        x = Tensor(series.reshape(1, -1, 1))
        smooth = nn.MovingAverage(4)(x).data.ravel()
        # the fast period-4 (bin 16) component should be attenuated in the
        # trend, and the slow bin-2 component removed from the residual
        residual = series - smooth
        assert np.abs(np.fft.rfft(smooth)[16]) < 0.1 * np.abs(np.fft.rfft(series)[16])
        assert np.abs(np.fft.rfft(residual)[2]) < 0.2 * np.abs(np.fft.rfft(series)[2])

    def test_kernel_one_identity(self):
        ma = nn.MovingAverage(1)
        x = randt(1, 5, 2)
        np.testing.assert_array_equal(ma(x).data, x.data)


class TestRNN:
    def test_gru_shapes(self):
        gru = nn.GRU(input_size=3, hidden_size=6, num_layers=2)
        out, states = gru(Tensor(RNG.normal(size=(4, 7, 3))))
        assert out.shape == (4, 7, 6)
        assert len(states) == 2
        assert states[0].shape == (4, 6)

    def test_gru_final_state_matches_last_output(self):
        gru = nn.GRU(3, 5)
        out, states = gru(Tensor(RNG.normal(size=(2, 6, 3))))
        np.testing.assert_allclose(out.data[:, -1, :], states[-1].data)

    def test_gru_gradients(self):
        cell = nn.GRUCell(2, 3)
        x = Tensor(RNG.normal(size=(2, 4, 2)))
        check_gradients(lambda: (cell(x)[0] ** 2).sum(), cell.parameters(), atol=1e-4)

    def test_gru_initial_state(self):
        cell = nn.GRUCell(2, 3)
        x = Tensor(RNG.normal(size=(2, 4, 2)))
        h0 = Tensor(RNG.normal(size=(2, 3)))
        out_default, _ = cell(x)
        out_seeded, _ = cell(x, h0)
        assert not np.allclose(out_default.data, out_seeded.data)

    def test_lstm_shapes(self):
        lstm = nn.LSTM(3, 6, num_layers=2)
        out, states = lstm(Tensor(RNG.normal(size=(2, 5, 3))))
        assert out.shape == (2, 5, 6)
        h, c = states[-1]
        assert h.shape == (2, 6) and c.shape == (2, 6)

    def test_lstm_gradients(self):
        cell = nn.LSTMCell(2, 3)
        x = Tensor(RNG.normal(size=(1, 3, 2)))
        check_gradients(lambda: (cell(x)[0] ** 2).sum(), cell.parameters(), atol=1e-4)


class TestEmbeddings:
    def test_data_embedding_shape(self):
        emb = nn.DataEmbedding(c_in=7, d_model=16, d_time=5)
        x = Tensor(RNG.normal(size=(2, 12, 7)))
        marks = Tensor(RNG.normal(size=(2, 12, 5)))
        assert emb(x, marks).shape == (2, 12, 16)

    def test_data_embedding_without_marks(self):
        emb = nn.DataEmbedding(c_in=3, d_model=8)
        x = Tensor(RNG.normal(size=(1, 6, 3)))
        assert emb(x).shape == (1, 6, 8)

    def test_positional_encoding_values(self):
        pe = nn.PositionalEncoding(4, max_len=10)
        x = Tensor(np.zeros((1, 10, 4)))
        out = pe(x).data[0]
        np.testing.assert_allclose(out[0], [0.0, 1.0, 0.0, 1.0], atol=1e-12)
        assert np.all(np.abs(out) <= 1.0)

    def test_lookup_embedding(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[1], out.data[2])


class TestModuleInfrastructure:
    def test_parameter_registration(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        assert len(model.parameters()) == 4

    def test_named_parameters_unique(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.Linear(4, 2))
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.Linear(4, 2))
        state = model.state_dict()
        clone = nn.Sequential(nn.Linear(3, 4), nn.Linear(4, 2))
        clone.load_state_dict(state)
        x = Tensor(RNG.normal(size=(2, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_mismatch_raises(self):
        model = nn.Linear(3, 4)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 4))})  # missing bias... extra keys

    def test_save_load_file(self, tmp_path):
        model = nn.Linear(3, 4)
        path = str(tmp_path / "model.npz")
        model.save(path)
        clone = nn.Linear(3, 4)
        clone.load(path)
        np.testing.assert_allclose(model.weight.data, clone.weight.data)

    def test_num_parameters(self):
        model = nn.Linear(3, 4)
        assert model.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self):
        model = nn.Linear(3, 1)
        out = model(Tensor(RNG.normal(size=(2, 3)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_get_activation_unknown(self):
        with pytest.raises(ValueError):
            nn.get_activation("swishy")

    def test_feedforward(self):
        ff = nn.FeedForward(8, 32, dropout=0.0)
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert ff(x).shape == (2, 5, 8)
