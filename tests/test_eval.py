"""Tests for the complexity and uncertainty evaluation utilities."""

import numpy as np
import pytest

from repro.eval import (
    bands_from_samples,
    blend_uncertainty,
    efficiency_table,
    evaluate_bands,
    measure_attention,
    scaling_exponent,
)

RNG = np.random.default_rng(55)


class TestComplexityProbe:
    def test_measure_returns_points(self):
        points = measure_attention("sliding_window", lengths=[16, 32], window=2, repeats=1)
        assert len(points) == 2
        assert all(p.seconds > 0 and p.peak_bytes > 0 for p in points)
        assert [p.length for p in points] == [16, 32]

    def test_efficiency_table_all_mechanisms(self):
        table = efficiency_table(lengths=[16, 32], repeats=1)
        assert set(table) == {"sliding_window", "full", "prob_sparse", "lsh", "log_sparse", "auto_correlation"}

    def test_full_attention_memory_grows_quadratically(self):
        points = measure_attention("full", lengths=[64, 256], repeats=1)
        ratio = points[1].peak_bytes / points[0].peak_bytes
        assert ratio > 6  # 16x length^2 ratio, generous lower bound

    def test_sliding_window_memory_grows_linearly(self):
        points = measure_attention("sliding_window", lengths=[64, 256], window=2, repeats=1)
        ratio = points[1].peak_bytes / points[0].peak_bytes
        assert ratio < 8  # 4x for linear; must stay far below the 16x quadratic

    def test_scaling_exponent(self):
        from repro.eval.complexity import EfficiencyPoint

        linear = [EfficiencyPoint("x", 2**i, 2.0**i, 0) for i in range(3, 7)]
        assert scaling_exponent(linear) == pytest.approx(1.0)
        quadratic = [EfficiencyPoint("x", 2**i, 4.0**i, 0) for i in range(3, 7)]
        assert scaling_exponent(quadratic) == pytest.approx(2.0)


class TestUncertainty:
    def _samples(self, spread=1.0):
        base = RNG.normal(size=(1, 2, 6, 3))
        noise = RNG.normal(scale=spread, size=(50, 2, 6, 3))
        return base + noise

    def test_bands_shapes(self):
        bands = bands_from_samples(self._samples())
        assert bands.point.shape == (2, 6, 3)
        assert set(bands.lower) == {0.8, 0.9, 0.95}
        assert np.all(bands.lower[0.9] <= bands.upper[0.9])

    def test_wider_level_wider_band(self):
        bands = bands_from_samples(self._samples())
        assert bands.width(0.95) > bands.width(0.8)

    def test_coverage_of_gaussian(self):
        samples = RNG.normal(size=(2000, 1, 4, 1))
        bands = bands_from_samples(samples)
        target = RNG.normal(size=(1, 4, 1))
        cov = bands.coverage(np.zeros((1, 4, 1)), 0.95)
        assert cov == 1.0  # zero is the center of the distribution

    def test_bad_ndim_rejected(self):
        with pytest.raises(ValueError):
            bands_from_samples(np.zeros((10, 4, 1)))

    def test_blend_lambda_widens_bands(self):
        """Smaller lambda -> flow weighted more -> wider bands (Fig. 6)."""
        y_out = RNG.normal(size=(2, 6, 3))
        flow = self._samples(spread=2.0)
        tight = blend_uncertainty(y_out, flow, lam=0.95)
        wide = blend_uncertainty(y_out, flow, lam=0.5)
        assert wide.width(0.9) > tight.width(0.9)

    def test_blend_invalid_lambda(self):
        with pytest.raises(ValueError):
            blend_uncertainty(np.zeros((1, 2, 1)), np.zeros((3, 1, 2, 1)), lam=1.5)

    def test_evaluate_bands_keys(self):
        bands = bands_from_samples(self._samples())
        target = RNG.normal(size=(2, 6, 3))
        out = evaluate_bands(bands, target)
        assert "mse" in out and "coverage@0.9" in out and "width@0.95" in out
        assert 0.0 <= out["coverage@0.9"] <= 1.0
