"""Optimizer/scheduler/clipping/early-stopping tests."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor


def quadratic_problem():
    """Convex problem: minimize ||W x - y||^2 for fixed x, y."""
    rng = np.random.default_rng(5)
    model = nn.Linear(4, 3)
    x = Tensor(rng.normal(size=(16, 4)))
    true_w = rng.normal(size=(4, 3))
    y = Tensor(x.data @ true_w + 0.5)
    return model, x, y


def run_steps(model, x, y, optimizer, steps):
    losses = []
    for _ in range(steps):
        optimizer.zero_grad()
        pred = model(x)
        loss = ((pred - y) ** 2).mean()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


class TestSGD:
    def test_converges(self):
        model, x, y = quadratic_problem()
        losses = run_steps(model, x, y, optim.SGD(model.parameters(), lr=0.05), 200)
        assert losses[-1] < 0.01 * losses[0]

    def test_momentum_speeds_convergence(self):
        model1, x, y = quadratic_problem()
        plain = run_steps(model1, x, y, optim.SGD(model1.parameters(), lr=0.02), 50)
        model2, _, _ = quadratic_problem()
        momentum = run_steps(model2, x, y, optim.SGD(model2.parameters(), lr=0.02, momentum=0.9), 50)
        assert momentum[-1] < plain[-1]

    def test_weight_decay_shrinks_weights(self):
        model = nn.Linear(3, 3, bias=False)
        model.weight.data[...] = 10.0
        opt = optim.SGD([model.weight], lr=0.1, weight_decay=1.0)
        model.weight.grad = np.zeros_like(model.weight.data)
        opt.step()
        assert np.all(np.abs(model.weight.data) < 10.0)


class TestAdam:
    def test_converges(self):
        model, x, y = quadratic_problem()
        losses = run_steps(model, x, y, optim.Adam(model.parameters(), lr=0.05), 300)
        assert losses[-1] < 0.01 * losses[0]

    def test_skips_params_without_grad(self):
        a, b = nn.Parameter(np.ones(3)), nn.Parameter(np.ones(3))
        opt = optim.Adam([a, b], lr=0.1)
        a.grad = np.ones(3)
        opt.step()
        np.testing.assert_array_equal(b.data, np.ones(3))
        assert not np.allclose(a.data, np.ones(3))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            optim.Adam([], lr=0.1)

    def test_adamw_decay(self):
        p = nn.Parameter(np.full(3, 5.0))
        opt = optim.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(3)
        opt.step()
        assert np.all(p.data < 5.0)


class TestSchedulers:
    def test_step_lr(self):
        p = nn.Parameter(np.ones(1))
        opt = optim.SGD([p], lr=1.0)
        sched = optim.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        p = nn.Parameter(np.ones(1))
        opt = optim.SGD([p], lr=1.0)
        sched = optim.ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_lambda_lr(self):
        p = nn.Parameter(np.ones(1))
        opt = optim.SGD([p], lr=2.0)
        sched = optim.LambdaLR(opt, lambda epoch: 1.0 / (1 + epoch))
        sched.step()
        assert opt.lr == pytest.approx(1.0)


class TestClipping:
    def test_clip_reduces_norm(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = optim.clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        optim.clip_grad_norm([p], max_norm=100.0)
        np.testing.assert_allclose(p.grad, 0.1)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = optim.EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.1)
        assert not stopper.should_stop
        stopper.update(1.2)
        assert stopper.should_stop

    def test_improvement_resets_counter(self):
        stopper = optim.EarlyStopping(patience=2)
        stopper.update(1.0)
        stopper.update(1.1)
        stopper.update(0.5)
        stopper.update(0.6)
        assert not stopper.should_stop

    def test_keeps_best_state(self):
        stopper = optim.EarlyStopping(patience=5)
        stopper.update(1.0, state={"w": np.array([1.0])})
        stopper.update(2.0, state={"w": np.array([2.0])})
        np.testing.assert_array_equal(stopper.best_state["w"], [1.0])
        assert stopper.best_loss == 1.0
