"""Tests for probabilistic metrics (CRPS, pinball) and rolling forecasts."""

import numpy as np
import pytest

from repro.training import (
    calibration_error,
    crps_from_samples,
    pinball_loss,
    quantile_scores,
    rolling_forecast,
)

RNG = np.random.default_rng(88)


class TestCRPS:
    def test_perfect_deterministic_forecast(self):
        """All samples equal to the target -> CRPS 0."""
        target = RNG.normal(size=(3, 4))
        samples = np.repeat(target[None], 10, axis=0)
        assert crps_from_samples(samples, target) == pytest.approx(0.0, abs=1e-12)

    def test_crps_penalizes_bias(self):
        target = np.zeros((100,))
        good = RNG.normal(0.0, 1.0, size=(500, 100))
        biased = RNG.normal(3.0, 1.0, size=(500, 100))
        assert crps_from_samples(good, target) < crps_from_samples(biased, target)

    def test_crps_rewards_sharpness_when_centered(self):
        target = np.zeros((200,))
        sharp = RNG.normal(0.0, 0.2, size=(500, 200))
        diffuse = RNG.normal(0.0, 3.0, size=(500, 200))
        assert crps_from_samples(sharp, target) < crps_from_samples(diffuse, target)

    def test_crps_matches_gaussian_closed_form(self):
        """CRPS of N(0,1) vs y=0 is sigma*(2/sqrt(2pi) - 1/sqrt(pi)) ~ 0.2337."""
        samples = RNG.normal(0.0, 1.0, size=(20000, 50))
        value = crps_from_samples(samples, np.zeros(50))
        expected = 2 / np.sqrt(2 * np.pi) - 1 / np.sqrt(np.pi)
        assert value == pytest.approx(expected, rel=0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            crps_from_samples(np.zeros((10, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            crps_from_samples(np.zeros((1, 3)), np.zeros(3))


class TestPinball:
    def test_median_pinball_is_half_mae(self):
        pred, target = RNG.normal(size=50), RNG.normal(size=50)
        assert pinball_loss(pred, target, 0.5) == pytest.approx(0.5 * np.mean(np.abs(pred - target)))

    def test_asymmetry(self):
        target = np.ones(100)
        under = np.zeros(100)  # prediction below target
        # q=0.9 punishes under-prediction harder than q=0.1
        assert pinball_loss(under, target, 0.9) > pinball_loss(under, target, 0.1)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            pinball_loss(np.zeros(3), np.zeros(3), 1.0)

    def test_quantile_scores_keys(self):
        samples = RNG.normal(size=(200, 6, 2))
        target = RNG.normal(size=(6, 2))
        scores = quantile_scores(samples, target, quantiles=(0.1, 0.9))
        assert set(scores) == {0.1, 0.9}
        assert all(v >= 0 for v in scores.values())


class TestCalibrationError:
    def test_well_calibrated_near_zero(self):
        samples = RNG.normal(size=(4000, 30, 5))
        target = RNG.normal(size=(30, 5))
        assert calibration_error(samples, target) < 0.08

    def test_overconfident_large_error(self):
        samples = RNG.normal(0, 0.05, size=(2000, 30, 5))
        target = RNG.normal(size=(30, 5))
        assert calibration_error(samples, target) > 0.4


class TestRollingForecast:
    class _ConstantModel:
        """Predicts the last input value repeated pred_len times."""

        pred_len = 4

        def eval(self):
            return self

        def __call__(self, x_enc, x_mark, x_dec, y_mark):
            last = x_enc.data[:, -1:, :]
            return np.repeat(last, self.pred_len, axis=1)

        def point_forecast(self, outputs):
            return outputs

    def test_extends_beyond_pred_len(self):
        model = self._ConstantModel()
        x = RNG.normal(size=(2, 8, 3))
        marks = np.zeros((2, 8, 2))
        future = np.zeros((2, 12, 2))
        out = rolling_forecast(model, x, marks, future, horizon=12, label_len=4)
        assert out.shape == (2, 12, 3)
        # persistence model: everything equals the last seed value
        np.testing.assert_allclose(out, np.repeat(x[:, -1:, :], 12, axis=1))

    def test_partial_last_block(self):
        model = self._ConstantModel()
        x = RNG.normal(size=(1, 8, 2))
        out = rolling_forecast(model, x, np.zeros((1, 8, 1)), np.zeros((1, 10, 1)), horizon=10, label_len=2)
        assert out.shape == (1, 10, 2)

    def test_insufficient_marks_rejected(self):
        model = self._ConstantModel()
        with pytest.raises(ValueError):
            rolling_forecast(model, RNG.normal(size=(1, 8, 2)), np.zeros((1, 8, 1)), np.zeros((1, 3, 1)), 10, 2)

    def test_with_real_conformer(self):
        from repro.core import Conformer, ConformerConfig

        cfg = ConformerConfig(
            enc_in=3, dec_in=3, c_out=3, input_len=16, label_len=8, pred_len=4,
            d_model=8, n_heads=2, d_ff=16, moving_avg=5, d_time=3, dropout=0.0,
        )
        model = Conformer(cfg)
        x = RNG.normal(size=(2, 16, 3))
        marks = RNG.normal(size=(2, 16, 3))
        future = RNG.normal(size=(2, 10, 3))
        out = rolling_forecast(model, x, marks, future, horizon=10, label_len=cfg.label_len)
        assert out.shape == (2, 10, 3)
        assert np.all(np.isfinite(out))
