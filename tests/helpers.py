"""Shared test utilities — thin wrappers over the library's gradcheck."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck, numerical_gradient


def numerical_grad(fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient (re-exported for test modules)."""
    return numerical_gradient(fn, wrt, eps=eps)


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autodiff gradients of scalar ``fn`` match finite differences."""
    gradcheck(fn, params, atol=atol, rtol=rtol, raise_on_fail=True)
