"""Crash-injection matrix: every injection point x optimizer x model.

Rehearses the full recovery story: a run is killed at each supported
fault point (mid-epoch step, epoch boundary, mid-checkpoint-write,
post-write-pre-rename), then resumed from whatever survived on disk —
and must converge to weights bit-identical to an uninterrupted run.

The matrix covers Conformer (the paper model, with dropout + flow RNG
streams) and a GRU baseline, under SGD(momentum), Adam, and AdamW.
Baselines are computed once per (model, optimizer) pair and shared
across fault points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import CheckpointManager, SimulatedCrash, inject_fault
from repro.ckpt.atomic import TMP_SUFFIX
from repro.data.windows import DataLoader, WindowedDataset
from repro.optim import SGD, Adam, AdamW, StepLR
from repro.tensor.random import seed_everything
from repro.training.experiment import ExperimentSettings, build_model
from repro.training.trainer import Trainer

pytestmark = pytest.mark.ckpt

SETTINGS = ExperimentSettings(input_len=16, label_len=8, max_epochs=2)
SEED = 123

OPTIMIZERS = {
    "sgd": lambda params, lr: SGD(params, lr=lr, momentum=0.9),
    "adam": lambda params, lr: Adam(params, lr=lr),
    "adamw": lambda params, lr: AdamW(params, lr=lr, weight_decay=1e-2),
}

MODELS = ("conformer", "gru")

# With stride 4 the loaders hold 4 batches/epoch -> 8 global steps over 2
# epochs; checkpoint_every_steps=2 saves at steps 2, 4, 6, 8 plus the two
# epoch boundaries.  Atomic writes alternate payload/manifest, so
# occurrence 2 of the write-path faults lands inside the *second*
# checkpoint file (the first must survive).
CKPT_EVERY = 2
FAULTS = (
    "step:3",             # mid-epoch, one step past a checkpoint
    "step:6",             # mid-epoch of the second epoch
    "epoch:0",            # epoch boundary, before its epoch-end save
    "epoch:1",            # final epoch boundary
    "ckpt-mid-write:2",   # torn write of the second checkpoint payload
    "ckpt-pre-rename:2",  # second checkpoint fsynced but never committed
)


def make_run(seed, model_name, optimizer_name, scheduler=None):
    seed_everything(seed)
    rng = np.random.default_rng(0)
    series = rng.normal(size=(260, 3))
    marks = rng.normal(size=(260, 4))
    windows = WindowedDataset(series, marks, input_len=16, pred_len=4, label_len=8, stride=4)
    train = DataLoader(windows, batch_size=16, shuffle=True, rng=np.random.default_rng(7))
    val = DataLoader(windows, batch_size=16)
    model = build_model(model_name, 3, 3, 4, SETTINGS, seed=seed)
    trainer = Trainer(
        model, max_epochs=2, patience=5,
        optimizer=OPTIMIZERS[optimizer_name], scheduler=scheduler,
    )
    return trainer, train, val


_BASELINES = {}


def baseline(model_name, optimizer_name):
    """Final weights + history of the uninterrupted run (cached)."""
    key = (model_name, optimizer_name)
    if key not in _BASELINES:
        trainer, train, val = make_run(SEED, model_name, optimizer_name)
        history = trainer.fit(train, val)
        _BASELINES[key] = (trainer.model.state_dict(), history)
    return _BASELINES[key]


def assert_states_identical(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


@pytest.mark.parametrize("model_name", MODELS)
@pytest.mark.parametrize("optimizer_name", sorted(OPTIMIZERS))
@pytest.mark.parametrize("fault", FAULTS)
def test_crash_then_resume_is_bit_exact(tmp_path, model_name, optimizer_name, fault):
    expected_weights, expected_history = baseline(model_name, optimizer_name)

    trainer, train, val = make_run(SEED, model_name, optimizer_name)
    manager = CheckpointManager(tmp_path, keep_last=10)
    with inject_fault(fault) as plan:
        with pytest.raises(SimulatedCrash):
            trainer.fit(train, val, checkpoint=manager, checkpoint_every_steps=CKPT_EVERY)
    assert plan.fired

    # whatever the crash timing, something durable and verifiable survives
    survivor = CheckpointManager(tmp_path)
    loaded = survivor.load_latest()
    assert loaded is not None, f"no durable checkpoint survived {fault}"
    if fault.startswith("ckpt-"):
        # the torn/uncommitted second checkpoint: first one is the survivor
        assert loaded.info.step == CKPT_EVERY
        strays = list(tmp_path.glob(f"*{TMP_SUFFIX}"))
        assert strays, "crashed write should leave a stray temp file"

    # resume under a *different* seed: every array and RNG stream must
    # come from the checkpoint, not from fresh initialization
    resumed, train2, val2 = make_run(SEED + 999, model_name, optimizer_name)
    history = resumed.fit(
        train2, val2,
        checkpoint=CheckpointManager(tmp_path), checkpoint_every_steps=CKPT_EVERY, resume=True,
    )
    assert_states_identical(expected_weights, resumed.model.state_dict())
    assert history.train_loss == expected_history.train_loss
    assert history.val_loss == expected_history.val_loss
    assert history.epochs_run == expected_history.epochs_run
    # stray temp files from the crash are swept by the next save
    assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))


def test_torn_durable_checkpoint_is_skipped_not_loaded(tmp_path):
    """Even if a durable file *were* torn (bit rot, partial copy), the
    checksum catches it and recovery falls back to the previous one."""
    expected_weights, _ = baseline("gru", "adam")

    trainer, train, val = make_run(SEED, "gru", "adam")
    manager = CheckpointManager(tmp_path, keep_last=10)
    with inject_fault("step:5"):
        with pytest.raises(SimulatedCrash):
            trainer.fit(train, val, checkpoint=manager, checkpoint_every_steps=CKPT_EVERY)

    # truncate the newest checkpoint to simulate a torn durable file
    rows = CheckpointManager(tmp_path).checkpoints()
    assert len(rows) >= 2
    newest = rows[-1].path_in(tmp_path)
    newest.write_bytes(newest.read_bytes()[: rows[-1].size // 2])

    survivor = CheckpointManager(tmp_path)
    loaded = survivor.load_latest()
    assert loaded is not None
    assert loaded.info.file == rows[-2].file  # fell back past the torn file

    resumed, train2, val2 = make_run(SEED + 999, "gru", "adam")
    resumed.fit(train2, val2, checkpoint=survivor, checkpoint_every_steps=CKPT_EVERY, resume=True)
    assert_states_identical(expected_weights, resumed.model.state_dict())


def test_crash_during_manifest_write_leaves_previous_state(tmp_path):
    """Occurrence 3 of the write path is the second save's *manifest*
    commit: the checkpoint file exists on disk but is unlisted, so
    recovery uses the previous manifest generation."""
    trainer, train, val = make_run(SEED, "gru", "adam")
    manager = CheckpointManager(tmp_path, keep_last=10)
    with inject_fault("ckpt-mid-write:3"):
        with pytest.raises(SimulatedCrash):
            trainer.fit(train, val, checkpoint=manager, checkpoint_every_steps=CKPT_EVERY)

    on_disk = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
    survivor = CheckpointManager(tmp_path)
    listed = [row.file for row in survivor.checkpoints()]
    assert len(on_disk) == 2 and len(listed) == 1  # orphan file, old manifest
    loaded = survivor.load_latest()
    assert loaded is not None and loaded.info.file == listed[0]


def test_repeated_crashes_make_progress(tmp_path):
    """Crash -> resume -> crash later -> resume must still reach the
    bit-exact final state (multi-generation recovery)."""
    expected_weights, expected_history = baseline("conformer", "adam")

    trainer, train, val = make_run(SEED, "conformer", "adam")
    with inject_fault("step:3"):
        with pytest.raises(SimulatedCrash):
            trainer.fit(train, val, checkpoint=CheckpointManager(tmp_path, keep_last=10),
                        checkpoint_every_steps=CKPT_EVERY)

    second, train2, val2 = make_run(SEED + 1, "conformer", "adam")
    with inject_fault("step:7"):
        with pytest.raises(SimulatedCrash):
            second.fit(train2, val2, checkpoint=CheckpointManager(tmp_path, keep_last=10),
                       checkpoint_every_steps=CKPT_EVERY, resume=True)

    final, train3, val3 = make_run(SEED + 2, "conformer", "adam")
    history = final.fit(train3, val3, checkpoint=CheckpointManager(tmp_path, keep_last=10),
                        checkpoint_every_steps=CKPT_EVERY, resume=True)
    assert_states_identical(expected_weights, final.model.state_dict())
    assert history.val_loss == expected_history.val_loss


def test_scheduler_state_survives_crash_and_resume(tmp_path):
    """LR schedule position is part of the checkpoint: a resumed run ends
    at the same learning rate and the same weights."""
    scheduler = lambda opt: StepLR(opt, step_size=1, gamma=0.5)

    trainer, train, val = make_run(SEED, "gru", "adam", scheduler=scheduler)
    expected_history = trainer.fit(train, val)
    expected_weights = trainer.model.state_dict()
    expected_lr = trainer.optimizer.lr

    crashed, train2, val2 = make_run(SEED, "gru", "adam", scheduler=scheduler)
    with inject_fault("step:6"):
        with pytest.raises(SimulatedCrash):
            crashed.fit(train2, val2, checkpoint=CheckpointManager(tmp_path),
                        checkpoint_every_steps=CKPT_EVERY)

    resumed, train3, val3 = make_run(SEED + 999, "gru", "adam", scheduler=scheduler)
    history = resumed.fit(train3, val3, checkpoint=CheckpointManager(tmp_path),
                          checkpoint_every_steps=CKPT_EVERY, resume=True)
    assert resumed.optimizer.lr == expected_lr
    assert resumed.scheduler.epoch == trainer.scheduler.epoch
    assert_states_identical(expected_weights, resumed.model.state_dict())
    assert history.val_loss == expected_history.val_loss
