"""Tests for metrics, trainer, and the experiment runner."""

import numpy as np
import pytest

from repro.training import (
    ExperimentSettings,
    Trainer,
    available_models,
    build_model,
    make_loaders,
    run_experiment,
)
from repro.training import metrics as M
from repro.data import load_dataset


FAST = ExperimentSettings(
    input_len=16,
    label_len=8,
    d_model=8,
    n_heads=2,
    e_layers=1,
    d_layers=1,
    d_ff=16,
    n_points=400,
    max_epochs=1,
    batch_size=8,
    window_stride=16,
    eval_stride=16,
    max_train_windows=16,
    max_eval_windows=8,
    moving_avg=5,
)


class TestMetrics:
    def test_mse_mae_known_values(self):
        pred = np.array([1.0, 2.0, 3.0])
        target = np.array([1.0, 1.0, 5.0])
        assert M.mse(pred, target) == pytest.approx((0 + 1 + 4) / 3)
        assert M.mae(pred, target) == pytest.approx((0 + 1 + 2) / 3)

    def test_rmse(self):
        pred, target = np.array([2.0]), np.array([0.0])
        assert M.rmse(pred, target) == pytest.approx(2.0)

    def test_mape(self):
        pred, target = np.array([110.0]), np.array([100.0])
        assert M.mape(pred, target) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            M.mse(np.zeros(3), np.zeros(4))

    def test_evaluate_keys(self):
        out = M.evaluate(np.zeros((2, 3)), np.ones((2, 3)))
        assert set(out) == {"mse", "mae", "rmse", "mape"}
        assert out["mse"] == pytest.approx(1.0)

    def test_coverage(self):
        target = np.array([0.0, 0.5, 2.0])
        lower, upper = np.full(3, -1.0), np.full(3, 1.0)
        assert M.coverage(lower, upper, target) == pytest.approx(2 / 3)

    def test_interval_width(self):
        assert M.interval_width(np.zeros(4), np.full(4, 2.0)) == pytest.approx(2.0)


class TestTrainer:
    def _setup(self, model_name="gru"):
        ds = load_dataset("etth1", n_points=400)
        train, val, test = make_loaders(ds, FAST, pred_len=4)
        model = build_model(model_name, ds.n_dims, ds.n_dims, 4, FAST)
        return model, train, val, test

    def test_fit_returns_history(self):
        model, train, val, _ = self._setup()
        trainer = Trainer(model, learning_rate=1e-3, max_epochs=2)
        history = trainer.fit(train, val)
        assert history.epochs_run >= 1
        assert len(history.train_loss) == history.epochs_run
        assert len(history.val_loss) == history.epochs_run
        assert history.wall_time > 0

    def test_fit_without_val(self):
        model, train, _, _ = self._setup()
        history = Trainer(model, max_epochs=1).fit(train)
        assert history.val_loss == []

    def test_evaluate_produces_metrics(self):
        model, train, _, test = self._setup()
        trainer = Trainer(model, max_epochs=1)
        trainer.fit(train)
        result = trainer.evaluate(test)
        assert result["mse"] > 0 and result["mae"] > 0

    def test_training_improves_over_init(self):
        model, train, val, _ = self._setup()
        trainer = Trainer(model, learning_rate=3e-3, max_epochs=3, patience=10)
        initial = trainer.evaluate_loss(val)
        trainer.fit(train, val)
        assert trainer.evaluate_loss(val) < initial

    def test_early_stopping_restores_best(self):
        model, train, val, _ = self._setup()
        trainer = Trainer(model, learning_rate=1e-3, max_epochs=3, patience=1)
        history = trainer.fit(train, val)
        best = min(history.val_loss)
        final = trainer.evaluate_loss(val)
        assert final <= best * 1.05  # restored weights score like the best epoch


class TestExperimentRunner:
    def test_registry_contents(self):
        names = available_models()
        for expected in [
            "conformer",
            "informer",
            "autoformer",
            "reformer",
            "longformer",
            "logtrans",
            "gru",
            "lstnet",
            "nbeats",
            "ts2vec",
            "transformer",
        ]:
            assert expected in names

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            build_model("prophet", 4, 4, 8, FAST)

    def test_run_experiment_conformer(self):
        result = run_experiment("etth1", "conformer", pred_len=4, settings=FAST)
        assert result.mse > 0 and result.mae > 0
        assert result.dataset == "etth1" and result.model == "conformer"
        assert "mse=" in result.row()

    def test_run_experiment_multiseed(self):
        result = run_experiment("etth1", "gru", pred_len=4, settings=FAST, seeds=(0, 1))
        assert len(result.per_seed) == 2
        assert result.mse == pytest.approx(np.mean([m["mse"] for m in result.per_seed]))

    def test_run_experiment_univariate(self):
        result = run_experiment("etth1", "gru", pred_len=4, settings=FAST, univariate=True)
        assert result.mse > 0

    def test_model_overrides(self):
        result = run_experiment(
            "etth1", "conformer", pred_len=4, settings=FAST, model_overrides={"flow_mode": "none"}
        )
        assert result.mse > 0

    def test_scaled_pred_len(self):
        s = ExperimentSettings(n_points=1000)
        assert s.scaled_pred_len(768) == 96
        assert s.scaled_pred_len(48) == 6
        paper = ExperimentSettings(n_points=None)
        assert paper.scaled_pred_len(768) == 768

    def test_loader_caps_respected(self):
        ds = load_dataset("etth1", n_points=2000)
        train, val, test = make_loaders(ds, FAST, pred_len=4)
        n_train = sum(b[0].shape[0] for b in train)
        assert n_train <= FAST.max_train_windows * 1.5  # stride rounding slack

    def test_active_profile_env(self, monkeypatch):
        from repro.training.experiment import active_profile

        monkeypatch.setenv("REPRO_SCALE", "small")
        assert active_profile().d_model == 32
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            active_profile()
