"""Behavioural tests for the recurrent substrate beyond shape checks."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(131)


class TestGRUDynamics:
    def test_zero_input_zero_state_stays_zero(self):
        """With zero biases (our init), h=0 and x=0 is a fixed point:
        n = tanh(0) = 0 and h' = (1-z)*0 + z*0 = 0."""
        cell = nn.GRUCell(3, 4)
        x = Tensor(np.zeros((2, 6, 3)))
        out, h = cell(x)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-12)
        np.testing.assert_allclose(h.data, 0.0, atol=1e-12)

    def test_outputs_bounded_by_tanh(self):
        """GRU hidden state is a convex mix of tanh outputs: |h| <= 1."""
        cell = nn.GRUCell(2, 5)
        x = Tensor(RNG.normal(scale=50.0, size=(3, 20, 2)))
        out, _ = cell(x)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-12)

    def test_recurrence_actually_used(self):
        """Changing an early timestep changes later outputs."""
        cell = nn.GRUCell(2, 4)
        x1 = RNG.normal(size=(1, 10, 2))
        x2 = x1.copy()
        x2[0, 0, :] += 5.0
        out1, _ = cell(Tensor(x1))
        out2, _ = cell(Tensor(x2))
        assert not np.allclose(out1.data[0, -1], out2.data[0, -1])

    def test_causality(self):
        """Changing a late timestep must NOT change earlier outputs."""
        cell = nn.GRUCell(2, 4)
        x1 = RNG.normal(size=(1, 10, 2))
        x2 = x1.copy()
        x2[0, -1, :] += 5.0
        out1, _ = cell(Tensor(x1))
        out2, _ = cell(Tensor(x2))
        np.testing.assert_allclose(out1.data[0, :-1], out2.data[0, :-1])

    def test_long_sequence_gradient_flows_to_start(self):
        """Gradients propagate through 50 steps without vanishing to zero."""
        cell = nn.GRUCell(1, 4)
        x = Tensor(RNG.normal(size=(1, 50, 1)), requires_grad=True)
        out, h = cell(x)
        (h ** 2).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[0, 0]).max() > 0

    def test_lstm_cell_state_unbounded_but_hidden_bounded(self):
        cell = nn.LSTMCell(2, 4)
        x = Tensor(RNG.normal(scale=10.0, size=(2, 30, 2)))
        out, (h, c) = cell(x)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-12)
        assert np.all(np.isfinite(c.data))


class TestGRUGradClipInteraction:
    def test_trainer_grad_clip_limits_update(self):
        """With an absurd LR, clipping keeps parameters finite."""
        from repro.data import DataLoader, WindowedDataset
        from repro.training import Trainer
        from repro.baselines import GRUForecaster

        values = RNG.normal(size=(200, 2)) * 100.0
        marks = RNG.normal(size=(200, 2))
        windows = WindowedDataset(values, marks, input_len=8, pred_len=4, stride=8)
        loader = DataLoader(windows, batch_size=8)
        model = GRUForecaster(enc_in=2, c_out=2, pred_len=4, hidden_size=8, d_time=2, dropout=0.0)
        trainer = Trainer(model, learning_rate=10.0, max_epochs=1, grad_clip=0.5)
        trainer.fit(loader)
        for p in model.parameters():
            assert np.all(np.isfinite(p.data))

    def test_no_clip_option(self):
        from repro.data import DataLoader, WindowedDataset
        from repro.training import Trainer
        from repro.baselines import GRUForecaster

        values = RNG.normal(size=(100, 2))
        windows = WindowedDataset(values, np.zeros((100, 2)), input_len=8, pred_len=4, stride=8)
        loader = DataLoader(windows, batch_size=8)
        model = GRUForecaster(enc_in=2, c_out=2, pred_len=4, hidden_size=8, d_time=2, dropout=0.0)
        history = Trainer(model, learning_rate=1e-3, max_epochs=1, grad_clip=None).fit(loader)
        assert history.epochs_run == 1
