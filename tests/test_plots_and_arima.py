"""Tests for ASCII visualization helpers and the ARIMA forecaster."""

import numpy as np
import pytest

from repro.baselines import ARIMAForecaster, ARForecaster
from repro.eval import band_chart, heat_row, line_chart, sparkline

RNG = np.random.default_rng(111)


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(np.arange(8))
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        clipped = sparkline([0.0, 10.0], lo=0.0, hi=100.0)
        assert clipped[0] == "▁"


class TestHeatRow:
    def test_range(self):
        row = heat_row([0, 1, 2, 3, 4])
        assert len(row) == 5
        assert row[0] == " " and row[-1] == "█"

    def test_constant(self):
        assert heat_row([2, 2]) == "  "


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"a": np.sin(np.arange(20)), "b": np.cos(np.arange(20))})
        assert "*" in chart and "+" in chart
        assert "*=a" in chart and "+=b" in chart

    def test_height(self):
        chart = line_chart({"x": [0, 1, 2]}, height=5)
        assert len(chart.split("\n")) == 6  # 5 rows + legend

    def test_empty(self):
        assert line_chart({}) == ""


class TestBandChart:
    def test_band_encloses_point(self):
        n = 12
        point = np.sin(np.arange(n))
        chart = band_chart(point, point - 0.5, point + 0.5, truth=point + 0.1)
        assert "*" in chart and "." in chart and "o" in chart
        assert "band" in chart


class TestARIMA:
    def test_handles_random_walk_better_than_ar(self):
        """On a drifting random walk, differencing should beat plain AR
        fitted on raw values at matching the continuation level."""
        rng = np.random.default_rng(5)
        n = 3000
        walk = np.cumsum(rng.normal(0.05, 1.0, size=n))[:, None]
        arima = ARIMAForecaster(pred_len=10, order=4, d=1).fit(walk[:2500])
        windows = np.stack([walk[i : i + 40] for i in range(2500, 2900, 20)])
        targets = np.stack([walk[i + 40 : i + 50] for i in range(2500, 2900, 20)])
        pred = arima.predict(windows)
        mse_arima = np.mean((pred - targets) ** 2)
        # persistence-quality or better: forecasts stay near the last level
        last = windows[:, -1:, :]
        mse_persist = np.mean((np.repeat(last, 10, axis=1) - targets) ** 2)
        assert mse_arima < 2.0 * mse_persist

    def test_d0_equals_ar(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(500, 2))
        window = rng.normal(size=(3, 30, 2))
        arima = ARIMAForecaster(pred_len=5, order=3, d=0).fit(data)
        ar = ARForecaster(pred_len=5, order=3).fit(data)
        np.testing.assert_allclose(arima.predict(window), ar.predict(window))

    def test_d2(self):
        rng = np.random.default_rng(3)
        t = np.arange(2000, dtype=float)
        series = (0.001 * t**2 + rng.normal(0, 0.5, 2000))[:, None]
        model = ARIMAForecaster(pred_len=5, order=3, d=2).fit(series[:1500])
        pred = model.predict(series[None, 1500:1560])
        assert pred.shape == (1, 5, 1)
        assert np.all(np.isfinite(pred))

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            ARIMAForecaster(pred_len=1, d=-1)

    def test_forecast_continuity(self):
        """First forecast step should be near the last observed level for d=1."""
        rng = np.random.default_rng(7)
        walk = np.cumsum(rng.normal(0, 1.0, 2000))[:, None]
        model = ARIMAForecaster(pred_len=3, order=4, d=1).fit(walk[:1500])
        window = walk[None, 1500:1540]
        pred = model.predict(window)
        assert abs(pred[0, 0, 0] - window[0, -1, 0]) < 5.0
