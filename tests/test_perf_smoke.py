"""Tier-1 perf smoke: the fused kernels stay wired in, equivalent, and profiled.

Fast guards that run with the regular test suite (marked ``perf`` so the
heavier ``benchmarks/test_perf_regression.py`` can share a selector):

- fused kernels record an order of magnitude fewer tape nodes than the
  op-by-op composition they replaced,
- fused and unfused paths agree on forward values *and* gradients,
- the :mod:`repro.perf` profiler/benchmark machinery produces the
  ``BENCH_autodiff.json`` artifact structure end to end.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.nn import GRUCell, LSTMCell, SlidingWindowAttention
from repro.perf import OpProfiler, StageTimer, profile
from repro.perf.bench import run_autodiff_benchmark, write_bench_json
from repro.tensor import Tensor, functional as F
from repro.training import PROFILES

RNG = np.random.default_rng(202)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tape_nodes(fn) -> int:
    with profile() as prof:
        fn()
    return prof.total_nodes


@pytest.mark.perf
class TestFusedTapeReduction:
    def test_gru_forward_records_one_node_per_scan(self):
        cell = GRUCell(6, 8, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(4, 12, 6)))
        with F.fused_ops(True):
            fused = _tape_nodes(lambda: cell(x))
        with F.fused_ops(False):
            unfused = _tape_nodes(lambda: cell(x))
        # one gru_sequence node replaces the ~12-node-per-timestep chain
        assert fused * 8 <= unfused, (fused, unfused)

    def test_lstm_forward_records_one_node_per_scan(self):
        cell = LSTMCell(6, 8, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(4, 12, 6)))
        with F.fused_ops(True):
            fused = _tape_nodes(lambda: cell(x))
        with F.fused_ops(False):
            unfused = _tape_nodes(lambda: cell(x))
        assert fused * 8 <= unfused, (fused, unfused)


@pytest.mark.perf
class TestFusedUnfusedParity:
    def _parity(self, run):
        results = {}
        for fused in (True, False):
            with F.fused_ops(fused):
                out, params = run()
                out.sum().backward()
                results[fused] = (out.data.copy(), [p.grad.copy() for p in params])
                for p in params:
                    p.zero_grad()
        np.testing.assert_allclose(results[True][0], results[False][0], atol=1e-8)
        for g_fused, g_unfused in zip(results[True][1], results[False][1]):
            np.testing.assert_allclose(g_fused, g_unfused, atol=1e-8)

    def test_gru_cell(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(1))

        def run():
            rng = np.random.default_rng(11)
            x = Tensor(rng.normal(size=(3, 9, 5)), requires_grad=True)
            outputs, h_final = cell(x)
            return outputs * 1.0 + h_final.expand_dims(1), [x, *cell.parameters()]

        self._parity(run)

    def test_lstm_cell(self):
        cell = LSTMCell(5, 7, rng=np.random.default_rng(2))

        def run():
            rng = np.random.default_rng(12)
            x = Tensor(rng.normal(size=(3, 9, 5)), requires_grad=True)
            outputs, (h, c) = cell(x)
            return outputs * 1.0 + (h + c).expand_dims(1), [x, *cell.parameters()]

        self._parity(run)

    def test_sliding_window_attention(self):
        attn = SlidingWindowAttention(window=4)

        def run():
            rng = np.random.default_rng(13)
            q = Tensor(rng.normal(size=(2, 2, 10, 3)), requires_grad=True)
            k = Tensor(rng.normal(size=(2, 2, 10, 3)), requires_grad=True)
            v = Tensor(rng.normal(size=(2, 2, 10, 3)), requires_grad=True)
            return attn(q, k, v), [q, k, v]

        self._parity(run)


@pytest.mark.perf
class TestProfilerMachinery:
    def test_op_profiler_counts_and_times(self):
        with profile() as prof:
            a = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
            b = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
            ((a @ b).relu().sum()).backward()
        assert prof.tape_counts["matmul"] == 1
        assert prof.total_nodes >= 3
        assert prof.total_backward_seconds >= 0.0
        assert "matmul" in dict((op, n) for op, n, _ in prof.top_ops(5))
        assert "matmul" in prof.summary()

    def test_profile_hooks_restore_cleanly(self):
        outer = OpProfiler()
        with profile() as prof:
            Tensor(np.ones(3), requires_grad=True).sum().backward()
        # after the context, fresh graphs are not recorded anywhere
        before = prof.total_nodes
        Tensor(np.ones(3), requires_grad=True).sum().backward()
        assert prof.total_nodes == before
        assert outer.total_nodes == 0

    def test_profile_hooks_uninstall_when_body_raises(self):
        from repro.tensor import tensor as tensor_mod

        assert tensor_mod._TAPE_HOOK is None and tensor_mod._BACKWARD_HOOK is None
        with pytest.raises(RuntimeError):
            with profile() as prof:
                Tensor(np.ones(3), requires_grad=True).sum().backward()
                raise RuntimeError("body failed")
        assert tensor_mod._TAPE_HOOK is None, "tape hook leaked after exception"
        assert tensor_mod._BACKWARD_HOOK is None, "backward hook leaked after exception"
        # the aborted profiler saw its block; new work is not recorded
        nodes_at_raise = prof.total_nodes
        assert nodes_at_raise > 0
        Tensor(np.ones(3), requires_grad=True).sum().backward()
        assert prof.total_nodes == nodes_at_raise

    def test_nested_profiles_restore_outer_hooks(self):
        with profile() as outer_prof:
            Tensor(np.ones(2), requires_grad=True).sum().backward()
            with pytest.raises(ValueError):
                with profile():
                    raise ValueError("inner failure")
            # inner teardown must restore the *outer* hooks, not None
            Tensor(np.ones(2), requires_grad=True).sum().backward()
        assert outer_prof.tape_counts["sum"] == 2

    def test_stage_timer(self):
        timer = StageTimer()
        with timer.section("alpha"):
            pass
        with timer.section("alpha"):
            pass
        with timer.section("beta"):
            pass
        stats = timer.as_dict()
        assert stats["alpha"]["calls"] == 2
        assert stats["beta"]["calls"] == 1
        assert "alpha" in timer.summary()


@pytest.mark.perf
class TestSanitizerZeroOverheadWhenOff:
    """The repro.analysis sanitizer must cost nothing unless installed."""

    def _work(self):
        x = Tensor(RNG.normal(size=(8, 8)), requires_grad=True)
        ((x @ x).relu().sum()).backward()

    def test_sanitizer_hook_is_none_by_default(self):
        from repro.tensor import tensor as tensor_mod

        assert tensor_mod._SANITIZER is None

    def test_disabled_mode_records_identical_tape(self):
        from repro.analysis import sanitize
        from repro.tensor import tensor as tensor_mod

        baseline = _tape_nodes(self._work)
        with sanitize():
            self._work()  # checked run — same graph, hook installed
        assert tensor_mod._SANITIZER is None, "sanitize() leaked its hook"
        assert _tape_nodes(self._work) == baseline

    def test_fused_step_graph_unchanged_after_sanitized_run(self):
        from repro.analysis import sanitize

        cell = GRUCell(6, 8, rng=np.random.default_rng(3))
        x = Tensor(RNG.normal(size=(4, 12, 6)))
        with F.fused_ops(True):
            before = _tape_nodes(lambda: cell(x))
            with sanitize():
                cell(x)
            after = _tape_nodes(lambda: cell(x))
        assert before == after


@pytest.mark.perf
def test_bench_smoke_produces_artifact(tmp_path):
    """End-to-end micro run of the canonical benchmark (small scan, one
    repeat) — checks the artifact schema, not wall-clock claims."""
    settings = replace(PROFILES["tiny"], input_len=24, label_len=12, batch_size=8, n_points=400)
    result = run_autodiff_benchmark(repeats=1, warmup=0, settings=settings)
    path = write_bench_json(result, tmp_path / "BENCH_autodiff.json")
    loaded = json.loads(path.read_text())
    assert loaded["benchmark"] == "conformer_training_step"
    for arm in ("fused", "unfused"):
        assert loaded[arm]["tape_nodes_per_step"] > 0
        assert loaded[arm]["seconds_per_step"] > 0
    assert loaded["tape_node_reduction"] >= 4.0
    assert np.isclose(loaded["fused"]["final_loss"], loaded["unfused"]["final_loss"], rtol=1e-3)
    # keep the repo-root artifact present for tier-1 runs on fresh clones,
    # without clobbering numbers from the full regression benchmark
    root_artifact = REPO_ROOT / "BENCH_autodiff.json"
    if not root_artifact.exists():
        write_bench_json(result, root_artifact)
