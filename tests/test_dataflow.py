"""Interprocedural dataflow gate: seeded path bugs must be found, the
shipped tree must be clean, and the reporters must stay CI-consumable.

The fixtures write tiny package trees into ``tmp_path`` with one planted
hazard each — an arena buffer returned to the caller, an ``np.random``
draw three calls below ``predict`` — and assert
:func:`repro.analysis.dataflow.dataflow_paths` reports it with the right
rule id, the offending line, and the call chain that reaches it.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis.dataflow import (
    RULE_ARENA_ESCAPE,
    RULE_IMPURE_PREDICT,
    build_call_graph,
    dataflow_paths,
)
from repro.analysis.reporters import render_sarif
from repro.analysis.lint import Finding

pytestmark = pytest.mark.alias

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _write_tree(root: Path, files: dict) -> Path:
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source).lstrip("\n"))
    return root


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_real_tree_resolves_predict_to_forward(self):
        graph = build_call_graph([SRC])
        predict = graph.functions[("core.model", "Conformer", "predict")]
        targets = {target.qualname for _, target in graph.edges(predict)}
        assert "core.model.Conformer.forward" in targets
        assert "tensor.tensor.inference_mode" in targets

    def test_bare_and_imported_calls_resolve(self, tmp_path):
        _write_tree(tmp_path, {
            "helpers.py": """
                def leaf():
                    return 1

                def middle():
                    return leaf()
            """,
            "entry.py": """
                from helpers import middle

                def run():
                    return middle()
            """,
        })
        graph = build_call_graph([tmp_path])
        run = graph.functions[("entry", None, "run")]
        middle = graph.functions[("helpers", None, "middle")]
        assert [t.qualname for _, t in graph.edges(run)] == ["helpers.middle"]
        assert [t.qualname for _, t in graph.edges(middle)] == ["helpers.leaf"]

    def test_self_calls_resolve_through_base_classes(self, tmp_path):
        _write_tree(tmp_path, {
            "base.py": """
                class Base:
                    def helper(self):
                        return 0
            """,
            "child.py": """
                from base import Base

                class Child(Base):
                    def run(self):
                        return self.helper()
            """,
        })
        graph = build_call_graph([tmp_path])
        run = graph.functions[("child", "Child", "run")]
        assert [t.qualname for _, t in graph.edges(run)] == ["base.Base.helper"]

    def test_builtin_method_names_never_grow_edges(self, tmp_path):
        """``payload.update(...)`` is dict.update — it must not resolve to
        a project function that happens to be called ``update``."""
        _write_tree(tmp_path, {
            "stopper.py": """
                class EarlyStopping:
                    def update(self, loss):
                        self.best = loss
            """,
            "log.py": """
                def emit(payload, fields):
                    payload.update(fields)
            """,
        })
        graph = build_call_graph([tmp_path])
        emit = graph.functions[("log", None, "emit")]
        assert list(graph.edges(emit)) == []


# ----------------------------------------------------------------------
# seeded mutation: arena buffer escapes its kernel
# ----------------------------------------------------------------------
class TestEscapeAnalysis:
    def test_returned_checkout_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                from repro.tensor.arena import get_arena

                def scratch(shape):
                    buf = get_arena().get("fix.scratch", shape, "float64")
                    buf[:] = 0.0
                    return buf
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_ARENA_ESCAPE]
        assert "fix.scratch" in findings[0].message
        assert "kernel.scratch" in findings[0].message
        assert findings[0].line == 6

    def test_escape_through_alias_view_and_wrapper(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                from repro.tensor import Tensor
                from repro.tensor.arena import get_arena

                def alias_escape(shape):
                    arena = get_arena()
                    buf = arena.get("fix.alias", shape, "float64")
                    view = buf.reshape(-1)
                    return Tensor(view)
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_ARENA_ESCAPE]
        assert "fix.alias" in findings[0].message

    def test_self_store_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                from repro.tensor.arena import get_arena

                class Holder:
                    def grab(self, shape):
                        self.kept = get_arena().get("fix.kept", shape, "f8")
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_ARENA_ESCAPE]
        assert "self.kept" in findings[0].message

    def test_consumed_checkout_is_clean(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                import numpy as np
                from repro.tensor.arena import get_arena

                def consume(x):
                    buf = get_arena().get("fix.ok", x.shape, x.dtype)
                    np.multiply(x, 2.0, out=buf)
                    return float(buf.sum())
            """,
        })
        assert dataflow_paths([tmp_path]) == []

    def test_rebinding_clears_taint(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                import numpy as np
                from repro.tensor.arena import get_arena

                def fresh_copy(shape):
                    buf = get_arena().get("fix.copy", shape, "f8")
                    buf = np.zeros(shape)  # rebound to fresh memory
                    return buf
            """,
        })
        assert dataflow_paths([tmp_path]) == []


# ----------------------------------------------------------------------
# seeded mutation: impure predict path
# ----------------------------------------------------------------------
class TestPurityAnalysis:
    def test_rng_three_calls_below_predict_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "noise.py": """
                import numpy as np

                def draw(shape):
                    return np.random.normal(size=shape)
            """,
            "mid.py": """
                from noise import draw

                def jitter(x):
                    return x + draw(x.shape)
            """,
            "model.py": """
                from mid import jitter

                def predict(x):
                    return jitter(x)
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]
        finding = findings[0]
        assert finding.path.endswith("noise.py"), "anchored at the impure line"
        assert "np.random.normal" in finding.message
        # the chain names every hop from the entry to the draw
        assert "model.predict -> mid.jitter -> noise.draw" in finding.message

    def test_backward_in_evaluate_path_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "runner.py": """
                def evaluate_loss(model, loss):
                    loss.backward()
                    return loss
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]
        assert "backward()" in findings[0].message

    def test_state_write_in_predict_closure_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "model.py": """
                class Model:
                    def forward(self, x):
                        self.last_input = x
                        return x

                    def predict(self, x):
                        return self.forward(x)
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]
        assert "self.last_input" in findings[0].message

    def test_init_and_train_boundaries_are_not_flagged(self, tmp_path):
        _write_tree(tmp_path, {
            "model.py": """
                class Model:
                    def __init__(self):
                        self.weights = [1.0]

                    def train(self, mode=True):
                        self.training = mode

                    def eval(self):
                        self.train(False)

                    def predict(self, x):
                        self.eval()
                        return x
            """,
        })
        assert dataflow_paths([tmp_path]) == []

    def test_shortest_chain_wins_attribution(self, tmp_path):
        _write_tree(tmp_path, {
            "model.py": """
                import numpy as np

                def _draw():
                    return np.random.normal()

                def predict_direct(x):
                    return x + _draw()

                def predict_nested(x):
                    return predict_direct(x)
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert len(findings) == 1, "one finding per impure line, not per entry"
        assert "model.predict_direct -> model._draw" in findings[0].message

    def test_noqa_suppresses_at_the_impure_line(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                from repro.tensor.arena import get_arena

                def scratch(shape):
                    buf = get_arena().get("fix.noqa", shape, "f8")
                    return buf  # repro: noqa[dataflow-arena-escape]
            """,
        })
        assert dataflow_paths([tmp_path]) == []


class TestInferenceEntryDecorator:
    """Decorator-marked serving entry points (``@inference_entry``) are
    purity-checked like ``predict*`` for the numeric facets — global RNG
    and ``backward()`` — but not for state writes, because serving
    machinery (counters, caches, futures) is stateful by design."""

    def test_rng_three_calls_below_decorated_entry_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "noise.py": """
                import numpy as np

                def draw(shape):
                    return np.random.normal(size=shape)
            """,
            "mid.py": """
                from noise import draw

                def jitter(x):
                    return x + draw(x.shape)
            """,
            "server.py": """
                from repro.analysis import inference_entry
                from mid import jitter

                @inference_entry
                def serve_request(x):
                    return jitter(x)
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]
        finding = findings[0]
        assert finding.path.endswith("noise.py"), "anchored at the impure line"
        assert "server.serve_request -> mid.jitter -> noise.draw" in finding.message

    def test_backward_below_decorated_entry_is_reported(self, tmp_path):
        _write_tree(tmp_path, {
            "server.py": """
                from repro.analysis.dataflow import inference_entry

                def settle(loss):
                    loss.backward()

                @inference_entry
                def serve_request(loss):
                    settle(loss)
                    return loss
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]
        assert "backward()" in findings[0].message

    def test_state_writes_are_allowed_for_decorated_entries(self, tmp_path):
        # the same closure under a predict* name IS flagged (full facets);
        # the decorator grants exactly the state facet, nothing else
        _write_tree(tmp_path, {
            "server.py": """
                from repro.analysis import inference_entry

                class Server:
                    @inference_entry
                    def serve_request(self, x):
                        self.requests = self.requests + 1
                        return x
            """,
        })
        assert dataflow_paths([tmp_path]) == []

    def test_same_state_write_under_predict_name_still_flags(self, tmp_path):
        _write_tree(tmp_path, {
            "model.py": """
                class Model:
                    def predict(self, x):
                        self.requests = self.requests + 1
                        return x
            """,
        })
        findings = dataflow_paths([tmp_path])
        assert [f.rule_id for f in findings] == [RULE_IMPURE_PREDICT]

    def test_runtime_marker_is_inert(self):
        from repro.analysis import inference_entry

        @inference_entry
        def serve(x):
            return x

        assert serve(3) == 3
        assert serve.__inference_entry__ is True

    def test_shipped_serve_forward_is_an_entry(self):
        graph = build_call_graph([SRC])
        forecast = graph.functions[("serve.registry", "ModelVersion", "forecast_batch")]
        assert forecast.is_entry(), "the serving forward must be purity-checked"
        assert forecast.entry_facets() == frozenset({"rng", "backward"})


# ----------------------------------------------------------------------
# shipped tree + reporters + CLI
# ----------------------------------------------------------------------
@pytest.mark.lint
class TestShippedTree:
    def test_library_tree_is_dataflow_clean(self):
        findings = dataflow_paths([SRC])
        assert not findings, "dataflow findings in library code:\n" + "\n".join(
            f.render() for f in findings
        )

    def test_dataflow_rule_ids_are_registered(self):
        from repro.analysis.rules import all_rules

        registry = all_rules()
        assert RULE_ARENA_ESCAPE in registry
        assert RULE_IMPURE_PREDICT in registry
        # engine-level: documented and noqa-able, never run per-file
        assert getattr(registry[RULE_ARENA_ESCAPE], "engine_level", False)


class TestSarifReporter:
    def test_sarif_envelope_shape(self):
        findings = [
            Finding("src/repro/x.py", 10, 4, RULE_ARENA_ESCAPE, "buffer escapes"),
            Finding("src/repro/y.py", 3, 0, "no-print", "print() in library"),
        ]
        log = json.loads(render_sarif(findings, files_scanned=2))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert set(rule_ids) == {RULE_ARENA_ESCAPE, "no-print"}
        result = run["results"][0]
        assert result["ruleId"] == RULE_ARENA_ESCAPE
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        # SARIF regions are 1-based; Finding.col is a 0-based AST offset
        assert location["region"] == {"startLine": 10, "startColumn": 5}

    def test_registered_rules_carry_descriptions(self):
        findings = [Finding("a.py", 1, 0, "no-print", "x")]
        log = json.loads(render_sarif(findings))
        (descriptor,) = log["runs"][0]["tool"]["driver"]["rules"]
        assert descriptor["shortDescription"]["text"]

    def test_empty_run_is_valid(self):
        log = json.loads(render_sarif([], files_scanned=99))
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["properties"]["files_scanned"] == 99


class TestCli:
    def _lint(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", *args],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=REPO_ROOT,
        )

    def test_lint_dataflow_clean_tree_exits_zero(self):
        proc = self._lint("src", "--dataflow")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_lint_dataflow_seeded_bug_exits_one(self, tmp_path):
        _write_tree(tmp_path, {
            "kernel.py": """
                from repro.tensor.arena import get_arena

                def scratch(shape):
                    return get_arena().get("fix.cli", shape, "f8")
            """,
        })
        proc = self._lint(str(tmp_path), "--dataflow")
        assert proc.returncode == 1
        assert RULE_ARENA_ESCAPE in proc.stdout

    def test_lint_format_sarif_parses(self, tmp_path):
        _write_tree(tmp_path, {
            "bad.py": """
                def predict(x):
                    print(x)
                    return x
            """,
        })
        proc = self._lint(str(tmp_path), "--format", "sarif")
        assert proc.returncode == 1
        log = json.loads(proc.stdout)
        assert log["runs"][0]["results"][0]["ruleId"] == "no-print"
