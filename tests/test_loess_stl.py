"""Tests for loess smoothing and the STL decomposition alternative."""

import numpy as np
import pytest

from repro.core import Conformer, ConformerConfig
from repro.core.loess import LoessSmoother, STLDecomposition, loess_matrix
from repro.tensor import Tensor
from tests.helpers import check_gradients

RNG = np.random.default_rng(170)


class TestLoessMatrix:
    def test_rows_sum_to_one(self):
        """Local linear regression reproduces constants exactly."""
        matrix = loess_matrix(24, span=0.4)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-8)

    def test_reproduces_linear_functions(self):
        """Local *linear* loess is exact on straight lines."""
        matrix = loess_matrix(30, span=0.3)
        line = 2.0 * np.arange(30) + 5.0
        np.testing.assert_allclose(matrix @ line, line, atol=1e-6)

    def test_smooths_noise(self):
        matrix = loess_matrix(100, span=0.5)
        noise = RNG.normal(size=100)
        smoothed = matrix @ noise
        assert smoothed.var() < 0.5 * noise.var()

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            loess_matrix(10, span=0.0)
        with pytest.raises(ValueError):
            loess_matrix(10, span=1.5)


class TestLoessSmoother:
    def test_shapes_and_cache(self):
        from repro.tensor import plan_cache

        smoother = LoessSmoother(span=0.4)
        x = Tensor(RNG.normal(size=(2, 20, 3)))
        out = smoother(x)
        assert out.shape == (2, 20, 3)
        hits_before = plan_cache().hits
        smoother(Tensor(RNG.normal(size=(1, 20, 3))))  # same geometry: plan-cache hit
        assert plan_cache().hits == hits_before + 1

    def test_differentiable(self):
        smoother = LoessSmoother(span=0.5)
        x = Tensor(RNG.normal(size=(1, 10, 2)), requires_grad=True)
        check_gradients(lambda: (smoother(x) ** 2).sum(), [x], atol=1e-4)

    def test_trend_extraction(self):
        t = np.arange(120, dtype=float)
        series = 0.05 * t + np.sin(2 * np.pi * t / 12)
        x = Tensor(series.reshape(1, -1, 1))
        trend = LoessSmoother(span=0.3)(x).data.ravel()
        # trend should track the slope, with the oscillation attenuated
        assert np.corrcoef(trend, 0.05 * t)[0, 1] > 0.99
        assert (series - trend).std() < series.std()


class TestSTLDecomposition:
    def test_reconstruction_identity(self):
        stl = STLDecomposition(span=0.4)
        x = Tensor(RNG.normal(size=(2, 24, 3)))
        trend, seasonal = stl(x)
        np.testing.assert_allclose(trend.data + seasonal.data, x.data, atol=1e-9)

    def test_components_split(self):
        t = np.arange(96, dtype=float)
        series = 0.02 * t + np.sin(2 * np.pi * t / 24) + RNG.normal(0, 0.05, 96)
        stl = STLDecomposition(span=0.5, period=24)
        trend, seasonal, remainder = stl.components(Tensor(series.reshape(1, -1, 1)))
        np.testing.assert_allclose(
            (trend + seasonal + remainder).data.ravel(), series, atol=1e-9
        )
        # seasonal component should carry most of the sine's energy
        assert seasonal.data.std() > 2 * remainder.data.std()

    def test_components_requires_period(self):
        stl = STLDecomposition(span=0.4)
        with pytest.raises(ValueError):
            stl.components(Tensor(RNG.normal(size=(1, 24, 1))))


class TestConformerWithSTL:
    def test_forward_and_training(self):
        from repro.optim import Adam

        cfg = ConformerConfig(
            enc_in=3, dec_in=3, c_out=3, input_len=16, label_len=8, pred_len=4,
            d_model=8, n_heads=2, d_ff=16, d_time=2, dropout=0.0,
            decomp_kind="stl", stl_span=0.5,
        )
        model = Conformer(cfg)
        x_enc = Tensor(RNG.normal(size=(2, 16, 3)))
        x_mark = Tensor(RNG.normal(size=(2, 16, 2)))
        x_dec = Tensor(RNG.normal(size=(2, 12, 3)))
        y_mark = Tensor(RNG.normal(size=(2, 12, 2)))
        target = Tensor(RNG.normal(scale=0.3, size=(2, 4, 3)))
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(5):
            opt.zero_grad()
            outputs = model(x_enc, x_mark, x_dec, y_mark, deterministic=True)
            loss = model.compute_loss(outputs, target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_invalid_decomp_kind(self):
        with pytest.raises(ValueError):
            ConformerConfig(
                enc_in=3, dec_in=3, c_out=3, input_len=16, label_len=8, pred_len=4,
                decomp_kind="wavelet",
            )
