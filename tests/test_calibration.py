"""Tests for post-hoc conformal calibration of uncertainty bands."""

import numpy as np
import pytest

from repro.eval import (
    BandScaler,
    ConformalCalibrator,
    bands_from_samples,
    conformal_radius,
)

RNG = np.random.default_rng(66)


class TestConformalRadius:
    def test_known_quantile(self):
        residuals = np.arange(1.0, 101.0)  # |res| uniform on 1..100
        radius = conformal_radius(residuals, 0.9)
        assert 90.0 <= radius <= 92.0

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            conformal_radius(np.ones(10), 1.5)

    def test_empty_residuals(self):
        with pytest.raises(ValueError):
            conformal_radius(np.array([]), 0.9)

    def test_coverage_on_fresh_data(self):
        """Split-conformal guarantee: ≥ level coverage on exchangeable data."""
        calibration = RNG.normal(size=5000)
        fresh = RNG.normal(size=5000)
        radius = conformal_radius(calibration, 0.9)
        coverage = np.mean(np.abs(fresh) <= radius)
        assert coverage >= 0.88


class TestConformalCalibrator:
    def test_bands_contain_point(self):
        pred = RNG.normal(size=(4, 6, 2))
        target = pred + RNG.normal(scale=0.5, size=pred.shape)
        calib = ConformalCalibrator.fit(pred, target, levels=(0.8, 0.95))
        bands = calib.bands(pred)
        assert np.all(bands.lower[0.8] <= bands.point)
        assert np.all(bands.point <= bands.upper[0.95])

    def test_radii_monotone(self):
        pred = RNG.normal(size=(10, 5, 1))
        target = pred + RNG.normal(scale=1.0, size=pred.shape)
        calib = ConformalCalibrator.fit(pred, target)
        assert calib.radii[0.8] <= calib.radii[0.9] <= calib.radii[0.95]

    def test_calibrated_coverage(self):
        pred_cal = np.zeros((50, 10, 1))
        target_cal = RNG.normal(scale=2.0, size=pred_cal.shape)
        calib = ConformalCalibrator.fit(pred_cal, target_cal, levels=(0.9,))
        pred_new = np.zeros((50, 10, 1))
        target_new = RNG.normal(scale=2.0, size=pred_new.shape)
        bands = calib.bands(pred_new)
        assert bands.coverage(target_new, 0.9) >= 0.85


class TestBandScaler:
    def _bands(self, width_scale=0.1):
        samples = RNG.normal(scale=width_scale, size=(60, 8, 6, 2))
        return bands_from_samples(samples, levels=(0.9,))

    def test_scaling_restores_coverage(self):
        """Bands 10x too narrow -> scaler widens them to cover."""
        bands = self._bands(width_scale=0.1)
        target = RNG.normal(scale=1.0, size=(8, 6, 2))
        raw_coverage = bands.coverage(target, 0.9)
        assert raw_coverage < 0.5  # deliberately under-covering
        scaler = BandScaler.fit(bands, target)
        fixed = scaler.apply(bands)
        assert fixed.coverage(target, 0.9) >= 0.9
        assert scaler.scales[0.9] > 2.0

    def test_well_calibrated_bands_barely_change(self):
        samples = RNG.normal(scale=1.0, size=(400, 8, 6, 2))
        bands = bands_from_samples(samples, levels=(0.9,))
        target = RNG.normal(scale=1.0, size=(8, 6, 2))
        scaler = BandScaler.fit(bands, target)
        assert 0.5 < scaler.scales[0.9] < 2.0

    def test_apply_preserves_point(self):
        bands = self._bands()
        target = RNG.normal(size=(8, 6, 2))
        fixed = BandScaler.fit(bands, target).apply(bands)
        np.testing.assert_array_equal(fixed.point, bands.point)

    def test_heteroscedastic_shape_preserved(self):
        """Scaling keeps relative band widths across positions."""
        samples = RNG.normal(size=(100, 2, 4, 1)) * np.array([0.1, 0.5, 1.0, 2.0])[None, None, :, None]
        bands = bands_from_samples(samples, levels=(0.9,))
        target = RNG.normal(size=(2, 4, 1))
        fixed = BandScaler.fit(bands, target).apply(bands)
        raw_w = bands.upper[0.9] - bands.lower[0.9]
        new_w = fixed.upper[0.9] - fixed.lower[0.9]
        ratio = new_w / raw_w
        np.testing.assert_allclose(ratio, ratio.mean(), rtol=1e-6)
