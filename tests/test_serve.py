"""Deterministic unit tests for the serving runtime.

Every timing-sensitive behaviour is driven through a
:class:`repro.serve.ManualClock` — the batcher's size/time triggers,
deadline expiry, and cache timing are all pure functions of the injected
clock, so there is not a single wall-clock sleep in this file.  Where
worker threads are involved, synchronization is via futures and the
size trigger (a ManualClock never advances, so the time trigger can
never race a test's expected batch shape).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import CheckpointManager
from repro.serve import (
    ForecastCache,
    ForecastServer,
    ManualClock,
    MicroBatcher,
    ModelRegistry,
    PendingRequest,
    SeriesStore,
    ServingSpec,
    cyclic_marks,
)
from repro.training.experiment import ExperimentSettings, build_model

pytestmark = pytest.mark.serving

SETTINGS = ExperimentSettings(input_len=16, label_len=8)
PRED_LEN = 4
N_DIMS = 2


def make_spec() -> ServingSpec:
    return ServingSpec(
        input_len=SETTINGS.input_len,
        label_len=SETTINGS.label_len,
        pred_len=PRED_LEN,
        n_dims=N_DIMS,
    )


def model_factory(seed: int = 0):
    return build_model("gru", N_DIMS, N_DIMS, PRED_LEN, SETTINGS, seed=seed)


def make_registry(dtype=np.float64) -> ModelRegistry:
    registry = ModelRegistry(model_factory, make_spec(), dtype=dtype)
    registry.publish("v1", model_factory())
    return registry


def make_store(n_series: int = 2, n_points: int = 48, seed: int = 0) -> SeriesStore:
    store = SeriesStore(n_dims=N_DIMS)
    rng = np.random.default_rng(seed)
    for i in range(n_series):
        store.ingest(f"s{i}", rng.normal(size=(n_points, N_DIMS)))
    return store


def request(series_id: str = "s0", now: float = 0.0, deadline=None) -> PendingRequest:
    return PendingRequest(series_id=series_id, horizon=PRED_LEN, enqueued_at=now, deadline=deadline)


# ----------------------------------------------------------------------
# micro-batcher (pure clock-driven logic, no threads)
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_size_trigger_fires_immediately(self):
        clock = ManualClock()
        batcher = MicroBatcher(clock, max_batch=3, max_delay=10.0)
        for _ in range(3):
            assert batcher.add(request(now=clock.now()))
        work = batcher.poll()
        assert len(work.batch) == 3 and not work.expired
        assert batcher.depth() == 0
        assert batcher.stats()["batches_formed"] == 1
        assert batcher.stats()["coalesced"] == 3

    def test_time_trigger_fires_after_max_delay(self):
        clock = ManualClock()
        batcher = MicroBatcher(clock, max_batch=8, max_delay=0.5)
        batcher.add(request(now=clock.now()))
        early = batcher.poll()
        assert early.batch == [] and early.wait == pytest.approx(0.5)
        clock.advance(0.25)
        assert batcher.poll().wait == pytest.approx(0.25)
        clock.advance(0.25)
        assert len(batcher.poll().batch) == 1

    def test_batch_is_oldest_first_and_capped(self):
        clock = ManualClock()
        batcher = MicroBatcher(clock, max_batch=3, max_delay=0.1)
        pendings = []
        for i in range(5):
            pending = request(series_id=f"s{i}", now=clock.now())
            pendings.append(pending)
            batcher.add(pending)
        work = batcher.poll()
        assert work.batch == pendings[:3], "oldest three first"
        assert batcher.depth() == 2

    def test_expired_requests_leave_the_batch_path(self):
        clock = ManualClock()
        batcher = MicroBatcher(clock, max_batch=8, max_delay=10.0)
        doomed = request(now=clock.now(), deadline=1.0)
        healthy = request(now=clock.now(), deadline=100.0)
        batcher.add(doomed)
        batcher.add(healthy)
        # the wait is bounded by the soonest deadline, not just max_delay
        assert batcher.poll().wait == pytest.approx(1.0)
        clock.advance(2.0)
        work = batcher.poll()
        assert work.expired == [doomed]
        assert batcher.depth() == 1 and healthy not in work.batch

    def test_closed_batcher_refuses_and_flushes(self):
        clock = ManualClock()
        batcher = MicroBatcher(clock, max_batch=8, max_delay=10.0)
        queued = request(now=clock.now())
        batcher.add(queued)
        batcher.close()
        assert not batcher.add(request(now=clock.now())), "closed refuses new work"
        work = batcher.poll()
        assert work.batch == [queued], "close flushes without waiting out the window"

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(ManualClock(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(ManualClock(), max_delay=-1.0)
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


# ----------------------------------------------------------------------
# forecast cache
# ----------------------------------------------------------------------
class TestForecastCache:
    def test_lru_eviction_order_respects_recency(self):
        cache = ForecastCache(capacity=2)
        cache.put("v1", "a", 4, np.zeros(4))
        cache.put("v1", "b", 4, np.ones(4))
        assert cache.get("v1", "a", 4) is not None  # refresh "a"
        cache.put("v1", "c", 4, np.full(4, 2.0))  # evicts "b", the LRU
        assert cache.get("v1", "b", 4) is None
        assert cache.get("v1", "a", 4) is not None
        assert cache.get("v1", "c", 4) is not None
        assert cache.stats()["evictions"] == 1

    def test_invalidate_series_drops_every_horizon_and_version(self):
        cache = ForecastCache(capacity=8)
        cache.put("v1", "a", 4, np.zeros(4))
        cache.put("v1", "a", 2, np.zeros(2))
        cache.put("v2", "a", 4, np.zeros(4))
        cache.put("v1", "b", 4, np.zeros(4))
        assert cache.invalidate_series("a") == 3
        assert cache.get("v1", "a", 4) is None
        assert cache.get("v1", "b", 4) is not None

    def test_invalidate_version_drops_only_that_version(self):
        cache = ForecastCache(capacity=8)
        cache.put("v1", "a", 4, np.zeros(4))
        cache.put("v2", "a", 4, np.ones(4))
        assert cache.invalidate_version("v1") == 1
        assert cache.get("v1", "a", 4) is None
        np.testing.assert_array_equal(cache.get("v2", "a", 4), np.ones(4))

    def test_entries_are_frozen_copies(self):
        cache = ForecastCache(capacity=2)
        source = np.zeros(4)
        stored = cache.put("v1", "a", 4, source)
        source[:] = 99.0
        np.testing.assert_array_equal(cache.get("v1", "a", 4), np.zeros(4))
        with pytest.raises(ValueError):
            stored[0] = 1.0  # read-only view: a client cannot poison the cache

    def test_hit_rate_accounting(self):
        cache = ForecastCache(capacity=4)
        assert cache.get("v1", "a", 4) is None
        cache.put("v1", "a", 4, np.zeros(4))
        assert cache.get("v1", "a", 4) is not None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# series store
# ----------------------------------------------------------------------
class TestSeriesStore:
    def test_window_geometry_and_decoder_seeding(self):
        store = make_store()
        spec = make_spec()
        window = store.window("s0", spec.input_len, spec.label_len, spec.pred_len)
        assert window.x_enc.shape == (spec.input_len, N_DIMS)
        assert window.x_mark.shape == (spec.input_len, 4)
        assert window.x_dec.shape == (spec.label_len + spec.pred_len, N_DIMS)
        assert window.y_mark.shape == (spec.label_len + spec.pred_len, 4)
        np.testing.assert_array_equal(window.x_dec[: spec.label_len], window.x_enc[-spec.label_len :])
        np.testing.assert_array_equal(window.x_dec[spec.label_len :], 0.0)

    def test_marks_are_a_pure_function_of_absolute_index(self):
        store = make_store(n_points=48)
        spec = make_spec()
        length = store.length("s0")
        window = store.window("s0", spec.input_len, spec.label_len, spec.pred_len)
        expected = cyclic_marks()(np.arange(length - spec.input_len, length))
        np.testing.assert_array_equal(window.x_mark, expected)
        assert np.all(np.abs(window.y_mark) <= 0.5)

    def test_ingest_appends_and_windows_advance(self):
        store = make_store(n_points=48)
        spec = make_spec()
        before = store.window("s0", spec.input_len, spec.label_len, spec.pred_len)
        new_point = np.full((1, N_DIMS), 7.0)
        assert store.ingest("s0", new_point) == 49
        after = store.window("s0", spec.input_len, spec.label_len, spec.pred_len)
        np.testing.assert_array_equal(after.x_enc[-1], new_point[0])
        np.testing.assert_array_equal(after.x_enc[:-1], before.x_enc[1:])

    def test_errors(self):
        store = make_store(n_points=8)
        with pytest.raises(KeyError):
            store.window("nope", 16, 8, 4)
        with pytest.raises(ValueError):
            store.window("s0", 16, 8, 4)  # only 8 points ingested
        with pytest.raises(ValueError):
            store.ingest("s0", np.zeros((3, N_DIMS + 1)))


# ----------------------------------------------------------------------
# registry + hot swap
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_publish_activate_current(self):
        registry = make_registry()
        assert registry.current().version == "v1"
        with pytest.raises(ValueError):
            registry.publish("v1", model_factory())
        with pytest.raises(ValueError):
            registry.retire("v1")

    def test_activation_is_atomic_and_notifies(self):
        registry = make_registry()
        swaps = []
        registry.on_swap(lambda old, new: swaps.append((old, new)))
        registry.publish("v2", model_factory(seed=1), activate=False)
        assert registry.current().version == "v1", "cold publish must not swap"
        registry.activate("v2")
        assert registry.current().version == "v2"
        assert swaps == [("v1", "v2")]
        registry.activate("v2")  # re-activating current is a no-op
        assert swaps == [("v1", "v2")] and registry.stats()["swaps"] == 2

    def test_load_restores_checkpoint_weights(self, tmp_path):
        trained = model_factory(seed=3)
        manager = CheckpointManager(tmp_path)
        manager.save({"model": trained.state_dict()}, epoch=0, step=0)
        registry = ModelRegistry(model_factory, make_spec())
        loaded = registry.load("ckpt-v", tmp_path)
        for key, value in trained.state_dict().items():
            np.testing.assert_array_equal(value, loaded.model.state_dict()[key], err_msg=key)

    def test_load_empty_directory_is_an_error(self, tmp_path):
        registry = ModelRegistry(model_factory, make_spec())
        with pytest.raises(FileNotFoundError):
            registry.load("v1", tmp_path / "empty")


# ----------------------------------------------------------------------
# server request paths (ManualClock; threads synchronized by futures)
# ----------------------------------------------------------------------
class TestForecastServer:
    def make_server(self, **kwargs) -> ForecastServer:
        defaults = dict(clock=ManualClock(), batching=False)
        defaults.update(kwargs)
        return ForecastServer(make_registry(), make_store(), **defaults)

    def test_forecast_and_cache_hit(self):
        server = self.make_server()
        first = server.forecast("s0")
        assert first.ok and not first.cached and first.forecast.shape == (PRED_LEN, N_DIMS)
        second = server.forecast("s0")
        assert second.ok and second.cached
        np.testing.assert_array_equal(first.forecast, second.forecast)
        assert server.cache.stats()["hits"] == 1

    def test_horizon_slices_the_forecast(self):
        server = self.make_server()
        full = server.forecast("s0")
        short = server.forecast("s0", horizon=2)
        np.testing.assert_array_equal(short.forecast, full.forecast[:2])

    def test_error_paths_resolve_not_raise(self):
        server = self.make_server()
        assert server.forecast("missing").status == "error"
        assert "missing" in server.forecast("missing").error
        bad = server.forecast("s0", horizon=PRED_LEN + 1)
        assert bad.status == "error" and "horizon" in bad.error
        assert server.errors == 3

    def test_ingest_invalidates_only_that_series(self):
        server = self.make_server()
        server.forecast("s0")
        server.forecast("s1")
        server.ingest("s0", np.zeros((1, N_DIMS)))
        assert not server.forecast("s0").cached, "history changed -> recompute"
        assert server.forecast("s1").cached, "untouched series stays cached"

    def test_hot_swap_serves_new_version_and_invalidates_old(self):
        server = self.make_server()
        old = server.forecast("s0")
        server.hot_swap("v2", model=model_factory(seed=9))
        new = server.forecast("s0")
        assert old.model_version == "v1" and new.model_version == "v2"
        assert not new.cached, "v1's cache entries must not leak into v2"
        assert server.registry.current().version == "v2"

    def test_hot_swap_from_checkpoint_dir(self, tmp_path):
        trained = model_factory(seed=5)
        CheckpointManager(tmp_path).save({"model": trained.state_dict()}, epoch=0, step=0)
        server = self.make_server()
        server.hot_swap("v2", checkpoint_dir=tmp_path)
        assert server.forecast("s0").model_version == "v2"
        with pytest.raises(ValueError):
            server.hot_swap("v3")  # needs exactly one source

    def test_degraded_path_is_flagged(self):
        server = self.make_server()  # batching off: every forward is inline
        response = server.forecast("s0")
        assert response.ok and response.degraded and response.batch_size == 1
        assert server.degraded_requests == 1

    def test_expired_deadline_resolves_timeout(self):
        # batching on so the deadline is judged on the worker side; a
        # timeout of 0 is already expired when the worker polls it
        server = self.make_server(batching=True, max_batch=2)
        response = server.submit("s0", timeout=0.0).result(timeout=10)
        assert response.status == "timeout" and response.error == "deadline exceeded"
        assert server.timeouts == 1
        server.shutdown()

    def test_batched_coalescing_n_requests_one_forward(self):
        server = self.make_server(batching=True, n_workers=1, max_batch=4, cache_enabled=False)
        forwards_before = server.registry.current().forwards
        # a ManualClock never advances, so the time trigger cannot fire:
        # exactly the size trigger forms exactly one batch of 4
        futures = [server.submit("s0") for _ in range(4)]
        responses = [f.result(timeout=10) for f in futures]
        assert all(r.ok and r.batch_size == 4 for r in responses)
        assert server.registry.current().forwards - forwards_before == 1
        for other in responses[1:]:
            np.testing.assert_array_equal(responses[0].forecast, other.forecast)
        server.shutdown()

    def test_shutdown_refuses_new_requests(self):
        server = self.make_server(batching=True, max_batch=1)
        assert server.forecast("s0").ok
        server.shutdown()
        refused = server.forecast("s0")
        assert refused.status == "error" and "shut down" in refused.error

    def test_spec_store_dim_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            ForecastServer(make_registry(), SeriesStore(n_dims=N_DIMS + 1))

    def test_stats_snapshot_is_jsonable(self):
        server = self.make_server()
        server.forecast("s0")
        snapshot = server.stats()
        assert json.dumps(snapshot)  # no numpy leaks
        assert snapshot["requests"] == 1
        assert snapshot["latency"]["count"] == 1
        assert snapshot["cache"]["misses"] >= 1


# ----------------------------------------------------------------------
# bench suite registry + serve-bench CLI
# ----------------------------------------------------------------------
class TestBenchSuiteRegistry:
    def test_all_suites_registered_with_distinct_names(self):
        from repro.perf.suites import available_suites, get_suite

        names = available_suites()
        assert {"autodiff", "inference", "serving"} <= set(names)
        benchmarks = {get_suite(n).benchmark for n in names}
        artifacts = {get_suite(n).artifact for n in names}
        assert len(benchmarks) == len(names), "benchmark keys must be unique for bench diff"
        assert len(artifacts) == len(names)

    def test_serving_suite_names_are_the_single_source_of_truth(self):
        from repro.perf.suites import get_suite
        from repro.serve.bench import BENCH_SERVING_FILENAME

        suite = get_suite("serving")
        assert suite.benchmark == "forecast_serving"
        assert suite.artifact == BENCH_SERVING_FILENAME

    def test_unknown_suite_is_a_value_error(self):
        from repro.perf.suites import get_suite, register_suite

        with pytest.raises(ValueError, match="unknown benchmark suite"):
            get_suite("nope")
        with pytest.raises(ValueError, match="already registered"):
            register_suite(get_suite("serving"))


class TestServeBenchCli:
    def test_smoke_writes_schema_valid_artifact_and_history(self, tmp_path, capsys):
        from repro.cli import main

        artifact = tmp_path / "BENCH_serving.json"
        history = tmp_path / "history.jsonl"
        assert main([
            "serve-bench", "--smoke",
            "--json", str(artifact), "--history", str(history),
        ]) == 0
        out = capsys.readouterr().out
        assert "micro-batching speedup" in out

        result = json.loads(artifact.read_text())
        assert result["benchmark"] == "forecast_serving"
        for key in ("machine", "config", "arms", "throughput_speedup", "cached_speedup"):
            assert key in result, key
        for arm in ("serial", "batched", "cached"):
            row = result["arms"][arm]
            for metric in ("requests_per_sec", "p50_seconds", "p95_seconds", "forwards"):
                assert metric in row, (arm, metric)
        assert result["arms"]["cached"]["cached_responses"] > 0

        from repro.perf.history import load_history

        records, skipped = load_history(history)
        assert skipped == 0 and len(records) == 1
        record = records[0]
        assert record["benchmark"] == "forecast_serving"
        assert "throughput_speedup" in record["metrics"]
        assert "arms.batched.p95_seconds" in record["metrics"]

    def test_bench_suite_flag_reaches_the_same_runner(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "bench", "--suite", "serving", "--smoke",
            "--no-json", "--history", str(tmp_path / "h.jsonl"),
        ]) == 0
        assert "forecast_serving" in capsys.readouterr().out
