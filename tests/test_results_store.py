"""Tests for the JSONL experiment-result store."""

import numpy as np
import pytest

from repro.training.experiment import ExperimentResult
from repro.training.results import ResultStore


def make_result(dataset="etth1", model="gru", pred_len=12, mse=1.0, mae=0.8):
    return ExperimentResult(
        dataset=dataset, model=model, pred_len=pred_len, mse=mse, mae=mae,
        per_seed=[{"mse": mse, "mae": mae, "rmse": mse**0.5, "mape": 0.1}],
    )


class TestResultStore:
    def test_append_and_read(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result())
        store.append(make_result(model="conformer", mse=0.5))
        assert len(store) == 2
        records = list(store.records())
        assert records[0]["model"] == "gru"
        assert records[1]["mse"] == 0.5
        assert "timestamp" in records[0]

    def test_empty_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "missing.jsonl"))
        assert len(store) == 0
        assert store.query() == []

    def test_query_filters(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result(dataset="etth1", model="gru"))
        store.append(make_result(dataset="wind", model="gru"))
        store.append(make_result(dataset="wind", model="conformer", pred_len=48))
        assert len(store.query(dataset="wind")) == 2
        assert len(store.query(model="gru")) == 2
        assert len(store.query(dataset="wind", pred_len=48)) == 1

    def test_tags(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result(), tags={"profile": "tiny", "note": "smoke"})
        rec = next(store.records())
        assert rec["tags"]["profile"] == "tiny"

    def test_best_per_cell(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result(model="gru", mse=1.0))
        store.append(make_result(model="conformer", mse=0.4))
        store.append(make_result(dataset="wind", model="gru", mse=2.0))
        best = store.best_per_cell()
        assert best[("etth1", 12)]["model"] == "conformer"
        assert best[("wind", 12)]["mse"] == 2.0

    def test_leaderboard_latest_per_model(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result(model="gru", mse=1.0))
        store.append(make_result(model="gru", mse=0.7))  # re-run: later wins
        store.append(make_result(model="conformer", mse=0.9))
        board = store.leaderboard("etth1", 12)
        assert [r["model"] for r in board] == ["gru", "conformer"]
        assert board[0]["mse"] == 0.7

    def test_summary_table(self, tmp_path):
        store = ResultStore(str(tmp_path / "runs.jsonl"))
        store.append(make_result())
        text = store.summary_table()
        assert "etth1" in text and "gru" in text

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"ok": 1}\nnot-json\n')
        store = ResultStore(str(path))
        with pytest.raises(ValueError):
            list(store.records())

    def test_creates_parent_dirs(self, tmp_path):
        store = ResultStore(str(tmp_path / "deep" / "nested" / "runs.jsonl"))
        store.append(make_result())
        assert len(store) == 1
