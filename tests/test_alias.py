"""Ownership sanitizer gate: seeded aliasing bugs must be caught, named,
and attributed — and the clean inference paths must stay clean.

Each test plants one deliberate violation of the arena/plan-cache
ownership contracts (the "seeded mutations" of the aliasing PR) and
asserts the :mod:`repro.analysis.alias` guard reports it with the right
rule id, arena tag / plan key, and op attribution.  The interplay tests
then run the real ``predict`` / ``predict_with_uncertainty`` paths under
the strict guard to prove the shipped kernels honour the contracts the
seeded bugs break.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.alias import (
    RULE_ARENA_TAPED,
    RULE_PLAN_WRITE,
    RULE_USE_AFTER_RELEASE,
    AliasError,
    AliasSanitizer,
    alias_guard,
)
from repro.analysis.sanitizer import TensorSanitizerError, sanitize
from repro.tensor import Tensor, get_arena, inference_mode, plan_cache
from repro.tensor import tensor as tensor_mod
from repro.tensor.arena import BufferArena
from repro.tensor.cache import PlanCache
from repro.training import PROFILES

pytestmark = pytest.mark.alias


def _smoke_settings():
    return replace(PROFILES["tiny"], input_len=24, label_len=12, batch_size=8, n_points=400)


def _conformer_and_batch(seed: int = 0):
    from repro.perf.bench_inference import _model_and_batch

    return _model_and_batch("conformer", _smoke_settings(), seed=seed)


def _fresh_pair():
    """Private arena + cache so tests never pollute the process-wide ones."""
    return BufferArena(), PlanCache()


# ----------------------------------------------------------------------
# seeded mutation #1: use-after-release
# ----------------------------------------------------------------------
class TestUseAfterRelease:
    def test_released_buffer_in_op_is_reported(self):
        arena, cache = _fresh_pair()
        with pytest.raises(AliasError) as exc_info:
            with alias_guard(arena=arena, cache=cache):
                buf = arena.get("test.uar", (4, 4), np.float64)
                buf[:] = 1.0
                arena.release("test.")
                # stale handle flows back through the engine
                Tensor(buf) + Tensor(np.ones((4, 4)))
        finding = exc_info.value.finding
        assert finding.rule_id == RULE_USE_AFTER_RELEASE
        assert finding.detail["arena_tag"] == "test.uar"
        assert finding.op == "add"

    def test_view_of_released_buffer_is_reported(self):
        arena, cache = _fresh_pair()
        with pytest.raises(AliasError) as exc_info:
            with alias_guard(arena=arena, cache=cache):
                buf = arena.get("test.view", (4, 4), np.float64)
                buf[:] = 1.0
                view = buf[1:, :]  # .base chain leads to the tracked buffer
                arena.release("test.")
                Tensor(view).relu()
        assert exc_info.value.finding.rule_id == RULE_USE_AFTER_RELEASE

    def test_release_poisons_float_buffers(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache):
            buf = arena.get("test.poison", (8,), np.float64)
            buf[:] = 3.0
            arena.release("test.")
            assert np.isnan(buf).all(), "released buffer must be NaN-poisoned"

    def test_checkout_after_release_is_clean(self):
        """Re-checking out a released slot is the designed reuse, not a bug."""
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache) as guard:
            first = arena.get("test.reuse", (4,), np.float64)
            arena.release("test.")
            again = arena.get("test.reuse", (4,), np.float64)
            assert again is first
            again[:] = 2.0
            Tensor(again) * Tensor(np.ones(4))
        assert not guard.findings

    def test_release_without_guard_is_free_and_silent(self):
        arena, _ = _fresh_pair()
        buf = arena.get("test.off", (4,), np.float64)
        buf[:] = 5.0
        assert arena.release("test.") == 0
        assert (buf == 5.0).all(), "no poison without a guard"


# ----------------------------------------------------------------------
# seeded mutation #2: in-place write to a cached plan
# ----------------------------------------------------------------------
class TestPlanWriteTrap:
    def test_plans_are_frozen_at_insertion(self):
        _, cache = _fresh_pair()
        mask = cache.get(("mask", 8), lambda: np.triu(np.ones((8, 8))))
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = 7.0

    def test_nested_plan_arrays_are_frozen(self):
        _, cache = _fresh_pair()
        plan = cache.get(
            ("pair", 4),
            lambda: {"idx": np.arange(4), "w": [np.ones(4), np.zeros(4)]},
        )
        for array in (plan["idx"], *plan["w"]):
            assert not array.flags.writeable

    def test_rearmed_write_is_caught_on_access(self):
        _, cache = _fresh_pair()
        arena, _ = _fresh_pair()
        with pytest.raises(AliasError) as exc_info:
            with alias_guard(arena=arena, cache=cache):
                mask = cache.get(("mask", 4), lambda: np.ones((4, 4)))
                mask.setflags(write=True)  # the seeded bug: dodge the freeze
                mask[0, 0] = 99.0
                cache.get(("mask", 4), lambda: np.ones((4, 4)))  # re-access
        finding = exc_info.value.finding
        assert finding.rule_id == RULE_PLAN_WRITE
        assert "('mask', 4)" in finding.detail["plan_key"]

    def test_mutation_after_last_access_is_caught_at_guard_exit(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache, raise_on_error=False) as guard:
            table = cache.get(("tbl", 2), lambda: np.zeros(2))
            table.setflags(write=True)
            table[0] = 1.0  # never accessed again inside the block
        assert [f.rule_id for f in guard.findings] == [RULE_PLAN_WRITE]
        assert "at guard exit" in guard.findings[0].message

    def test_rearming_writeable_alone_is_reported(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache, raise_on_error=False) as guard:
            mask = cache.get(("flag", 3), lambda: np.ones(3))
            mask.setflags(write=True)  # re-armed but not (yet) written
            cache.get(("flag", 3), lambda: np.ones(3))
        assert any(
            f.rule_id == RULE_PLAN_WRITE and "re-armed" in f.message
            for f in guard.findings
        )

    def test_evicted_plans_are_untracked(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache, raise_on_error=False) as guard:
            doomed = cache.get(("gone", 1), lambda: np.ones(1))
            cache.invalidate()
            doomed.setflags(write=True)
            doomed[0] = -1.0  # mutating an evicted plan is not a violation
        assert not guard.findings


# ----------------------------------------------------------------------
# seeded mutation #3: arena buffer pinned by the tape
# ----------------------------------------------------------------------
class TestTapePinning:
    def test_taped_op_on_live_arena_buffer_is_reported(self):
        arena, cache = _fresh_pair()
        with pytest.raises(AliasError) as exc_info:
            with alias_guard(arena=arena, cache=cache):
                buf = arena.get("test.taped", (4,), np.float64)
                buf[:] = 1.0
                weight = Tensor(np.ones(4), requires_grad=True)
                Tensor(buf) * weight  # backward() would re-read the slot
        finding = exc_info.value.finding
        assert finding.rule_id == RULE_ARENA_TAPED
        assert finding.detail["arena_tag"] == "test.taped"

    def test_untaped_use_of_live_buffer_is_clean(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache) as guard:
            buf = arena.get("test.ok", (4,), np.float64)
            buf[:] = 1.0
            with inference_mode():
                Tensor(buf) * Tensor(np.ones(4))
        assert not guard.findings


# ----------------------------------------------------------------------
# reporting, layering, hygiene
# ----------------------------------------------------------------------
class _EventLogger:
    def __init__(self):
        self.events = []

    def anomaly(self, kind, **fields):
        self.events.append((kind, fields))


class TestReportingAndLayering:
    def test_findings_mirror_as_obs_anomalies(self):
        arena, cache = _fresh_pair()
        logger = _EventLogger()
        with alias_guard(logger=logger, raise_on_error=False, arena=arena, cache=cache):
            buf = arena.get("test.obs", (2,), np.float64)
            arena.release("test.")
            Tensor(buf).relu()
        kinds = [kind for kind, _ in logger.events]
        assert "alias_use_after_release" in kinds
        _, fields = logger.events[0]
        assert fields["rule_id"] == RULE_USE_AFTER_RELEASE
        assert fields["op"] == "relu"
        assert fields["arena_tag"] == "test.obs"

    def test_sanitize_alias_layers_over_numeric_checks(self):
        """``sanitize(alias=True)`` runs both sanitizers: numeric findings
        still raise through the delegating alias guard."""
        with pytest.raises(TensorSanitizerError), np.errstate(divide="ignore"):
            with sanitize(alias=True) as sanitizer:
                assert isinstance(tensor_mod.get_sanitizer(), AliasSanitizer)
                assert sanitizer.alias is not None
                Tensor(np.array([1.0, 0.0])) / Tensor(np.array([0.0, 1.0]))

    def test_sanitize_alias_catches_ownership_bugs_too(self):
        arena = get_arena()
        with pytest.raises(AliasError):
            with sanitize(alias=True):
                buf = arena.get("test.layered", (2,), np.float64)
                buf[:] = 1.0
                arena.release("test.layered")
                Tensor(buf) + Tensor(np.ones(2))
        arena.clear()

    def test_guard_restores_all_hooks(self):
        arena, cache = _fresh_pair()
        assert tensor_mod.get_sanitizer() is None
        with alias_guard(arena=arena, cache=cache):
            assert arena._alias_hook is not None
            assert cache._alias_hook is not None
            assert tensor_mod.get_sanitizer() is not None
        assert arena._alias_hook is None
        assert cache._alias_hook is None
        assert tensor_mod.get_sanitizer() is None

    def test_collect_mode_summary(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache, raise_on_error=False) as guard:
            buf = arena.get("test.sum", (2,), np.float64)
            arena.release("test.")
            Tensor(buf).relu()
        assert "1 finding(s)" in guard.summary()
        assert RULE_USE_AFTER_RELEASE in guard.summary()

    def test_clean_summary(self):
        arena, cache = _fresh_pair()
        with alias_guard(arena=arena, cache=cache) as guard:
            Tensor(np.ones(3)).sum()
        assert "clean" in guard.summary()


# ----------------------------------------------------------------------
# arena stats: dtype re-keys are not cold misses
# ----------------------------------------------------------------------
class TestArenaDtypeCollisions:
    def test_dtype_rekey_counts_as_collision_not_miss(self):
        arena = BufferArena()
        arena.get("t.a", (4,), np.float64)
        stats = arena.stats()
        assert (stats["misses"], stats["dtype_collisions"]) == (1, 0)
        arena.get("t.a", (4,), np.float32)  # compute-dtype flip, same geometry
        stats = arena.stats()
        assert (stats["misses"], stats["dtype_collisions"]) == (1, 1)
        arena.get("t.a", (8,), np.float32)  # new geometry: true cold miss
        stats = arena.stats()
        assert (stats["misses"], stats["dtype_collisions"]) == (2, 1)

    def test_hits_unaffected_by_collision_accounting(self):
        arena = BufferArena()
        arena.get("t.b", (4,), np.float64)
        arena.get("t.b", (4,), np.float64)
        arena.get("t.b", (4,), np.float32)
        arena.get("t.b", (4,), np.float32)
        stats = arena.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["dtype_collisions"] == 1

    def test_stats_flow_into_obs_gauges(self):
        from repro.obs import RunLogger

        class _Sink:
            enabled = True

            def emit(self, payload):
                pass

            def close(self):
                pass

        logger = RunLogger(sinks=[_Sink()])
        logger.record_cache_stats()
        snapshot = logger.metrics.snapshot()
        assert "arena.dtype_collisions" in snapshot, (
            "arena dtype_collisions must surface as an obs gauge"
        )


# ----------------------------------------------------------------------
# interplay with the inference fast path
# ----------------------------------------------------------------------
@pytest.mark.inference
class TestInferenceInterplay:
    def test_predict_is_clean_under_strict_guard(self):
        model, batch = _conformer_and_batch(seed=3)
        x_enc, x_mark, x_dec, y_mark, _ = batch
        with alias_guard() as guard:
            y = model.predict(x_enc, x_mark, x_dec, y_mark)
        assert not guard.findings
        assert np.isfinite(y).all(), "poisoned scratch leaked into the forecast"
        get_arena().clear()

    def test_mc_draws_reuse_arena_cleanly_under_guard(self):
        """predict_with_uncertainty re-enters the kernels once per MC draw;
        every call re-checks out the same (poisoned-on-release) slots and
        must fully overwrite them — any read-before-write would surface as
        NaN in the forecast, any stale handle as an AliasError."""
        model, batch = _conformer_and_batch(seed=4)
        x_enc, x_mark, x_dec, y_mark, _ = batch
        get_arena().clear()
        with alias_guard() as guard:
            arena = get_arena()
            first = model.predict_with_uncertainty(x_enc, x_mark, x_dec, y_mark, n_samples=3)
            hits_first = arena.stats()["hits"]
            second = model.predict_with_uncertainty(x_enc, x_mark, x_dec, y_mark, n_samples=3)
            assert arena.stats()["hits"] > hits_first, "second call must reuse slots"
        assert not guard.findings
        for result in (first, second):
            assert np.isfinite(result["mean"]).all()
            assert np.isfinite(result["samples"]).all()
        get_arena().clear()

    def test_seeded_leak_across_inference_exit_is_caught(self):
        """The bug the guard exists for: a kernel 'saves' scratch across
        the inference_mode() boundary (which releases the whole arena)."""
        arena = get_arena()
        with pytest.raises(AliasError) as exc_info:
            with alias_guard():
                with inference_mode():
                    leaked = arena.get("test.leak", (4,), np.float64)
                    leaked[:] = 1.0
                # outermost exit released every slot, poisoning `leaked`
                Tensor(leaked) + Tensor(np.ones(4))
        assert exc_info.value.finding.rule_id == RULE_USE_AFTER_RELEASE
        assert exc_info.value.finding.detail["arena_tag"] == "test.leak"
        arena.clear()
