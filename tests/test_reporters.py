"""Focused tests for repro.analysis.reporters.

The lint reporters are exercised incidentally by the CLI tests; this
module pins their behaviour directly — envelope versioning, count
ordering, finding ordering, text formatting (singular/plural, summary
line), the ``parse-error`` pseudo-rule path, and the ``repro.cli check``
report renderers that share the envelope.
"""

import json

import pytest

from repro.analysis.contracts import check_registry
from repro.analysis.lint import PARSE_ERROR, Finding, LintConfig, lint_paths
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    check_report_as_dict,
    render_check_json,
    render_check_text,
    render_json,
    render_text,
    report_as_dict,
)


def _findings():
    # deliberately unsorted construction order; rule ids out of order too
    return [
        Finding(path="a.py", line=3, col=4, rule_id="no-print", message="print call"),
        Finding(path="a.py", line=3, col=0, rule_id="noqa-unused", message="stale"),
        Finding(path="b.py", line=1, col=0, rule_id="no-print", message="print call"),
    ]


class TestTextReporter:
    def test_one_line_per_finding_plus_summary(self):
        text = render_text(_findings(), files_scanned=2)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0] == "a.py:3:4: no-print print call"
        assert lines[-1] == "3 findings in 2 files"

    def test_singular_noun(self):
        text = render_text(_findings()[:1], files_scanned=1)
        assert text.endswith("1 finding in 1 files")

    def test_empty_report_is_just_the_summary(self):
        assert render_text([], files_scanned=5) == "0 findings in 5 files"


class TestJsonReporter:
    def test_envelope_version_and_totals(self):
        payload = report_as_dict(_findings(), files_scanned=2)
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert payload["files_scanned"] == 2
        assert payload["total"] == 3

    def test_counts_are_sorted_by_rule_id(self):
        payload = report_as_dict(_findings())
        assert list(payload["counts"]) == ["no-print", "noqa-unused"]
        assert payload["counts"]["no-print"] == 2

    def test_findings_preserve_input_order(self):
        # the reporter does not re-sort; ordering is the engine's contract
        payload = report_as_dict(_findings())
        assert [(f["path"], f["line"], f["col"]) for f in payload["findings"]] == [
            ("a.py", 3, 4),
            ("a.py", 3, 0),
            ("b.py", 1, 0),
        ]

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(_findings(), files_scanned=2))
        assert payload == report_as_dict(_findings(), files_scanned=2)

    def test_finding_keys_are_stable(self):
        sample = report_as_dict(_findings())["findings"][0]
        assert set(sample) == {"path", "line", "col", "rule_id", "message"}


class TestParseErrorPath:
    def test_parse_error_renders_through_both_reporters(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == [PARSE_ERROR]
        text = render_text(findings, files_scanned=1)
        assert PARSE_ERROR in text
        assert text.endswith("1 finding in 1 files")
        payload = report_as_dict(findings, files_scanned=1)
        assert payload["counts"] == {PARSE_ERROR: 1}
        assert "syntax" in payload["findings"][0]["message"].lower()


class TestCheckReporters:
    @pytest.fixture(scope="class")
    def report(self):
        return check_registry(models=["dlinear"], smoke=True)

    def test_check_text_summary(self, report):
        text = render_check_text(report)
        assert text.endswith(
            f"0 findings in 1 models ({report.traces} traces, {report.ops_traced} ops)"
        )

    def test_check_json_envelope(self, report):
        payload = check_report_as_dict(report)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["models"] == ["dlinear"]
        assert payload["total"] == 0
        assert payload["counts"] == {}
        assert payload["traces"] == report.traces
        assert payload["ops_traced"] > 0

    def test_check_cells_carry_the_sweep_grid(self, report):
        payload = check_report_as_dict(report)
        cells = payload["cells"]
        assert len(cells) == report.traces
        assert {c["mode"] for c in cells} == {"float64", "float32"}
        sample = cells[0]
        assert set(sample) == {
            "model", "mode", "geometry", "batch", "violations", "output",
        }
        assert all(c["violations"] == 0 for c in cells)

    def test_check_json_round_trips(self, report):
        assert json.loads(render_check_json(report)) == check_report_as_dict(report)
