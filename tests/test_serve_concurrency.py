"""Concurrency and fault tests for the serving runtime.

Two properties a serving system must not lose under load:

1. **Conservation** — every submitted request resolves exactly once, as
   exactly one response; nothing is dropped, nothing is answered twice.
   (Futures make double-resolution an error by construction — a second
   ``set_result`` raises inside the worker and would surface as a dead
   shard — so asserting every future resolves covers both directions.)
2. **Fault degradation** — a worker killed mid-flight (via the shared
   :mod:`repro.ckpt.faults` machinery, injection point ``serve-batch``)
   must strand nothing: in-flight and queued requests are re-served
   through the unbatched degraded path, and later requests for the dead
   shard fall back inline.

Synchronization discipline: *no sleeps*.  Threads coordinate through
futures, a start barrier, and the batcher's own condition variable; the
deterministic fault tests additionally pin time with a ``ManualClock``
so batches form only via the size trigger, making batch shapes exact.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import List

import numpy as np
import pytest

from repro.ckpt.faults import inject_fault
from repro.serve import (
    ForecastServer,
    ManualClock,
    ModelRegistry,
    SeriesStore,
    ServingSpec,
)
from repro.training.experiment import ExperimentSettings, build_model

pytestmark = pytest.mark.serving

SETTINGS = ExperimentSettings(input_len=16, label_len=8)
PRED_LEN = 4
N_DIMS = 2


def make_server(n_series: int = 6, seed: int = 0, **kwargs) -> ForecastServer:
    spec = ServingSpec(
        input_len=SETTINGS.input_len,
        label_len=SETTINGS.label_len,
        pred_len=PRED_LEN,
        n_dims=N_DIMS,
    )

    def factory():
        return build_model("gru", N_DIMS, N_DIMS, PRED_LEN, SETTINGS, seed=seed)

    registry = ModelRegistry(factory, spec, dtype=np.float32)
    registry.publish("v1", factory())
    store = SeriesStore(n_dims=N_DIMS)
    rng = np.random.default_rng(seed)
    for i in range(n_series):
        store.ingest(f"s{i}", rng.normal(size=(40, N_DIMS)))
    return ForecastServer(registry, store, **kwargs)


def series_for_shard(server: ForecastServer, shard: int, count: int = 1) -> List[str]:
    """Series ids (from the store) routed to one specific worker shard."""
    matches = [s for s in server.store.series_ids() if server.pool.shard(s) == shard]
    assert len(matches) >= count, f"fixture needs {count} series on shard {shard}"
    return matches[:count]


class TestConcurrentLoad:
    N_PRODUCERS = 4
    REQUESTS_EACH = 25

    def _stress(self, server: ForecastServer) -> List:
        """Fire N_PRODUCERS x REQUESTS_EACH requests; return all futures."""
        series = server.store.series_ids()
        barrier = threading.Barrier(self.N_PRODUCERS)
        futures: List[List[Future]] = [[] for _ in range(self.N_PRODUCERS)]

        def produce(worker: int) -> None:
            barrier.wait()  # maximize submit-time contention
            for i in range(self.REQUESTS_EACH):
                series_id = series[(worker + i) % len(series)]
                futures[worker].append(server.submit(series_id))

        threads = [
            threading.Thread(target=produce, args=(t,), name=f"producer-{t}")
            for t in range(self.N_PRODUCERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [f for per_producer in futures for f in per_producer]

    def test_no_dropped_or_duplicated_responses(self):
        server = make_server(n_workers=3, max_batch=4, max_delay=0.002)
        try:
            futures = self._stress(server)
            total = self.N_PRODUCERS * self.REQUESTS_EACH
            assert len(futures) == total
            responses = [f.result(timeout=30) for f in futures]
            assert all(r.ok for r in responses), [r.error for r in responses if not r.ok][:3]
            # conservation: one response per request, accounted exactly once
            # across the three serving paths
            computed = sum(1 for r in responses if not r.cached)
            cached = sum(1 for r in responses if r.cached)
            assert computed + cached == total
            stats = server.pool.stats()
            assert stats["crashes"] == 0 and stats["batch_errors"] == 0
            # every batch-path delivery is visible in the shard counters
            batched = sum(1 for r in responses if not r.cached and not r.degraded)
            coalesced = sum(shard["coalesced"] for shard in stats["shards"])
            expired = server.timeouts
            assert coalesced == batched + expired
        finally:
            server.shutdown()
        assert server.requests == self.N_PRODUCERS * self.REQUESTS_EACH

    def test_stress_with_mid_run_worker_kill_serves_every_request(self):
        server = make_server(n_workers=2, max_batch=4, max_delay=0.002, cache_enabled=False)
        try:
            # arm the crash for the third batched forward: it fires in the
            # middle of the run, with requests in flight and queued behind
            with inject_fault("serve-batch:2") as plan:
                futures = self._stress(server)
                responses = [f.result(timeout=30) for f in futures]
            assert plan.fired, "the load must actually reach the third batch"
            assert len(responses) == self.N_PRODUCERS * self.REQUESTS_EACH
            assert all(r.ok for r in responses), [r.error for r in responses if not r.ok][:3]
            assert server.pool.stats()["crashes"] >= 1
            assert server.pool.alive_count() < 2
            assert any(r.degraded for r in responses), "the dead shard's work went degraded"
        finally:
            server.shutdown()


class TestWorkerCrashDeterministic:
    """Exact-shape fault tests: ManualClock pins batches to the size trigger."""

    def test_killed_worker_rescues_inflight_and_queued(self):
        server = make_server(
            clock=ManualClock(), n_workers=2, max_batch=4, max_delay=1.0, cache_enabled=False
        )
        try:
            victim_series = series_for_shard(server, shard=0)[0]
            with inject_fault("serve-batch") as plan:
                # 6 requests, batch trigger at 4: the crash hits a batch of 4
                # in flight with 2 still queued behind it on the same shard
                futures = [server.submit(victim_series) for _ in range(6)]
                responses = [f.result(timeout=30) for f in futures]
            assert plan.fired
            assert [r.status for r in responses] == ["ok"] * 6
            assert all(r.degraded for r in responses), "all six re-served unbatched"
            assert all(r.batch_size == 1 for r in responses)
            assert server.pool.crashes == 1
            assert server.pool.alive_count() == 1
            assert not server.pool.is_alive(0)
        finally:
            server.shutdown()

    def test_dead_shard_falls_back_inline_while_other_shard_batches(self):
        server = make_server(
            clock=ManualClock(), n_workers=2, max_batch=4, max_delay=1.0, cache_enabled=False
        )
        try:
            victim = series_for_shard(server, shard=0)[0]
            survivor = series_for_shard(server, shard=1)[0]
            with inject_fault("serve-batch"):
                for f in [server.submit(victim) for _ in range(4)]:
                    assert f.result(timeout=30).ok
            # the dead shard now serves inline on the submitting thread
            late = server.forecast(victim)
            assert late.ok and late.degraded and late.batch_size == 1
            # the surviving worker still micro-batches (fault fires once)
            futures = [server.submit(survivor) for _ in range(4)]
            responses = [f.result(timeout=30) for f in futures]
            assert all(r.ok and not r.degraded and r.batch_size == 4 for r in responses)
            assert server.pool.crashes == 1
        finally:
            server.shutdown()

    def test_handler_error_fails_over_without_killing_the_worker(self):
        server = make_server(
            clock=ManualClock(), n_workers=1, max_batch=2, max_delay=1.0, cache_enabled=False
        )
        try:
            original = server.registry.current().forecast_batch
            calls = {"n": 0}

            def flaky(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("transient batch failure")
                return original(*args, **kwargs)

            server.registry.current().forecast_batch = flaky
            futures = [server.submit("s0"), server.submit("s1")]
            responses = [f.result(timeout=30) for f in futures]
            # both requests survived via the degraded retry, and the worker
            # is still alive and batching
            assert all(r.ok and r.degraded for r in responses)
            assert server.pool.batch_errors == 1
            assert server.pool.alive_count() == 1
        finally:
            server.shutdown()

    def test_shutdown_drains_dead_shard_queues(self):
        server = make_server(
            clock=ManualClock(), n_workers=1, max_batch=4, max_delay=1.0, cache_enabled=False
        )
        victim = series_for_shard(server, shard=0)[0]
        with inject_fault("serve-batch"):
            for f in [server.submit(victim) for _ in range(4)]:
                assert f.result(timeout=30).ok
        # the lone worker is dead; pool.submit refuses, so new submits are
        # served inline — but force one into the dead queue directly to
        # prove close() rescues stragglers a crashed worker never saw
        from repro.serve import PendingRequest

        stranded = PendingRequest(series_id=victim, horizon=PRED_LEN, enqueued_at=0.0)
        server.pool.batchers[0]._queue.append(stranded)
        server.shutdown()
        response = stranded.future.result(timeout=30)
        assert response.ok and response.degraded
