"""Tests for all baseline forecasters: shapes, training, special behaviour."""

import numpy as np
import pytest

from repro import baselines
from repro.optim import Adam
from repro.tensor import Tensor

RNG = np.random.default_rng(44)

ENC_IN, C_OUT, INPUT_LEN, LABEL_LEN, PRED_LEN, D_TIME = 4, 4, 16, 8, 8, 4


def batch_inputs(batch=2):
    x_enc = Tensor(RNG.normal(size=(batch, INPUT_LEN, ENC_IN)))
    x_mark = Tensor(RNG.normal(size=(batch, INPUT_LEN, D_TIME)))
    x_dec = Tensor(RNG.normal(size=(batch, LABEL_LEN + PRED_LEN, ENC_IN)))
    y_mark = Tensor(RNG.normal(size=(batch, LABEL_LEN + PRED_LEN, D_TIME)))
    return x_enc, x_mark, x_dec, y_mark


def make_model(cls, **kwargs):
    defaults = dict(
        enc_in=ENC_IN,
        dec_in=ENC_IN,
        c_out=C_OUT,
        pred_len=PRED_LEN,
        d_model=8,
        n_heads=2,
        e_layers=2,
        d_layers=1,
        d_ff=16,
        dropout=0.0,
        d_time=D_TIME,
        seed=0,
    )
    defaults.update(kwargs)
    return cls(**defaults)


TRANSFORMER_CLASSES = [
    baselines.VanillaTransformer,
    baselines.Informer,
    baselines.Reformer,
    baselines.Longformer,
    baselines.LogTrans,
]


class TestTransformerBaselines:
    @pytest.mark.parametrize("cls", TRANSFORMER_CLASSES)
    def test_output_shape(self, cls):
        model = make_model(cls)
        out = model(*batch_inputs())
        assert out.shape == (2, PRED_LEN, C_OUT)

    @pytest.mark.parametrize("cls", TRANSFORMER_CLASSES)
    def test_gradients_flow(self, cls):
        model = make_model(cls)
        out = model(*batch_inputs())
        target = Tensor(RNG.normal(size=(2, PRED_LEN, C_OUT)))
        model.compute_loss(out, target).backward()
        grads = [p.grad for p in model.parameters()]
        assert sum(g is not None for g in grads) > len(grads) // 2

    def test_informer_distils(self):
        model = make_model(baselines.Informer)
        assert model.distil_layers is not None
        out = model(*batch_inputs())
        assert out.shape == (2, PRED_LEN, C_OUT)

    def test_one_training_step_reduces_loss(self):
        model = make_model(baselines.VanillaTransformer)
        inputs = batch_inputs()
        target = Tensor(RNG.normal(scale=0.3, size=(2, PRED_LEN, C_OUT)))
        opt = Adam(model.parameters(), lr=5e-3)
        losses = []
        for _ in range(6):
            opt.zero_grad()
            out = model(*inputs)
            loss = model.compute_loss(out, target)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestAutoformer:
    def make(self, **kwargs):
        return baselines.Autoformer(
            enc_in=ENC_IN,
            dec_in=ENC_IN,
            c_out=C_OUT,
            pred_len=PRED_LEN,
            d_model=8,
            n_heads=2,
            e_layers=1,
            d_layers=1,
            d_ff=16,
            moving_avg=5,
            dropout=0.0,
            d_time=D_TIME,
            **kwargs,
        )

    def test_output_shape(self):
        out = self.make()(*batch_inputs())
        assert out.shape == (2, PRED_LEN, C_OUT)

    def test_trend_accumulation_used(self):
        """Shifting the input mean should shift the forecast (trend init)."""
        model = self.make()
        model.eval()
        x_enc, x_mark, x_dec, y_mark = batch_inputs()
        out1 = model(x_enc, x_mark, x_dec, y_mark).data
        shifted = Tensor(x_enc.data + 5.0)
        out2 = model(shifted, x_mark, x_dec, y_mark).data
        assert out2.mean() > out1.mean() + 1.0

    def test_gradients(self):
        model = self.make()
        out = model(*batch_inputs())
        model.compute_loss(out, Tensor(RNG.normal(size=(2, PRED_LEN, C_OUT)))).backward()
        assert model.projection.weight.grad is not None


class TestRNNBaselines:
    def test_gru_shape(self):
        model = baselines.GRUForecaster(enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, hidden_size=8, d_time=D_TIME)
        assert model(*batch_inputs()).shape == (2, PRED_LEN, C_OUT)

    def test_gru_two_layers_default(self):
        model = baselines.GRUForecaster(enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, d_time=D_TIME)
        assert model.rnn.num_layers == 2

    def test_lstnet_shape(self):
        model = baselines.LSTNet(enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, hidden_size=8, d_time=D_TIME)
        assert model(*batch_inputs()).shape == (2, PRED_LEN, C_OUT)

    def test_lstnet_even_kernel_fixed(self):
        model = baselines.LSTNet(enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, kernel_size=4, d_time=D_TIME)
        assert model(*batch_inputs()).shape == (2, PRED_LEN, C_OUT)

    def test_gru_trains(self):
        model = baselines.GRUForecaster(
            enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, hidden_size=8, d_time=D_TIME, dropout=0.0
        )
        inputs = batch_inputs()
        target = Tensor(RNG.normal(scale=0.3, size=(2, PRED_LEN, C_OUT)))
        opt = Adam(model.parameters(), lr=1e-2)
        first = None
        for _ in range(10):
            opt.zero_grad()
            loss = model.compute_loss(model(*inputs), target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first


class TestNBeats:
    def test_shape(self):
        model = baselines.NBeats(enc_in=ENC_IN, c_out=C_OUT, input_len=INPUT_LEN, pred_len=PRED_LEN, hidden_size=16)
        assert model(*batch_inputs()).shape == (2, PRED_LEN, C_OUT)

    def test_channel_independent(self):
        """Changing channel 0 must not change the forecast of channel 1."""
        model = baselines.NBeats(enc_in=ENC_IN, c_out=C_OUT, input_len=INPUT_LEN, pred_len=PRED_LEN, hidden_size=16)
        model.eval()
        x_enc, x_mark, x_dec, y_mark = batch_inputs()
        out1 = model(x_enc, x_mark, x_dec, y_mark).data
        perturbed = Tensor(x_enc.data.copy())
        perturbed.data[:, :, 0] += 3.0
        out2 = model(perturbed, x_mark, x_dec, y_mark).data
        np.testing.assert_allclose(out1[:, :, 1:], out2[:, :, 1:], atol=1e-10)
        assert not np.allclose(out1[:, :, 0], out2[:, :, 0])

    def test_residual_stacking(self):
        model = baselines.NBeats(
            enc_in=1, c_out=1, input_len=INPUT_LEN, pred_len=PRED_LEN, hidden_size=16, n_blocks=1
        )
        assert len(model.blocks) == 1


class TestTS2Vec:
    def make(self):
        return baselines.TS2Vec(
            enc_in=ENC_IN, c_out=C_OUT, pred_len=PRED_LEN, d_repr=8, depth=2, d_time=D_TIME, seed=0
        )

    def test_shape(self):
        model = self.make()
        assert model(*batch_inputs()).shape == (2, PRED_LEN, C_OUT)

    def test_contrastive_loss_added_in_training(self):
        model = self.make()
        inputs = batch_inputs()
        target = Tensor(RNG.normal(size=(2, PRED_LEN, C_OUT)))
        out = model(*inputs)
        train_loss = model.compute_loss(out, target).item()
        model.eval()
        out_eval = model(*inputs)
        eval_loss = model.compute_loss(out_eval, target).item()
        assert model._last_contrastive is None
        assert train_loss != pytest.approx(eval_loss)

    def test_encode_shape(self):
        model = self.make()
        x_enc, x_mark, _, _ = batch_inputs()
        assert model.encode(x_enc, x_mark).shape == (2, INPUT_LEN, 8)

    def test_contrastive_loss_positive(self):
        a = Tensor(RNG.normal(size=(2, 8, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 8, 4)), requires_grad=True)
        loss = baselines.hierarchical_contrastive_loss(a, b)
        assert loss.item() > 0
        loss.backward()
        assert a.grad is not None

    def test_contrastive_identical_views_low_loss(self):
        a = Tensor(RNG.normal(size=(2, 8, 16)) * 5)
        different = Tensor(RNG.normal(size=(2, 8, 16)) * 5)
        same = baselines.hierarchical_contrastive_loss(a, a).item()
        cross = baselines.hierarchical_contrastive_loss(a, different).item()
        assert same < cross


class TestStatistical:
    def test_persistence(self):
        model = baselines.NaivePersistence(pred_len=5)
        x = RNG.normal(size=(3, 10, 2))
        out = model.predict(x)
        assert out.shape == (3, 5, 2)
        np.testing.assert_array_equal(out[:, 0, :], x[:, -1, :])
        np.testing.assert_array_equal(out[:, 4, :], x[:, -1, :])

    def test_seasonal_naive(self):
        model = baselines.SeasonalNaive(pred_len=6, period=4)
        x = RNG.normal(size=(2, 12, 1))
        out = model.predict(x)
        np.testing.assert_array_equal(out[:, :4, :], x[:, -4:, :])
        np.testing.assert_array_equal(out[:, 4:6, :], x[:, -4:-2, :])

    def test_seasonal_naive_perfect_on_periodic(self):
        t = np.arange(40)
        series = np.sin(2 * np.pi * t / 8)[None, :, None]
        model = baselines.SeasonalNaive(pred_len=8, period=8)
        out = model.predict(series[:, :32, :])
        np.testing.assert_allclose(out[0, :, 0], series[0, 32:40, 0], atol=1e-10)

    def test_seasonal_naive_window_too_short(self):
        model = baselines.SeasonalNaive(pred_len=4, period=24)
        with pytest.raises(ValueError):
            model.predict(RNG.normal(size=(1, 10, 1)))

    def test_ar_recovers_ar_process(self):
        """AR(2) fit should forecast an AR(2) process well."""
        rng = np.random.default_rng(0)
        n = 2000
        series = np.zeros(n)
        for i in range(2, n):
            series[i] = 0.6 * series[i - 1] - 0.3 * series[i - 2] + rng.normal(0, 0.1)
        model = baselines.ARForecaster(pred_len=5, order=2).fit(series[:, None])
        np.testing.assert_allclose(model.coef_[0], [0.6, -0.3], atol=0.05)

    def test_ar_predict_shape(self):
        model = baselines.ARForecaster(pred_len=7, order=3).fit(RNG.normal(size=(200, 2)))
        assert model.predict(RNG.normal(size=(4, 20, 2))).shape == (4, 7, 2)

    def test_ar_unfit_raises(self):
        with pytest.raises(RuntimeError):
            baselines.ARForecaster(pred_len=3).predict(RNG.normal(size=(1, 20, 1)))

    def test_var_uses_cross_channel_info(self):
        """Channel 1 = lagged channel 0: VAR should exploit it, AR cannot."""
        rng = np.random.default_rng(1)
        n = 3000
        driver = rng.normal(size=n).cumsum() * 0.01 + np.sin(np.arange(n) / 5.0)
        follower = np.roll(driver, 1) + rng.normal(0, 0.01, n)
        data = np.column_stack([driver, follower])
        var = baselines.VARForecaster(pred_len=1, order=3).fit(data[:2500])
        windows = np.stack([data[i : i + 20] for i in range(2500, 2900, 10)])
        targets = np.stack([data[i + 20] for i in range(2500, 2900, 10)])
        pred = var.predict(windows)[:, 0, :]
        mse_var = np.mean((pred[:, 1] - targets[:, 1]) ** 2)
        assert mse_var < 0.05

    def test_var_predict_shape(self):
        model = baselines.VARForecaster(pred_len=6, order=2).fit(RNG.normal(size=(300, 3)))
        assert model.predict(RNG.normal(size=(2, 15, 3))).shape == (2, 6, 3)

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            baselines.ARForecaster(pred_len=1, order=0)
        with pytest.raises(ValueError):
            baselines.VARForecaster(pred_len=1, order=0)
        with pytest.raises(ValueError):
            baselines.SeasonalNaive(pred_len=1, period=0)
