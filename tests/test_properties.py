"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic properties the library's correctness rests on:
autodiff linearity, softmax simplex membership, decomposition identity,
scaler round-trips, window arithmetic, attention-weight normalization,
conformal coverage guarantees, and checkpoint round-trips (arbitrary
module trees and optimizer configs survive serialization bit-exactly;
crash-and-resume training matches uninterrupted training step for step).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.core import SeriesDecomposition
from repro.data import StandardScaler, WindowedDataset
from repro.eval import conformal_radius
from repro.tensor import Tensor, functional as F


def arrays(shape, lo=-10.0, hi=10.0):
    return hnp.arrays(
        np.float64,
        shape,
        elements=st.floats(lo, hi, allow_nan=False, allow_infinity=False, width=64),
    )


small_dims = st.integers(min_value=1, max_value=5)


class TestAutodiffProperties:
    @given(arrays((3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_grad_of_sum_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(arrays((2, 3)), st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_gradient_linearity(self, data, alpha):
        """grad of (alpha * f) == alpha * grad of f."""
        x1 = Tensor(data, requires_grad=True)
        (x1 * x1).sum().backward()
        x2 = Tensor(data, requires_grad=True)
        (alpha * (x2 * x2)).sum().backward()
        np.testing.assert_allclose(x2.grad, alpha * x1.grad, atol=1e-9)

    @given(arrays((3, 3)), arrays((3, 3)))
    @settings(max_examples=25, deadline=None)
    def test_sum_rule(self, a_data, b_data):
        """grad through f+g equals grad through f plus grad through g."""
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data)
        ((a * a) + (a * b)).sum().backward()
        expected = 2 * a_data + b_data
        np.testing.assert_allclose(a.grad, expected, atol=1e-9)

    @given(arrays((4,), lo=-3, hi=3))
    @settings(max_examples=25, deadline=None)
    def test_exp_log_roundtrip_grad(self, data):
        x = Tensor(data, requires_grad=True)
        F.log(F.exp(x)).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data), atol=1e-8)


class TestSoftmaxProperties:
    @given(arrays((3, 7), lo=-50, hi=50))
    @settings(max_examples=30, deadline=None)
    def test_simplex(self, data):
        out = F.softmax(Tensor(data), axis=-1).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)

    @given(arrays((2, 5), lo=-20, hi=20), st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance(self, data, shift):
        a = F.softmax(Tensor(data), axis=-1).data
        b = F.softmax(Tensor(data + shift), axis=-1).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(arrays((6,), lo=-5, hi=5))
    @settings(max_examples=25, deadline=None)
    def test_log_softmax_consistency(self, data):
        log_sm = F.log_softmax(Tensor(data)).data
        sm = F.softmax(Tensor(data)).data
        np.testing.assert_allclose(np.exp(log_sm), sm, atol=1e-9)


class TestDecompositionProperties:
    @given(arrays((2, 20, 3)), st.sampled_from([3, 5, 9, 15]))
    @settings(max_examples=25, deadline=None)
    def test_reconstruction(self, data, kernel):
        trend, seasonal = SeriesDecomposition(kernel)(Tensor(data))
        np.testing.assert_allclose(trend.data + seasonal.data, data, atol=1e-9)

    @given(st.floats(-100, 100, allow_nan=False), st.sampled_from([3, 7]))
    @settings(max_examples=20, deadline=None)
    def test_constant_is_pure_trend(self, value, kernel):
        x = Tensor(np.full((1, 16, 2), value))
        trend, seasonal = SeriesDecomposition(kernel)(x)
        np.testing.assert_allclose(trend.data, value, atol=1e-9)
        np.testing.assert_allclose(seasonal.data, 0.0, atol=1e-9)

    @given(arrays((1, 24, 2)), st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_shift_equivariance(self, data, shift):
        """Decomp(x + c) == (trend + c, seasonal)."""
        decomp = SeriesDecomposition(5)
        t1, s1 = decomp(Tensor(data))
        t2, s2 = decomp(Tensor(data + shift))
        np.testing.assert_allclose(t2.data, t1.data + shift, atol=1e-9)
        np.testing.assert_allclose(s2.data, s1.data, atol=1e-9)


class TestScalerProperties:
    @given(arrays((30, 4), lo=-1e3, hi=1e3))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, data):
        scaler = StandardScaler().fit(data)
        recovered = scaler.inverse_transform(scaler.transform(data))
        np.testing.assert_allclose(recovered, data, atol=1e-6)

    @given(arrays((25, 3), lo=-100, hi=100))
    @settings(max_examples=25, deadline=None)
    def test_transform_is_affine(self, data):
        """transform(a) - transform(b) is scale-only (no shift)."""
        scaler = StandardScaler().fit(data)
        a, b = data[:5], data[5:10]
        diff_raw = a - b
        diff_scaled = scaler.transform(a) - scaler.transform(b)
        np.testing.assert_allclose(diff_scaled * scaler.std_, diff_raw, atol=1e-8)


class TestWindowProperties:
    @given(
        st.integers(min_value=20, max_value=120),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_count_and_bounds(self, n, input_len, pred_len, stride):
        values = np.arange(n, dtype=float)[:, None]
        marks = np.zeros((n, 2))
        ws = WindowedDataset(values, marks, input_len, pred_len, stride=stride)
        usable = n - input_len - pred_len + 1
        assert len(ws) == max(0, (usable + stride - 1) // stride)
        if len(ws):
            last = ws[len(ws) - 1]
            # final target must stay inside the series
            assert last.y[-1, 0] <= n - 1

    @given(st.integers(min_value=30, max_value=80), st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_x_dec_layout(self, n, index_offset):
        values = np.arange(n, dtype=float)[:, None]
        ws = WindowedDataset(values, np.zeros((n, 1)), 8, 4, label_len=3)
        index = min(index_offset, len(ws) - 1)
        s = ws[index]
        # label section equals tail of encoder input; pred section is zeros
        np.testing.assert_array_equal(s.x_dec[:3, 0], s.x_enc[-3:, 0])
        np.testing.assert_array_equal(s.x_dec[3:, 0], 0.0)
        # target continues exactly where the encoder window ends
        assert s.y[0, 0] == s.x_enc[-1, 0] + 1


class TestAttentionProperties:
    @given(arrays((1, 1, 6, 4), lo=-3, hi=3))
    @settings(max_examples=15, deadline=None)
    def test_full_attention_convexity(self, q_data):
        """Attention output is a convex combination of values: bounded by
        the min/max of V per channel."""
        q = Tensor(q_data)
        k = Tensor(q_data[..., ::-1].copy())
        v_data = np.random.default_rng(0).normal(size=(1, 1, 6, 4))
        out = nn.FullAttention()(q, k, Tensor(v_data)).data
        assert np.all(out <= v_data.max(axis=2, keepdims=True) + 1e-9)
        assert np.all(out >= v_data.min(axis=2, keepdims=True) - 1e-9)

    @given(st.integers(min_value=2, max_value=10), st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_window_attention_matches_banded_full(self, length, window):
        rng = np.random.default_rng(length)
        q = Tensor(rng.normal(size=(1, 1, length, 3)))
        k = Tensor(rng.normal(size=(1, 1, length, 3)))
        v = Tensor(rng.normal(size=(1, 1, length, 3)))
        swa = nn.SlidingWindowAttention(window=window)(q, k, v).data
        idx = np.arange(length)
        band = np.abs(idx[:, None] - idx[None, :]) > window // 2
        full = nn.FullAttention()(q, k, v, mask=band).data
        np.testing.assert_allclose(swa, full, atol=1e-9)


class TestDiagnosticsProperties:
    @given(arrays((120,), lo=-20, hi=20), st.sampled_from([4, 8, 12]))
    @settings(max_examples=20, deadline=None)
    def test_seasonal_strength_bounded(self, data, period):
        from repro.data.diagnostics import seasonal_strength

        s = seasonal_strength(data, period)
        assert 0.0 <= s <= 1.0

    @given(arrays((150,), lo=-50, hi=50))
    @settings(max_examples=20, deadline=None)
    def test_burstiness_bounded(self, data):
        from repro.data.diagnostics import burstiness

        assert -1.0 <= burstiness(data) <= 1.0

    @given(arrays((200,), lo=-10, hi=10))
    @settings(max_examples=15, deadline=None)
    def test_ljung_box_p_value_valid(self, data):
        from repro.data.diagnostics import ljung_box

        p = ljung_box(data, lags=10)["p_value"]
        assert 0.0 <= p <= 1.0


class TestImputationProperties:
    @given(arrays((40, 2), lo=-100, hi=100), st.integers(min_value=0, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_imputers_preserve_observed_cells(self, data, n_holes):
        from repro.data.missing import forward_fill, linear_interpolate

        rng = np.random.default_rng(0)
        holey = data.copy()
        rows = rng.integers(1, 40, size=n_holes)  # keep row 0 observed
        holey[rows, rng.integers(0, 2, size=n_holes)] = np.nan
        observed = ~np.isnan(holey)
        for imputer in (forward_fill, linear_interpolate):
            out = imputer(holey)
            assert not np.isnan(out).any()
            np.testing.assert_array_equal(out[observed], holey[observed])

    @given(arrays((30, 3), lo=-50, hi=50))
    @settings(max_examples=20, deadline=None)
    def test_complete_data_fixed_point(self, data):
        from repro.data.missing import forward_fill, linear_interpolate

        np.testing.assert_array_equal(forward_fill(data), data)
        np.testing.assert_array_equal(linear_interpolate(data), data)


class TestEnsembleProperties:
    @given(
        hnp.arrays(np.float64, (3,), elements=st.floats(0.01, 10.0, allow_nan=False)),
    )
    @settings(max_examples=20, deadline=None)
    def test_weights_always_simplex(self, raw):
        from repro.training.ensembling import ForecastEnsemble

        normalized = ForecastEnsemble._normalize(raw)
        assert normalized.min() >= 0
        assert normalized.sum() == pytest.approx(1.0)


class TestConformalProperties:
    @given(arrays((200,), lo=-50, hi=50), st.sampled_from([0.5, 0.8, 0.9, 0.95]))
    @settings(max_examples=25, deadline=None)
    def test_radius_covers_requested_fraction(self, residuals, level):
        radius = conformal_radius(residuals, level)
        covered = np.mean(np.abs(residuals) <= radius)
        assert covered >= level - 1e-9

    @given(arrays((50,), lo=-10, hi=10))
    @settings(max_examples=20, deadline=None)
    def test_radius_monotone_in_level(self, residuals):
        assert conformal_radius(residuals, 0.95) >= conformal_radius(residuals, 0.5)


# ----------------------------------------------------------------------
# checkpoint round-trips (repro.ckpt)
# ----------------------------------------------------------------------
@st.composite
def module_specs(draw):
    """Spec for an arbitrary small module tree: a chain of Linear blocks,
    some wrapped in nested Sequentials, some carrying Dropout (which owns
    a private RNG stream the checkpoint must capture)."""
    dims = draw(st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=5))
    nested = draw(st.lists(st.booleans(), min_size=len(dims) - 1, max_size=len(dims) - 1))
    dropouts = draw(st.lists(st.booleans(), min_size=len(dims) - 1, max_size=len(dims) - 1))
    return dims, nested, dropouts


def build_tree(spec, seed):
    from repro.tensor.random import seed_everything

    seed_everything(seed)
    dims, nested, dropouts = spec
    blocks = []
    for i, (wrap, drop) in enumerate(zip(nested, dropouts)):
        layer = nn.Linear(dims[i], dims[i + 1])
        inner = [layer] + ([nn.Dropout(0.25)] if drop else [])
        blocks.append(nn.Sequential(*inner) if (wrap or len(inner) > 1) else layer)
    return nn.Sequential(*blocks)


@st.composite
def optimizer_configs(draw):
    from repro.optim import SGD, Adam, AdamW

    kind = draw(st.sampled_from(["sgd", "adam", "adamw"]))
    lr = draw(st.floats(1e-5, 1e-1, allow_nan=False))
    decay = draw(st.floats(0.0, 0.1, allow_nan=False))
    if kind == "sgd":
        momentum = draw(st.floats(0.0, 0.99, allow_nan=False))
        return lambda params: SGD(params, lr=lr, momentum=momentum, weight_decay=decay)
    cls = Adam if kind == "adam" else AdamW
    return lambda params: cls(params, lr=lr, weight_decay=decay)


def assert_trees_equal(a, b, path=""):
    """Bit-exact structural equality over nested dict/list/array state."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert set(a) == set(b), path
        for key in a:
            assert_trees_equal(a[key], b[key], f"{path}/{key}")
    elif isinstance(a, list):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_trees_equal(x, y, f"{path}/{i}")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        np.testing.assert_array_equal(a, b, err_msg=path)
    else:
        assert a == b, path


class TestCheckpointProperties:
    @given(module_specs(), optimizer_configs(), st.integers(0, 2**16), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_save_crash_restore_is_bit_identical(self, spec, make_opt, seed, n_steps):
        """Arbitrary module tree + optimizer config: capture -> encode ->
        decode -> restore reproduces every array, counter, and RNG stream
        bit for bit, even after the live objects were trashed."""
        from repro.ckpt import capture_training_state, decode_state, encode_state, restore_training_state
        from repro.ckpt.state import named_module_rngs
        from repro.tensor.random import default_rng

        model = build_tree(spec, seed)
        optimizer = make_opt(model.parameters())
        rng = np.random.default_rng(seed)
        for _ in range(n_steps):
            for param in model.parameters():
                param.grad = rng.normal(size=param.data.shape)
            optimizer.step()

        state = capture_training_state(model, optimizer, step=n_steps)
        payload = encode_state(state)

        # simulate the crash-and-restart: trash weights and drain RNGs
        for param in model.parameters():
            param.data[...] = rng.normal(size=param.data.shape)
        default_rng().normal(size=7)
        for _, gen in named_module_rngs(model):
            gen.normal(size=7)

        extras = restore_training_state(decode_state(payload), model, optimizer)
        assert extras == {"step": n_steps}
        recaptured = capture_training_state(model, optimizer, step=n_steps)
        assert_trees_equal(state, recaptured)

    @given(
        st.integers(0, 2**16),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_resumed_training_matches_uninterrupted_step_for_step(
        self, seed, crash_step, ckpt_every
    ):
        """Whatever the crash step and checkpoint cadence, the resumed run
        reproduces the uninterrupted run's loss history exactly."""
        from repro.ckpt import CheckpointManager, SimulatedCrash, inject_fault
        from repro.data.windows import DataLoader
        from repro.tensor.random import seed_everything
        from repro.training.experiment import ExperimentSettings, build_model
        from repro.training.trainer import Trainer
        import tempfile

        settings_ = ExperimentSettings(input_len=16, label_len=8)

        def make(run_seed):
            seed_everything(run_seed)
            data_rng = np.random.default_rng(0)
            series = data_rng.normal(size=(140, 2))
            marks = data_rng.normal(size=(140, 4))
            windows = WindowedDataset(series, marks, 16, 4, label_len=8, stride=4)
            train = DataLoader(windows, batch_size=16, shuffle=True, rng=np.random.default_rng(7))
            val = DataLoader(windows, batch_size=16)
            model = build_model("dlinear", 2, 2, 4, settings_, seed=run_seed)
            return Trainer(model, max_epochs=3, patience=5), train, val

        trainer, train, val = make(seed)
        baseline_history = trainer.fit(train, val)
        baseline_weights = trainer.model.state_dict()

        with tempfile.TemporaryDirectory() as directory:
            crashed, train2, val2 = make(seed)
            with inject_fault(f"step:{crash_step}"):
                with pytest.raises(SimulatedCrash):
                    crashed.fit(
                        train2, val2,
                        checkpoint=CheckpointManager(directory, keep_last=10),
                        checkpoint_every_steps=ckpt_every,
                    )
            # a real resume re-runs the same command, seed included: if the
            # crash predates the first checkpoint, the rerun is simply a
            # fresh (deterministic) start and must still match
            resumed, train3, val3 = make(seed)
            history = resumed.fit(
                train3, val3,
                checkpoint=CheckpointManager(directory, keep_last=10),
                checkpoint_every_steps=ckpt_every,
                resume=True,
            )
        assert history.train_loss == baseline_history.train_loss
        assert history.val_loss == baseline_history.val_loss
        for key, value in baseline_weights.items():
            np.testing.assert_array_equal(value, resumed.model.state_dict()[key], err_msg=key)


class TestServingParityProperties:
    """Micro-batching must be a pure perf optimization: the batched
    forward's row ``i`` is element-wise identical to the forward of row
    ``i`` alone, for every served model and both serving dtypes.  Exact
    equality (not allclose) — numpy's elementwise kernels and reductions
    over non-batch axes are deterministic per-row, and the window
    assembly is a pure function of the series tail, so any difference
    at all means the batch path changed the computation."""

    @pytest.mark.serving
    @pytest.mark.parametrize("model_name", ["conformer", "gru"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=3, deadline=None)
    def test_batched_forward_matches_one_by_one(self, model_name, dtype, seed):
        from repro.serve import ModelRegistry, SeriesStore, ServingSpec
        from repro.training.experiment import ExperimentSettings, build_model

        settings_ = ExperimentSettings(input_len=16, label_len=8)
        pred_len, n_dims, n_series = 4, 2, 3
        spec = ServingSpec(
            input_len=settings_.input_len,
            label_len=settings_.label_len,
            pred_len=pred_len,
            n_dims=n_dims,
        )

        def factory():
            return build_model(model_name, n_dims, n_dims, pred_len, settings_, seed=0)

        registry = ModelRegistry(factory, spec, dtype=dtype)
        version = registry.publish("v1", factory())
        store = SeriesStore(n_dims=n_dims)
        rng = np.random.default_rng(seed)
        for i in range(n_series):
            store.ingest(f"s{i}", rng.normal(size=(40, n_dims)))

        windows = [
            store.window(f"s{i}", spec.input_len, spec.label_len, spec.pred_len)
            for i in range(n_series)
        ]
        # pad_to pins the BLAS kernel batch shape — without it a batch of
        # one and a batch of three pick different gemm/gemv micro-kernels
        # and drift in the last ulp (the serving paths always pin it)
        batched = version.forecast_batch(
            np.stack([w.x_enc for w in windows]),
            np.stack([w.x_mark for w in windows]),
            np.stack([w.x_dec for w in windows]),
            np.stack([w.y_mark for w in windows]),
            pad_to=n_series + 1,
        )
        for i, w in enumerate(windows):
            alone = version.forecast_batch(
                w.x_enc[None], w.x_mark[None], w.x_dec[None], w.y_mark[None], pad_to=n_series + 1
            )[0]
            np.testing.assert_array_equal(
                batched[i], alone, err_msg=f"{model_name}/{np.dtype(dtype).name} series s{i}"
            )

    @pytest.mark.serving
    @pytest.mark.parametrize("model_name", ["conformer", "gru"])
    def test_server_batched_path_matches_unbatched_server(self, model_name):
        """End-to-end version of the same property: a server coalescing 3
        concurrent requests returns byte-identical forecasts to a server
        answering them one at a time (cache off on both)."""
        from repro.serve import ForecastServer, ManualClock, ModelRegistry, SeriesStore, ServingSpec
        from repro.training.experiment import ExperimentSettings, build_model

        settings_ = ExperimentSettings(input_len=16, label_len=8)
        pred_len, n_dims, n_series = 4, 2, 3
        spec = ServingSpec(
            input_len=settings_.input_len,
            label_len=settings_.label_len,
            pred_len=pred_len,
            n_dims=n_dims,
        )

        def factory():
            return build_model(model_name, n_dims, n_dims, pred_len, settings_, seed=0)

        def make_server(batching):
            registry = ModelRegistry(factory, spec, dtype=np.float32)
            registry.publish("v1", factory())
            store = SeriesStore(n_dims=n_dims)
            rng = np.random.default_rng(11)
            for i in range(n_series):
                store.ingest(f"s{i}", rng.normal(size=(40, n_dims)))
            return ForecastServer(
                registry, store, clock=ManualClock(), batching=batching,
                cache_enabled=False, n_workers=1, max_batch=n_series,
            )

        serial_server = make_server(batching=False)
        serial = {f"s{i}": serial_server.forecast(f"s{i}").forecast for i in range(n_series)}
        serial_server.shutdown()

        batched_server = make_server(batching=True)
        try:
            futures = [batched_server.submit(f"s{i}") for i in range(n_series)]
            for i, future in enumerate(futures):
                response = future.result(timeout=30)
                assert response.ok and response.batch_size == n_series
                np.testing.assert_array_equal(response.forecast, serial[f"s{i}"])
        finally:
            batched_server.shutdown()
