"""repro.ckpt: codec, atomic writes, manager retention, bit-exact resume.

The fault-injection *matrix* (every crash point x optimizer x model)
lives in ``tests/test_ckpt_faults.py``; this file covers the building
blocks plus the headline guarantee — a resumed run is bit-identical to
an uninterrupted one, down to RNG states and loss histories.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.ckpt import (
    CheckpointManager,
    ChecksumError,
    SimulatedCrash,
    atomic_write_bytes,
    capture_module_rngs,
    capture_training_state,
    checksum,
    decode_state,
    encode_state,
    inject_fault,
    parse_fault,
    read_verified_bytes,
    restore_training_state,
)
from repro.ckpt.atomic import TMP_SUFFIX
from repro.data.windows import DataLoader, WindowedDataset
from repro.nn import Dropout, Linear, Module, Sequential
from repro.optim import Adam, AdamW, EarlyStopping, SGD, StepLR
from repro.tensor import Tensor
from repro.tensor.random import seed_everything
from repro.training.experiment import ExperimentSettings, build_model
from repro.training.trainer import Trainer


# ----------------------------------------------------------------------
# shared fixtures: a tiny but real training setup
# ----------------------------------------------------------------------
SETTINGS = ExperimentSettings(input_len=16, label_len=8, max_epochs=2)


def make_run(seed, model_name="conformer", max_epochs=2, optimizer=None, **trainer_kw):
    """A fresh (trainer, train_loader, val_loader) triple, fully seeded."""
    seed_everything(seed)
    rng = np.random.default_rng(0)
    series = rng.normal(size=(260, 3))
    marks = rng.normal(size=(260, 4))
    windows = WindowedDataset(series, marks, input_len=16, pred_len=4, label_len=8)
    train = DataLoader(windows, batch_size=16, shuffle=True, rng=np.random.default_rng(7))
    val = DataLoader(windows, batch_size=16)
    model = build_model(model_name, 3, 3, 4, SETTINGS, seed=seed)
    trainer = Trainer(model, max_epochs=max_epochs, patience=5, optimizer=optimizer, **trainer_kw)
    return trainer, train, val


def assert_states_identical(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_roundtrip_preserves_arrays_and_scalars(self):
        state = {
            "weights": {"w": np.arange(6, dtype=np.float32).reshape(2, 3), "b": np.zeros(3)},
            "moments": [np.ones(2), np.full((1, 2), -0.5)],
            "step": 17,
            "lr": 1e-4,
            "inf": float("inf"),
            "label": "adam",
            "nothing": None,
            "flag": True,
        }
        decoded = decode_state(encode_state(state))
        np.testing.assert_array_equal(decoded["weights"]["w"], state["weights"]["w"])
        assert decoded["weights"]["w"].dtype == np.float32
        np.testing.assert_array_equal(decoded["moments"][1], state["moments"][1])
        assert decoded["step"] == 17 and decoded["lr"] == 1e-4
        assert decoded["inf"] == float("inf")
        assert decoded["label"] == "adam" and decoded["nothing"] is None and decoded["flag"] is True

    def test_roundtrip_preserves_rng_state_big_ints(self):
        gen = np.random.default_rng(1234)
        gen.normal(size=100)
        state = gen.bit_generator.state  # PCG64 state holds 128-bit ints
        decoded = decode_state(encode_state({"rng": state}))
        assert decoded["rng"] == state

    def test_rejects_unserializable_values(self):
        with pytest.raises(TypeError):
            encode_state({"bad": object()})
        with pytest.raises(TypeError):
            encode_state({1: "non-string key"})

    def test_rejects_wrong_version_and_garbage(self):
        from repro.ckpt.codec import CheckpointFormatError

        with pytest.raises(CheckpointFormatError):
            decode_state(b"not an npz archive")
        payload = encode_state({"x": 1})
        # a plain npz without the __meta__ member is not a checkpoint
        import io

        buf = io.BytesIO()
        np.savez(buf, x=np.zeros(2))
        with pytest.raises(CheckpointFormatError):
            decode_state(buf.getvalue())


# ----------------------------------------------------------------------
# atomic writes + integrity
# ----------------------------------------------------------------------
class TestAtomic:
    def test_write_then_verified_read(self, tmp_path):
        target = tmp_path / "blob.bin"
        digest = atomic_write_bytes(target, b"hello world")
        assert target.read_bytes() == b"hello world"
        assert digest == checksum(b"hello world")
        assert read_verified_bytes(target, digest) == b"hello world"
        assert not list(tmp_path.glob(f"*{TMP_SUFFIX}"))

    def test_corruption_is_detected(self, tmp_path):
        target = tmp_path / "blob.bin"
        digest = atomic_write_bytes(target, b"payload")
        target.write_bytes(b"paXload")
        with pytest.raises(ChecksumError):
            read_verified_bytes(target, digest)

    def test_mid_write_crash_leaves_old_file_intact(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"generation-1")
        with inject_fault("ckpt-mid-write") as plan:
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(target, b"generation-2-much-longer-payload")
        assert plan.fired
        assert target.read_bytes() == b"generation-1"
        strays = list(tmp_path.glob(f"*{TMP_SUFFIX}"))
        assert len(strays) == 1  # the torn temp file, clearly marked
        assert strays[0].read_bytes() != b"generation-2-much-longer-payload"

    def test_pre_rename_crash_leaves_old_file_intact(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"generation-1")
        with inject_fault("ckpt-pre-rename"):
            with pytest.raises(SimulatedCrash):
                atomic_write_bytes(target, b"generation-2")
        assert target.read_bytes() == b"generation-1"
        # the new payload is fully on disk but uncommitted
        (stray,) = list(tmp_path.glob(f"*{TMP_SUFFIX}"))
        assert stray.read_bytes() == b"generation-2"


class TestFaultSpecs:
    def test_parse_indexed_and_occurrence_points(self):
        assert parse_fault("step:7").point == "step"
        assert parse_fault("step:7").index == 7
        assert parse_fault("ckpt-mid-write").index == 0
        assert parse_fault("ckpt-mid-write:2").index == 2

    def test_indexed_points_require_index(self):
        with pytest.raises(ValueError):
            parse_fault("step")
        with pytest.raises(ValueError):
            parse_fault("bogus-point:1")

    def test_check_is_noop_without_active_plan(self):
        from repro.ckpt import faults

        faults.check("step", 1)  # must not raise
        assert faults.active_plans() == []


# ----------------------------------------------------------------------
# manager: manifest, retention, corruption fallback
# ----------------------------------------------------------------------
class TestManager:
    def test_retention_keeps_last_k_plus_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2, keep_best=True)
        metrics = [0.5, 0.1, 0.9, 0.7]  # best is step 2
        for step, metric in enumerate(metrics, start=1):
            manager.save({"x": np.full(4, step)}, epoch=step, step=step, metric=metric)
        names = [info.file for info in manager.checkpoints()]
        assert names == ["ckpt-0002-00000002.npz", "ckpt-0003-00000003.npz", "ckpt-0004-00000004.npz"]
        on_disk = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert on_disk == names
        assert manager.best().step == 2
        assert manager.latest().step == 4

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep_last=0)

    def test_manifest_survives_reopen(self, tmp_path):
        CheckpointManager(tmp_path).save({"x": np.ones(2)}, epoch=1, step=5, metric=0.3)
        reopened = CheckpointManager(tmp_path)
        loaded = reopened.load_latest()
        assert loaded is not None
        assert loaded.info.step == 5
        np.testing.assert_array_equal(loaded.state["x"], np.ones(2))

    def test_load_latest_skips_corrupt_and_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        manager.save({"gen": np.array([1.0])}, epoch=1, step=1)
        manager.save({"gen": np.array([2.0])}, epoch=2, step=2)
        # bit-rot the newest checkpoint on disk
        newest = manager.latest().path_in(manager.directory)
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.info.step == 1
        np.testing.assert_array_equal(loaded.state["gen"], np.array([1.0]))

    def test_load_latest_returns_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_unlisted_files_are_never_loaded(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"x": np.zeros(1)}, epoch=1, step=1)
        # a crash leftover: file present, not in the manifest
        (tmp_path / "ckpt-0009-00000099.npz").write_bytes(b"orphan")
        loaded = manager.load_latest()
        assert loaded.info.step == 1
        with pytest.raises(FileNotFoundError):
            manager.load("ckpt-0009-00000099.npz")

    def test_inspect_reports_status_and_strays(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        manager.save({"x": np.zeros(1)}, epoch=1, step=1, metric=0.2)
        manager.save({"x": np.ones(1)}, epoch=2, step=2, metric=0.4)
        second = manager.checkpoints()[1].path_in(tmp_path)
        second.write_bytes(b"rotten")
        (tmp_path / f"ckpt-9999.npz{TMP_SUFFIX}").write_bytes(b"torn")
        report = manager.inspect()
        statuses = {row["file"]: row["status"] for row in report["checkpoints"]}
        assert list(statuses.values()) == ["ok", "corrupt"]
        best_flags = [row["is_best"] for row in report["checkpoints"]]
        assert best_flags == [True, False]
        assert report["stray_tmp_files"] == [f"ckpt-9999.npz{TMP_SUFFIX}"]

    def test_overhead_is_measured(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"x": np.zeros(64)}, epoch=1, step=1)
        stats = manager.stats()
        assert stats["saves"] == 1
        assert stats["bytes_written"] > 0
        assert stats["encode_seconds"] >= 0.0 and stats["write_seconds"] >= 0.0


# ----------------------------------------------------------------------
# satellite: Module.save/load round trip (suffix regression)
# ----------------------------------------------------------------------
class TestModuleSaveLoad:
    def _model(self, seed=0):
        seed_everything(seed)
        return Sequential(Linear(4, 8), Dropout(0.1), Linear(8, 2))

    def test_save_load_without_npz_suffix(self, tmp_path):
        # regression: np.savez appends ".npz", so save("weights") used to
        # write weights.npz while load("weights") looked for "weights"
        model = self._model(seed=1)
        target = tmp_path / "weights"
        model.save(target)
        assert (tmp_path / "weights.npz").exists()
        other = self._model(seed=2)
        other.load(target)
        assert_states_identical(model.state_dict(), other.state_dict())

    def test_save_load_with_explicit_suffix(self, tmp_path):
        model = self._model(seed=3)
        target = tmp_path / "weights.npz"
        model.save(target)
        assert target.exists()
        assert not (tmp_path / "weights.npz.npz").exists()
        other = self._model(seed=4)
        other.load(target)
        assert_states_identical(model.state_dict(), other.state_dict())


# ----------------------------------------------------------------------
# satellite: EarlyStopping isolation + counters across resume
# ----------------------------------------------------------------------
class TestEarlyStoppingState:
    def test_best_state_never_aliases_live_parameters(self):
        model = Sequential(Linear(3, 3))
        stopper = EarlyStopping(patience=2)
        stopper.update(1.0, state=model.state_dict())
        snapshot = {k: v.copy() for k, v in stopper.best_state.items()}
        # mutating the live parameters must not reach the stored best...
        for param in model.parameters():
            param.data[...] = 123.0
        assert_states_identical(stopper.best_state, snapshot)
        # ...and mutating the stored best must not reach a checkpoint copy
        state = stopper.state_dict()
        stopper.best_state[next(iter(stopper.best_state))][...] = -1.0
        assert_states_identical(state["best_state"], snapshot)

    def test_round_trip_preserves_counters_and_thresholds(self):
        stopper = EarlyStopping(patience=4, min_delta=0.05)
        stopper.update(1.0, state={"w": np.ones(2)})
        stopper.update(0.99)  # within min_delta: counts as no improvement
        assert stopper.counter == 1
        restored = EarlyStopping(patience=1)  # wrong values, must be overwritten
        restored.load_state_dict(stopper.state_dict())
        assert restored.patience == 4
        assert restored.min_delta == 0.05
        assert restored.counter == 1
        assert restored.best_loss == 1.0
        assert not restored.should_stop
        # the restored stopper honours min_delta exactly where it left off
        restored.update(0.96)
        assert restored.counter == 2
        restored.update(0.5)
        assert restored.counter == 0 and restored.best_loss == 0.5

    def test_loaded_best_state_is_a_copy(self):
        stopper = EarlyStopping()
        source = {"patience": 3, "min_delta": 0.0, "best_loss": 0.5, "counter": 0,
                  "should_stop": False, "best_state": {"w": np.zeros(3)}}
        stopper.load_state_dict(source)
        source["best_state"]["w"][...] = 9.0
        np.testing.assert_array_equal(stopper.best_state["w"], np.zeros(3))


# ----------------------------------------------------------------------
# optimizer / scheduler state round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [
    lambda p: SGD(p, lr=0.01, momentum=0.9, weight_decay=1e-4),
    lambda p: Adam(p, lr=1e-3, weight_decay=1e-4),
    lambda p: AdamW(p, lr=1e-3, weight_decay=1e-2),
], ids=["sgd", "adam", "adamw"])
def test_optimizer_state_roundtrip_is_bit_exact(factory):
    def step_n(optimizer, params, n, seed):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            for param in params:
                param.grad = rng.normal(size=param.data.shape)
            optimizer.step()

    seed_everything(0)
    model_a = Sequential(Linear(5, 4), Linear(4, 2))
    opt_a = factory(model_a.parameters())
    step_n(opt_a, model_a.parameters(), 3, seed=1)

    seed_everything(0)
    model_b = Sequential(Linear(5, 4), Linear(4, 2))
    opt_b = factory(model_b.parameters())
    step_n(opt_b, model_b.parameters(), 3, seed=1)
    # round-trip b's state through the codec mid-run
    state = decode_state(encode_state({"opt": opt_b.state_dict(), "model": model_b.state_dict()}))
    model_b.load_state_dict(state["model"])
    opt_b.load_state_dict(state["opt"])

    step_n(opt_a, model_a.parameters(), 2, seed=2)
    step_n(opt_b, model_b.parameters(), 2, seed=2)
    assert_states_identical(model_a.state_dict(), model_b.state_dict())


def test_optimizer_rejects_mismatched_type_and_shapes():
    model = Sequential(Linear(3, 2))
    adam = Adam(model.parameters())
    sgd = SGD(model.parameters())
    with pytest.raises(ValueError):
        sgd.load_state_dict(adam.state_dict())
    other = Adam(Sequential(Linear(5, 5)).parameters())
    with pytest.raises(ValueError):
        other.load_state_dict(adam.state_dict())


def test_scheduler_state_roundtrip():
    model = Sequential(Linear(2, 2))
    opt = Adam(model.parameters(), lr=0.1)
    sched = StepLR(opt, step_size=2, gamma=0.5)
    sched.step()
    sched.step()
    sched.step()
    state = sched.state_dict()
    opt2 = Adam(Sequential(Linear(2, 2)).parameters(), lr=0.1)
    sched2 = StepLR(opt2, step_size=2, gamma=0.5)
    sched2.load_state_dict(state)
    opt2.load_state_dict(opt.state_dict())
    sched.step()
    sched2.step()
    assert opt.lr == opt2.lr
    assert sched2.epoch == sched.epoch


# ----------------------------------------------------------------------
# whole-state capture/restore
# ----------------------------------------------------------------------
def test_capture_restores_every_rng_stream(tmp_path):
    trainer, train, val = make_run(11)
    module_rngs = capture_module_rngs(trainer.model)
    assert module_rngs, "conformer must expose dropout/flow generators"
    state = capture_training_state(trainer.model, trainer.optimizer, progress={"global_step": 3})
    decoded = decode_state(encode_state(state))

    # drain every stream, then restore and check they rewind exactly
    from repro.ckpt.state import named_module_rngs
    from repro.tensor.random import default_rng

    default_rng().normal(size=10)
    for _, gen in named_module_rngs(trainer.model):
        gen.normal(size=10)
    extras = restore_training_state(decoded, trainer.model, trainer.optimizer)
    assert extras == {"progress": {"global_step": 3}}
    assert capture_module_rngs(trainer.model) == state["rng"]["modules"]


def test_restore_is_strict_about_module_rng_names():
    trainer, _, _ = make_run(1, model_name="gru")
    state = capture_training_state(trainer.model)
    state["rng"]["modules"]["phantom.rng"] = dict(next(iter(state["rng"]["modules"].values())))
    with pytest.raises(KeyError):
        restore_training_state(state, trainer.model)


# ----------------------------------------------------------------------
# the headline guarantee: resume == uninterrupted, bit for bit
# ----------------------------------------------------------------------
class TestBitExactResume:
    def _uninterrupted(self, seed=123):
        trainer, train, val = make_run(seed)
        history = trainer.fit(train, val)
        return trainer.model.state_dict(), history

    def test_resume_mid_epoch_matches_uninterrupted(self, tmp_path):
        baseline_weights, baseline_history = self._uninterrupted()

        trainer, train, val = make_run(123)
        manager = CheckpointManager(tmp_path, keep_last=3)
        with inject_fault("step:12"):
            with pytest.raises(SimulatedCrash):
                trainer.fit(train, val, checkpoint=manager, checkpoint_every_steps=5)
        assert manager.latest().step == 10  # mid-epoch checkpoint survived

        # a *different* seed proves restore overwrites every stream
        resumed, train2, val2 = make_run(999)
        history = resumed.fit(
            train2, val2,
            checkpoint=CheckpointManager(tmp_path), checkpoint_every_steps=5, resume=True,
        )
        assert history.resumed_at_step == 10
        assert_states_identical(baseline_weights, resumed.model.state_dict())
        assert history.train_loss == baseline_history.train_loss
        assert history.val_loss == baseline_history.val_loss
        assert history.epochs_run == baseline_history.epochs_run

    def test_resume_from_epoch_boundary_matches_uninterrupted(self, tmp_path):
        baseline_weights, baseline_history = self._uninterrupted()

        trainer, train, val = make_run(123)
        manager = CheckpointManager(tmp_path)
        with inject_fault("step:18"):  # inside epoch 1; last save is epoch 0's end
            with pytest.raises(SimulatedCrash):
                trainer.fit(train, val, checkpoint=manager)

        resumed, train2, val2 = make_run(999)
        history = resumed.fit(train2, val2, checkpoint=CheckpointManager(tmp_path), resume=True)
        assert_states_identical(baseline_weights, resumed.model.state_dict())
        assert history.val_loss == baseline_history.val_loss

    def test_resume_of_finished_run_is_idempotent(self, tmp_path):
        trainer, train, val = make_run(42)
        manager = CheckpointManager(tmp_path)
        trainer.fit(train, val, checkpoint=manager)
        final = trainer.model.state_dict()

        again, train2, val2 = make_run(7)
        history = again.fit(train2, val2, checkpoint=CheckpointManager(tmp_path), resume=True)
        assert_states_identical(final, again.model.state_dict())
        assert history.epochs_run == SETTINGS.max_epochs

    def test_resume_requires_manager(self):
        trainer, train, val = make_run(0, model_name="dlinear")
        with pytest.raises(ValueError):
            trainer.fit(train, val, resume=True)

    def test_resume_with_empty_directory_is_a_fresh_start(self, tmp_path):
        trainer, train, val = make_run(5, model_name="dlinear", max_epochs=1)
        history = trainer.fit(train, val, checkpoint=CheckpointManager(tmp_path), resume=True)
        assert history.resumed_at_step is None
        assert history.epochs_run == 1


# ----------------------------------------------------------------------
# CLI: kill-and-resume drill + ckpt inspect
# ----------------------------------------------------------------------
class TestCli:
    RUN_ARGS = ["run", "--dataset", "etth1", "--model", "dlinear",
                "--pred-len", "8", "--epochs", "2", "--seeds", "0"]

    def test_killed_run_resumes_to_identical_result(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        code = cli.main(self.RUN_ARGS + ["--json"])
        assert code == 0
        baseline = json.loads(capsys.readouterr().out)

        code = cli.main(self.RUN_ARGS + [
            "--checkpoint-dir", str(ckpt_dir), "--ckpt-every-steps", "2",
            "--inject-fault", "step:3",
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "simulated crash" in captured.err
        assert (ckpt_dir / "seed0" / "manifest.json").exists()

        code = cli.main(self.RUN_ARGS + [
            "--checkpoint-dir", str(ckpt_dir), "--ckpt-every-steps", "2", "--resume", "--json",
        ])
        assert code == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == baseline

    def test_inspect_text_and_json(self, tmp_path, capsys):
        manager = CheckpointManager(tmp_path / "seed0")
        manager.save({"x": np.zeros(2)}, epoch=1, step=4, metric=0.25)
        # parent directory: finds per-seed subdirectories
        assert cli.main(["ckpt", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ckpt-0001-00000004.npz" in out and "ok" in out
        assert cli.main(["ckpt", "inspect", str(tmp_path / "seed0"), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checkpoints"][0]["status"] == "ok"

    def test_inspect_flags_corruption_with_exit_code(self, tmp_path, capsys):
        manager = CheckpointManager(tmp_path)
        path = manager.save({"x": np.zeros(2)}, epoch=1, step=1)
        path.write_bytes(b"bit rot")
        assert cli.main(["ckpt", "inspect", str(tmp_path)]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_inspect_errors_on_missing_or_empty_dirs(self, tmp_path, capsys):
        assert cli.main(["ckpt", "inspect", str(tmp_path / "nope")]) == 2
        assert cli.main(["ckpt", "inspect", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_bad_fault_spec_and_bare_resume_exit_2(self, tmp_path, capsys):
        assert cli.main(self.RUN_ARGS + ["--inject-fault", "bogus:1"]) == 2
        assert cli.main(self.RUN_ARGS + ["--resume"]) == 2
        capsys.readouterr()
