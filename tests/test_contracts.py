"""Tests for repro.analysis.contracts — the symbolic shape/dtype checker.

Covers the symbolic algebra, the ``@shape_contract`` decorator, the
abstract-interpretation tracer, the registry checker (smoke sweep is part
of the tier-1 lint gate), the seeded mutation tests the acceptance
criteria require, and the two new lint rules it ships with
(``inference-mode-required``, ``noqa-unused``).
"""

import numpy as np
import pytest

from repro.analysis.contracts import (
    AbstractTensor,
    ContractError,
    Dim,
    SymbolicError,
    SymExpr,
    broadcast_sym_shapes,
    check_registry,
    render_shape,
    resymbolize,
    shape_contract,
    sym,
    trace_module,
)
from repro.analysis.contracts.checker import GEOMETRIES, _build
from repro.analysis.lint import LintConfig, lint_paths
from repro.nn import Linear, Module
from repro.tensor import Tensor, functional as F


# ----------------------------------------------------------------------
# symbolic algebra
# ----------------------------------------------------------------------
class TestSymbolicAlgebra:
    def test_dim_arithmetic_renders_and_evaluates(self):
        B = Dim("B", size=11)
        expr = 2 * B + 1
        assert isinstance(expr, SymExpr)
        assert int(expr) == 23
        assert str(expr) == "2*B+1"

    def test_equality_and_hash_follow_concrete_value(self):
        B = Dim("B", size=16)
        assert B + 0 == 16
        assert hash(sym(B)) == hash(16)
        # so symbolic entries work as dict keys next to plain ints
        cache = {(sym(B), 4): "plan"}
        assert cache[(16, 4)] == "plan"

    def test_structural_identity_is_separate_from_value(self):
        B, L = Dim("B", size=8), Dim("L", size=8)
        assert sym(B) == sym(L)  # same probe value
        assert not sym(B).same_as(sym(L))  # different symbols

    def test_comparisons_use_value(self):
        B = Dim("B", size=11)
        assert B + 1 > 11
        assert sym(5) <= B

    def test_floordiv_exact_and_opaque(self):
        H = Dim("H", size=12)
        exact = (4 * H) // 4
        assert exact.same_as(sym(H))
        opaque = (H + 1) // 4
        assert int(opaque) == 3
        assert "//" in str(opaque)

    def test_truediv_degrades_to_concrete_float(self):
        B = Dim("B", size=10)
        assert B / 4 == 2.5
        assert 5 / Dim("C", size=2) == 2.5

    def test_numpy_interop(self):
        B = Dim("B", size=7)
        assert np.zeros((B, 3)).shape == (7, 3)
        assert np.arange(B).shape == (7,)

    def test_broadcast_prefers_symbolic_entries(self):
        B = Dim("B", size=11, free=True)
        out = broadcast_sym_shapes((sym(B), 1, 4), (11, 5, 4))
        assert out[0].same_as(sym(B))
        assert out[1] == 5

    def test_broadcast_mismatch_raises(self):
        with pytest.raises(SymbolicError):
            broadcast_sym_shapes((3, 4), (3, 5))

    def test_resymbolize_recovers_free_dims(self):
        B = Dim("B", size=11, free=True)
        out = resymbolize((11, 22, 7), (B,))
        assert out[0].same_as(sym(B))
        assert out[1].same_as(sym(B) * 2)
        assert out[2] == 7

    def test_render_shape(self):
        B = Dim("B", size=11)
        assert render_shape((sym(B), 32, 3)) == "(B, 32, 3)"
        assert render_shape(None) == "?"


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------
class TestShapeContractDecorator:
    def test_attaches_metadata_and_stays_transparent(self):
        @shape_contract(inputs={"x": "B L D"}, output="B L D")
        def forward(self, x):
            return x

        assert forward.__shape_contract__.inputs["x"] == ("B", "L", "D")
        assert forward(None, 42) == 42  # zero overhead outside a trace

    def test_rejects_unknown_parameter(self):
        with pytest.raises(ContractError):

            @shape_contract(inputs={"nope": "B"}, output=None)
            def forward(self, x):
                return x

    def test_rejects_malformed_entry(self):
        with pytest.raises(ContractError):
            shape_contract(inputs={"x": "B**2"}, output=None)(lambda self, x: x)

    def test_multi_output_spec(self):
        contract = shape_contract(inputs=None, output=("B H C", None))(
            lambda self, x: x
        ).__shape_contract__
        assert contract.multi_output
        assert contract.outputs[1] is None


# ----------------------------------------------------------------------
# abstract interpretation
# ----------------------------------------------------------------------
class _Toy(Module):
    def __init__(self, in_features=8, out_features=4):
        super().__init__()
        self.lin = Linear(in_features, out_features)

    @shape_contract(inputs={"x": "B L 8"}, output="B L 4")
    def forward(self, x):
        return F.relu(self.lin(x))


def _abstract(shape_entries, dtype=np.float64, seed=0):
    concrete = tuple(int(e) for e in shape_entries)
    data = np.random.default_rng(seed).standard_normal(concrete).astype(dtype)
    return AbstractTensor(data, shape_entries)


class TestTracer:
    def test_clean_trace_keeps_symbols(self):
        B = Dim("B", size=11, free=True)
        x = _abstract((B, 6, 8))
        trace = trace_module(_Toy(), (x,), env={"B": B}, free_dims=(B,))
        assert trace.violations == []
        assert trace.output_sym[0].same_as(sym(B))
        assert trace.output_sym[1:] == (6, 4)

    def test_contract_mismatch_is_reported(self):
        class Bad(_Toy):
            @shape_contract(inputs={"x": "B L 8"}, output="B L 5")
            def forward(self, x):
                return F.relu(self.lin(x))

        B = Dim("B", size=11, free=True)
        trace = trace_module(Bad(), (_abstract((B, 6, 8)),), env={"B": B}, free_dims=(B,))
        kinds = [v.kind for v in trace.violations]
        assert kinds == ["shape_mismatch"]
        assert "expected 5" in trace.violations[0].message

    def test_matmul_mismatch_names_module_and_symbolic_shapes(self):
        B = Dim("B", size=11, free=True)
        model = _Toy(in_features=9)  # projection disagrees with the input
        trace = trace_module(model, (_abstract((B, 6, 8)),), env={"B": B}, free_dims=(B,))
        (violation,) = trace.violations
        assert violation.kind == "shape_mismatch"
        assert violation.module == "lin"
        assert "(B, 6, 8) @ (9, 4)" in violation.message

    def test_dtype_drift_attributed_to_module(self):
        B = Dim("B", size=11, free=True)
        x = _abstract((B, 6, 8), dtype=np.float32)
        trace = trace_module(
            _Toy(), (x,), env={"B": B}, free_dims=(B,), expected_dtype=np.float32
        )
        kinds = {v.kind for v in trace.violations}
        assert kinds == {"dtype_drift"}  # float64 params leak into a float32 trace
        assert trace.violations[0].module == "lin"

    def test_double_broadcast_is_flagged(self):
        class Surprise(Module):
            def forward(self, x):
                # (B, 1, 4) + (1, B, 4): both operands broadcast silently
                return x + x.transpose(1, 0, 2)

        B = Dim("B", size=11, free=True)
        x = _abstract((B, 1, 4))
        trace = trace_module(Surprise(), (x,), env={"B": B}, free_dims=(B,))
        assert any(v.kind == "broadcast_surprise" for v in trace.violations)

    def test_shape_ops_preserve_symbols(self):
        class Reshaper(Module):
            def forward(self, x):
                b, l, d = x.shape
                return x.transpose(0, 2, 1).reshape(b, l * d)

        B = Dim("B", size=11, free=True)
        trace = trace_module(Reshaper(), (_abstract((B, 6, 8)),), env={"B": B}, free_dims=(B,))
        assert trace.violations == []
        assert trace.output_sym[0].same_as(sym(B))
        assert trace.output_sym[1] == 48


# ----------------------------------------------------------------------
# registry checker (tier-1 gate + mutation tests)
# ----------------------------------------------------------------------
@pytest.mark.lint
@pytest.mark.contracts
class TestRegistrySmoke:
    def test_registry_smoke_is_clean(self):
        report = check_registry(smoke=True)
        assert report.findings == []
        assert report.traces == 2 * len(report.models)  # both dtype modes
        assert report.ops_traced > 0


@pytest.mark.contracts
class TestRegistryFull:
    def test_full_sweep_is_clean_and_dual_probed(self):
        report = check_registry(models=["conformer", "gru", "dlinear"], smoke=False)
        assert report.findings == []
        # 2 probes on the primary geometry + 1 on the secondary, x 2 modes
        assert report.traces == 3 * 2 * 3
        conformer_outputs = {
            cell.output for cell in report.cells if cell.model == "conformer"
        }
        assert any("B" in out for out in conformer_outputs)


@pytest.mark.contracts
class TestSeededMutations:
    """The acceptance-criteria mutations: each must produce a finding
    naming the offending module and the symbolic shapes involved."""

    @staticmethod
    def _broken_projection(name, geometry, seed):
        from repro.nn.layers import Parameter

        model = _build(name, geometry, seed)
        attn = model.encoder_layers[0].attention
        w = attn.w_q.weight
        attn.w_q.weight = Parameter(np.zeros((w.data.shape[0] + 1, w.data.shape[1])))
        return model

    @staticmethod
    def _hardcoded_dtype(name, geometry, seed):
        model = _build(name, geometry, seed)
        # a constant with a hard-coded dtype: not a Parameter, so
        # Module.to_dtype cannot cast it for the float32 mode
        hard = Tensor(np.ones(geometry.enc_in))
        hard.data = hard.data.astype(np.float64)
        orig = type(model).forward
        def forward(self, x_enc, x_mark_enc, x_dec, y_mark_dec):
            return orig(self, x_enc * hard, x_mark_enc, x_dec, y_mark_dec)
        model.forward = forward.__get__(model)
        return model

    def test_broken_attention_projection_is_caught(self):
        report = check_registry(
            models=["transformer"], smoke=True, model_factory=self._broken_projection
        )
        assert report.findings, "mutated projection must produce findings"
        finding = report.findings[0]
        assert finding.rule_id == "contract-shape-mismatch"
        assert "encoder_layers.0.attention.w_q" in finding.path
        assert "(B, 32, 16) @ (17, 16)" in finding.message

    def test_hardcoded_dtype_is_caught_in_float32_mode(self):
        report = check_registry(
            models=["gru"], smoke=True, model_factory=self._hardcoded_dtype
        )
        drift = [f for f in report.findings if f.rule_id == "contract-dtype-drift"]
        assert drift, "hard-coded float64 must produce a dtype-drift finding"
        assert all("[float32/" in f.message for f in drift)
        assert "float64" in drift[0].message

    def test_cli_check_exits_1_on_mutation(self, monkeypatch, capsys):
        import repro.analysis.contracts.checker as checker_mod
        from repro.cli import main

        monkeypatch.setattr(checker_mod, "_build", self._broken_projection)
        code = main(["check", "--smoke", "--models", "transformer"])
        assert code == 1
        out = capsys.readouterr().out
        assert "contract-shape-mismatch" in out
        assert "inner dimensions disagree" in out


@pytest.mark.contracts
class TestCheckCli:
    def test_check_smoke_exits_0(self, capsys):
        from repro.cli import main

        assert main(["check", "--smoke", "--models", "gru,dlinear"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_check_json_schema(self, capsys):
        import json

        from repro.cli import main

        assert main(["check", "--smoke", "--models", "gru", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["models"] == ["gru"]
        assert payload["total"] == 0
        assert {cell["mode"] for cell in payload["cells"]} == {"float64", "float32"}

    def test_check_unknown_model_exits_2(self, capsys):
        from repro.cli import main

        assert main(["check", "--models", "nope"]) == 2
        assert "unknown model" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the two new lint rules
# ----------------------------------------------------------------------
class TestInferenceModeRequired:
    def _lint(self, tmp_path, source):
        (tmp_path / "m.py").write_text(source)
        return lint_paths([tmp_path], config=LintConfig(select=("inference-mode-required",)))

    def test_no_grad_in_predict_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "from repro.tensor import no_grad\n"
            "def predict(model, x):\n"
            "    with no_grad():\n"
            "        return model(x)\n",
        )
        assert [f.rule_id for f in findings] == ["inference-mode-required"]
        assert "predict()" in findings[0].message

    def test_attribute_call_and_evaluate_prefix(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "import repro.tensor as T\n"
            "def _evaluate_loss(model, x):\n"
            "    with T.no_grad():\n"
            "        return model(x)\n",
        )
        assert len(findings) == 1

    def test_inference_mode_is_clean(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "from repro.tensor import inference_mode\n"
            "def predict(model, x):\n"
            "    with inference_mode():\n"
            "        return model(x)\n",
        )
        assert findings == []

    def test_no_grad_outside_predict_paths_allowed(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "from repro.tensor import no_grad\n"
            "def gradcheck_reference(f, x):\n"
            "    with no_grad():\n"
            "        return f(x)\n",
        )
        assert findings == []


class TestNoqaUnused:
    def test_stale_suppression_flagged(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def log(m):\n    return m  # repro: noqa[no-print]\n"
        )
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["noqa-unused"]
        assert "no-print" in findings[0].message

    def test_used_suppression_is_silent(self, tmp_path):
        (tmp_path / "m.py").write_text(
            "def log(m):\n    print(m)  # repro: noqa[no-print]\n"
        )
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_unknown_rule_id_flagged(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1  # repro: noqa[no-such-rule]\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["noqa-unused"]
        assert "unknown rule" in findings[0].message

    def test_unused_blanket_noqa_flagged(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1  # repro: noqa\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["noqa-unused"]
        assert "blanket" in findings[0].message

    def test_noqa_text_in_docstring_is_inert(self, tmp_path):
        (tmp_path / "m.py").write_text(
            '"""Example:\n\n    x  # repro: noqa[no-print]\n"""\nx = 1\n'
        )
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_select_runs_skip_staleness(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1  # repro: noqa[no-print]\n")
        findings = lint_paths([tmp_path], config=LintConfig(select=("no-print",)))
        assert findings == []


# ----------------------------------------------------------------------
# lint driver plumbing (AST cache, --changed)
# ----------------------------------------------------------------------
class TestAstCache:
    def test_second_run_hits_cache(self, tmp_path):
        from repro.analysis.lint import ast_cache_stats, clear_ast_cache

        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        clear_ast_cache()
        lint_paths([tmp_path], config=LintConfig())
        first = ast_cache_stats()
        assert first == {"hits": 0, "misses": 2}
        lint_paths([tmp_path], config=LintConfig())
        second = ast_cache_stats()
        assert second["hits"] == 2
        assert second["misses"] == 2

    def test_modified_file_reparses(self, tmp_path):
        import os

        from repro.analysis.lint import ast_cache_stats, clear_ast_cache

        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        clear_ast_cache()
        lint_paths([tmp_path], config=LintConfig())
        target.write_text("print('hi')\n")
        os.utime(target, ns=(1, 1))  # force a distinct mtime even on coarse clocks
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["no-print"]
        assert ast_cache_stats()["misses"] == 2

    def test_parse_errors_are_cached_too(self, tmp_path):
        from repro.analysis.lint import ast_cache_stats, clear_ast_cache

        (tmp_path / "bad.py").write_text("def broken(:\n")
        clear_ast_cache()
        for _ in range(2):
            findings = lint_paths([tmp_path], config=LintConfig())
            assert [f.rule_id for f in findings] == ["parse-error"]
        assert ast_cache_stats() == {"hits": 1, "misses": 1}


class TestChangedFiles:
    @pytest.fixture
    def git_repo(self, tmp_path):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True,
                env={"HOME": str(tmp_path), "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                     "PATH": __import__("os").environ["PATH"]},
            )

        git("init", "-q")
        (tmp_path / "clean.py").write_text("x = 1\n")
        git("add", "clean.py")
        git("commit", "-qm", "seed")
        return tmp_path

    def test_changed_files_sees_modified_and_untracked(self, git_repo):
        from repro.analysis.lint import changed_files

        (git_repo / "clean.py").write_text("x = 2\n")
        (git_repo / "new.py").write_text("print('hi')\n")
        changed = changed_files([git_repo], repo_root=git_repo)
        assert sorted(p.name for p in changed) == ["clean.py", "new.py"]

    def test_changed_files_bad_base_raises(self, git_repo):
        from repro.analysis.lint import changed_files

        with pytest.raises(RuntimeError):
            changed_files([git_repo], base="no-such-ref", repo_root=git_repo)


# ----------------------------------------------------------------------
# geometry sanity
# ----------------------------------------------------------------------
def test_geometries_pin_distinct_lengths():
    lengths = {g.input_len for g in GEOMETRIES}
    assert len(lengths) == len(GEOMETRIES)
