"""Tests for time-series diagnostics — including validation that each
synthetic dataset reproduces the structure the paper relies on."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.diagnostics import (
    autocorrelation,
    burstiness,
    diagnose,
    ljung_box,
    seasonal_strength,
    unit_root_score,
)

RNG = np.random.default_rng(160)


class TestAutocorrelation:
    def test_white_noise_near_zero(self):
        r = autocorrelation(RNG.normal(size=5000), max_lag=10)
        assert np.all(np.abs(r) < 0.05)

    def test_ar1_matches_theory(self):
        n, rho = 20000, 0.7
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = rho * x[i - 1] + RNG.normal()
        r = autocorrelation(x, max_lag=3)
        np.testing.assert_allclose(r, [rho, rho**2, rho**3], atol=0.03)

    def test_lag_too_large(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(5), max_lag=5)

    def test_constant_series(self):
        r = autocorrelation(np.full(100, 3.0), max_lag=5)
        np.testing.assert_array_equal(r, 0.0)


class TestLjungBox:
    def test_white_noise_not_rejected(self):
        result = ljung_box(RNG.normal(size=2000), lags=10)
        assert result["p_value"] > 0.01

    def test_periodic_rejected(self):
        x = np.sin(2 * np.pi * np.arange(500) / 24) + RNG.normal(0, 0.1, 500)
        result = ljung_box(x, lags=30)
        assert result["p_value"] < 1e-6


class TestSeasonalStrength:
    def test_pure_sine_near_one(self):
        x = np.sin(2 * np.pi * np.arange(480) / 24)
        assert seasonal_strength(x, period=24) > 0.95

    def test_white_noise_near_zero(self):
        assert seasonal_strength(RNG.normal(size=960), period=24) < 0.2

    def test_mixed(self):
        x = np.sin(2 * np.pi * np.arange(480) / 24) + RNG.normal(0, 1.0, 480)
        s = seasonal_strength(x, period=24)
        assert 0.1 < s < 0.9

    def test_period_validation(self):
        with pytest.raises(ValueError):
            seasonal_strength(np.zeros(10), period=8)


class TestUnitRoot:
    def test_random_walk_near_zero(self):
        walk = np.cumsum(RNG.normal(size=3000))
        assert unit_root_score(walk) > -3.0

    def test_stationary_strongly_negative(self):
        n = 3000
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.3 * x[i - 1] + RNG.normal()
        assert unit_root_score(x) < -10.0

    def test_short_series(self):
        with pytest.raises(ValueError):
            unit_root_score(np.zeros(5))


class TestBurstiness:
    def test_regular_signal_negative(self):
        x = np.sin(2 * np.pi * np.arange(1000) / 20)
        assert burstiness(x) < 0.0

    def test_heavy_tailed_positive(self):
        steps = RNG.pareto(1.5, size=5000) * (RNG.random(5000) < 0.05)
        x = np.cumsum(steps)
        assert burstiness(x) > 0.5

    def test_range(self):
        b = burstiness(RNG.normal(size=1000).cumsum())
        assert -1.0 <= b <= 1.0


class TestSyntheticDatasetsReproducePaperStructure:
    """The substitution table in DESIGN.md, quantified."""

    def test_etth1_periodic_and_stationaryish(self):
        ds = load_dataset("etth1", n_points=24 * 90)
        target = ds.values[:, ds.target_index]
        assert seasonal_strength(target, period=24) > 0.1
        assert ljung_box(target)["p_value"] < 1e-6

    def test_ecl_strongly_seasonal(self):
        ds = load_dataset("ecl", n_points=24 * 90, n_dims=8)
        strengths = [seasonal_strength(ds.values[:, i], 24) for i in range(8)]
        assert np.median(strengths) > 0.2

    def test_exchange_is_unit_root(self):
        ds = load_dataset("exchange", n_points=3000)
        score = unit_root_score(ds.values[:, 0])
        assert score > -3.0  # cannot reject the unit root: random-walk-like

    def test_weather_not_unit_root(self):
        ds = load_dataset("weather", n_points=144 * 30)
        target = ds.values[:: 6, 0]  # hourly subsample for speed
        assert seasonal_strength(target, period=24) > 0.3

    def test_wind_burstier_than_ett(self):
        wind = load_dataset("wind", n_points=8000)
        ett = load_dataset("etth1", n_points=8000)
        b_wind = burstiness(wind.values[:, wind.target_index])
        b_ett = burstiness(ett.values[:, ett.target_index])
        assert b_wind > b_ett

    def test_diagnose_summary(self):
        ds = load_dataset("etth1", n_points=24 * 60)
        report = diagnose(ds.values[:, ds.target_index], period=24)
        assert set(report) == {"ljung_box_p", "unit_root_score", "burstiness", "seasonal_strength"}
