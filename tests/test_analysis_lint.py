"""Tests for the repro.analysis lint framework.

Covers the engine (discovery, package-relative paths, noqa suppression,
allowlists, rule selection, parse errors), every shipped rule against a
fixture tree containing exactly one violation per rule, and both
reporters including the CLI exit-code contract.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    all_rules,
    default_config,
    lint_paths,
    render_json,
    render_text,
    report_as_dict,
)
from repro.analysis.lint import PARSE_ERROR, package_relative
from repro.cli import main

# one violation per rule, keyed by rule id; paths exercise the scoped rule
FIXTURES = {
    "no-print": ("util.py", "def log(msg):\n    print(msg)\n"),
    "no-data-write": ("model.py", "def poke(t):\n    t.data[0] = 1.0\n"),
    "no-global-rng": ("sample.py", "import numpy as np\n\ndef draw():\n    return np.random.normal(size=3)\n"),
    "no-swallowed-exception": ("io_util.py", "def load():\n    try:\n        return open('x')\n    except Exception:\n        pass\n"),
    "no-mutable-default": ("api.py", "def fetch(cache={}):\n    return cache\n"),
    "no-wallclock": ("core/clock.py", "import time\n\ndef stamp():\n    return time.time()\n"),
}


@pytest.fixture
def fixture_tree(tmp_path):
    for _, (rel, source) in FIXTURES.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestRulesOnFixtureTree:
    def test_every_rule_fires_exactly_once(self, fixture_tree):
        findings = lint_paths([fixture_tree], config=LintConfig())
        by_rule = {f.rule_id: f for f in findings}
        assert set(by_rule) == set(FIXTURES), (
            f"expected one finding per rule, got {sorted(f.render() for f in findings)}"
        )
        assert len(findings) == len(FIXTURES)

    def test_findings_carry_file_line_and_message(self, fixture_tree):
        findings = lint_paths([fixture_tree], config=LintConfig())
        for f in findings:
            assert Path(f.path).exists()
            assert f.line >= 1
            assert f.message

    def test_clean_file_yields_nothing(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "import numpy as np\n\ndef f(rng: np.random.Generator):\n    return rng.normal(size=2)\n"
        )
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_scoped_rule_ignores_files_outside_scope(self, tmp_path):
        # same wall-clock read, but not under core//nn//tensor/
        (tmp_path / "cli_util.py").write_text("import time\n\ndef stamp():\n    return time.time()\n")
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_from_import_wallclock_detected(self, tmp_path):
        target = tmp_path / "tensor" / "t.py"
        target.parent.mkdir()
        target.write_text("from time import time\n\ndef stamp():\n    return time()\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["no-wallclock"]

    def test_grad_augassign_detected(self, tmp_path):
        (tmp_path / "m.py").write_text("def scale(p):\n    p.grad *= 0.5\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["no-data-write"]

    def test_seeded_generator_calls_allowed(self, tmp_path):
        (tmp_path / "gen.py").write_text(
            "import numpy as np\nrng = np.random.default_rng(0)\nseq = np.random.SeedSequence(1)\n"
        )
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_bare_except_detected_even_with_body(self, tmp_path):
        (tmp_path / "b.py").write_text("def f():\n    try:\n        g()\n    except:\n        h()\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == ["no-swallowed-exception"]

    def test_narrow_except_with_pass_allowed(self, tmp_path):
        (tmp_path / "n.py").write_text(
            "def f():\n    try:\n        g()\n    except ValueError:\n        pass\n"
        )
        assert lint_paths([tmp_path], config=LintConfig()) == []


class TestSuppressionAndConfig:
    def test_inline_noqa_suppresses_named_rule(self, tmp_path):
        (tmp_path / "s.py").write_text("def log(m):\n    print(m)  # repro: noqa[no-print]\n")
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_inline_noqa_without_brackets_suppresses_all(self, tmp_path):
        (tmp_path / "s.py").write_text("def f(t, m):\n    t.data = m; print(m)  # repro: noqa\n")
        assert lint_paths([tmp_path], config=LintConfig()) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        (tmp_path / "s.py").write_text("def log(m):\n    print(m)  # repro: noqa[no-data-write]\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        # the mismatched suppression is itself stale, so noqa-unused fires too
        assert sorted(f.rule_id for f in findings) == ["no-print", "noqa-unused"]

    def test_allowlist_prefix_skips_directory(self, fixture_tree):
        config = LintConfig(allowlists={"no-wallclock": ("core/",)})
        findings = lint_paths([fixture_tree], config=config)
        assert "no-wallclock" not in {f.rule_id for f in findings}

    def test_select_restricts_rules(self, fixture_tree):
        config = LintConfig(select=("no-print",))
        findings = lint_paths([fixture_tree], config=config)
        assert {f.rule_id for f in findings} == {"no-print"}

    def test_unknown_select_raises(self, fixture_tree):
        with pytest.raises(KeyError):
            lint_paths([fixture_tree], config=LintConfig(select=("no-such-rule",)))

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        findings = lint_paths([tmp_path], config=LintConfig())
        assert [f.rule_id for f in findings] == [PARSE_ERROR]

    def test_pyproject_overrides_merge(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "noisy.py").write_text("def log(m):\n    print(m)\n")
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint.allowlists]\n'no-print' = ['noisy.py']\n"
        )
        config = default_config((tree,))
        assert lint_paths([tree], config=config) == []
        # shipped defaults for other rules survive the merge
        assert "optim/" in config.allowlists["no-data-write"]

    def test_package_relative_normalisation(self, tmp_path):
        nested = tmp_path / "src" / "repro" / "optim" / "x.py"
        nested.parent.mkdir(parents=True)
        nested.write_text("")
        assert package_relative(nested, tmp_path / "src") == "optim/x.py"
        plain = tmp_path / "core" / "y.py"
        plain.parent.mkdir(parents=True)
        plain.write_text("")
        assert package_relative(plain, tmp_path) == "core/y.py"


class TestReporters:
    def test_text_report_format(self, fixture_tree):
        findings = lint_paths([fixture_tree], config=LintConfig())
        text = render_text(findings, files_scanned=6)
        for f in findings:
            assert f"{f.path}:{f.line}:{f.col}: {f.rule_id}" in text
        assert text.endswith("6 findings in 6 files")

    def test_json_report_schema(self, fixture_tree):
        findings = lint_paths([fixture_tree], config=LintConfig())
        payload = json.loads(render_json(findings, files_scanned=6))
        assert payload["version"] == 1
        assert payload["total"] == len(FIXTURES)
        assert payload["counts"] == {rule_id: 1 for rule_id in FIXTURES}
        sample = payload["findings"][0]
        assert set(sample) == {"path", "line", "col", "rule_id", "message"}

    def test_empty_report(self):
        assert report_as_dict([], files_scanned=3)["total"] == 0
        assert "0 findings" in render_text([], files_scanned=3)


class TestRegistry:
    def test_all_six_domain_rules_registered(self):
        expected = set(FIXTURES)
        assert expected <= set(all_rules())

    def test_registry_returns_copy(self):
        rules = all_rules()
        rules.clear()
        assert all_rules()


class TestCLIExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_fixture_tree_exits_nonzero_text(self, fixture_tree, capsys):
        assert main(["lint", str(fixture_tree)]) == 1
        out = capsys.readouterr().out
        for rule_id in FIXTURES:
            assert rule_id in out

    def test_fixture_tree_exits_nonzero_json(self, fixture_tree, capsys):
        assert main(["lint", str(fixture_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == len(FIXTURES)

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2

    def test_bad_select_exits_two(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--select", "no-such-rule"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in FIXTURES:
            assert rule_id in out
