"""Tests for the full-model efficiency probe and attention equivariances."""

import numpy as np
import pytest

from repro import nn
from repro.core import Conformer, ConformerConfig
from repro.eval.complexity import measure_model
from repro.tensor import Tensor

RNG = np.random.default_rng(120)


class TestMeasureModel:
    def _builder(self, input_len, label_len, pred_len):
        return Conformer(ConformerConfig(
            enc_in=3, dec_in=3, c_out=3,
            input_len=input_len, label_len=label_len, pred_len=pred_len,
            d_model=8, n_heads=2, d_ff=16, moving_avg=5, d_time=4, dropout=0.0,
        ))

    def test_returns_points_per_length(self):
        points = measure_model(self._builder, lengths=[8, 16], enc_in=3, repeats=1)
        assert [p.length for p in points] == [8, 16]
        assert all(p.seconds > 0 and p.peak_bytes > 0 for p in points)

    def test_longer_input_costs_more_memory(self):
        points = measure_model(self._builder, lengths=[8, 32], enc_in=3, repeats=1)
        assert points[1].peak_bytes > points[0].peak_bytes


class TestAttentionEquivariance:
    def test_full_attention_permutation_equivariant(self):
        """Permuting positions (q, k, v jointly) permutes the output."""
        q = Tensor(RNG.normal(size=(1, 1, 6, 4)))
        k = Tensor(RNG.normal(size=(1, 1, 6, 4)))
        v = Tensor(RNG.normal(size=(1, 1, 6, 4)))
        attn = nn.FullAttention()
        out = attn(q, k, v).data
        perm = RNG.permutation(6)
        out_perm = attn(
            Tensor(q.data[:, :, perm]), Tensor(k.data[:, :, perm]), Tensor(v.data[:, :, perm])
        ).data
        np.testing.assert_allclose(out_perm, out[:, :, perm], atol=1e-10)

    def test_sliding_window_not_permutation_equivariant(self):
        """Windowed attention depends on position order (locality)."""
        q = Tensor(RNG.normal(size=(1, 1, 8, 4)))
        k = Tensor(RNG.normal(size=(1, 1, 8, 4)))
        v = Tensor(RNG.normal(size=(1, 1, 8, 4)))
        attn = nn.SlidingWindowAttention(window=2)
        out = attn(q, k, v).data
        perm = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        out_perm = attn(
            Tensor(q.data[:, :, perm]), Tensor(k.data[:, :, perm]), Tensor(v.data[:, :, perm])
        ).data
        # reversal IS a symmetry of the symmetric window -> equal; use a
        # non-symmetric permutation instead
        perm2 = np.array([1, 3, 0, 2, 5, 7, 4, 6])
        out_perm2 = attn(
            Tensor(q.data[:, :, perm2]), Tensor(k.data[:, :, perm2]), Tensor(v.data[:, :, perm2])
        ).data
        assert not np.allclose(out_perm2, out[:, :, perm2])

    def test_attention_scale_covariance_in_values(self):
        """Scaling V scales the output (attention is linear in V)."""
        q = Tensor(RNG.normal(size=(1, 1, 5, 3)))
        k = Tensor(RNG.normal(size=(1, 1, 5, 3)))
        v = Tensor(RNG.normal(size=(1, 1, 5, 3)))
        attn = nn.FullAttention()
        out1 = attn(q, k, v).data
        out2 = attn(q, k, Tensor(3.0 * v.data)).data
        np.testing.assert_allclose(out2, 3.0 * out1, atol=1e-10)
