"""Tests for time-series augmentations."""

import numpy as np
import pytest

from repro.data import augment

RNG = np.random.default_rng(101)


def batch(b=2, l=20, c=3):
    return RNG.normal(size=(b, l, c))


class TestAugmentations:
    def test_jitter_small_perturbation(self):
        x = batch()
        out = augment.jitter(x, np.random.default_rng(0), sigma=0.01)
        assert out.shape == x.shape
        assert 0 < np.abs(out - x).max() < 0.1

    def test_scaling_preserves_sign_structure(self):
        x = np.abs(batch()) + 0.1
        out = augment.scaling(x, np.random.default_rng(0), sigma=0.05)
        assert np.all(out > 0)
        # per-channel constant factor: ratio has no time variation
        ratio = out / x
        np.testing.assert_allclose(ratio.std(axis=1), 0.0, atol=1e-12)

    def test_magnitude_warp_smooth(self):
        x = np.ones((1, 50, 1))
        out = augment.magnitude_warp(x, np.random.default_rng(1), sigma=0.3)
        # warp is piecewise-linear: second difference mostly tiny
        second_diff = np.diff(out[0, :, 0], 2)
        assert np.median(np.abs(second_diff)) < 0.05

    def test_time_mask_zeroes_span(self):
        x = np.ones((3, 40, 2))
        out = augment.time_mask(x, np.random.default_rng(2), mask_frac=0.25)
        for b in range(3):
            zeros = np.where(out[b, :, 0] == 0.0)[0]
            assert len(zeros) == 10
            assert np.all(np.diff(zeros) == 1)  # contiguous

    def test_time_mask_invalid_frac(self):
        with pytest.raises(ValueError):
            augment.time_mask(batch(), np.random.default_rng(0), mask_frac=1.0)

    def test_random_crop_pair_overlaps(self):
        x = batch(l=30)
        for seed in range(10):
            a, b, span_a, span_b = augment.random_crop_pair(x, np.random.default_rng(seed), crop_len=12)
            assert a.shape[1] == b.shape[1] == 12
            sa, sb = augment.overlap_slices(span_a, span_b)
            np.testing.assert_array_equal(a[:, sa, :], b[:, sb, :])

    def test_crop_full_length(self):
        x = batch(l=16)
        a, b, span_a, span_b = augment.random_crop_pair(x, np.random.default_rng(0), crop_len=16)
        np.testing.assert_array_equal(a, x)
        assert span_a == span_b == (0, 16)

    def test_crop_too_long(self):
        with pytest.raises(ValueError):
            augment.random_crop_pair(batch(l=10), np.random.default_rng(0), crop_len=11)

    def test_overlap_slices_disjoint_rejected(self):
        with pytest.raises(ValueError):
            augment.overlap_slices((0, 5), (7, 12))

    def test_deterministic_given_seed(self):
        x = batch()
        out1 = augment.jitter(x, np.random.default_rng(42))
        out2 = augment.jitter(x, np.random.default_rng(42))
        np.testing.assert_array_equal(out1, out2)
