"""Bench-history ledger: append/load round-trip, regression diffing, CLI.

The ledger (``benchmarks/results/history.jsonl``) turns the overwrite-only
``BENCH_*.json`` artifacts into a trend.  These tests pin:

- metric flattening (numeric leaves only, ``machine``/``config`` skipped),
- schema-versioned, machine-stamped records and tolerant loading,
- direction-aware diffing (lower-is-better wall times vs higher-is-better
  speedups) with threshold gating,
- the ``bench diff`` CLI: ``--smoke`` self-check, regression exit codes,
  base selection, and history appending from ``bench`` itself.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    diff_records,
    extract_metrics,
    find_base,
    load_history,
    machine_fingerprint,
    make_record,
    metric_direction,
    render_diff,
    smoke_check,
)


def _result(seconds: float = 0.1, speedup: float = 3.0, name: str = "demo") -> dict:
    return {
        "benchmark": name,
        "machine": machine_fingerprint(),
        "config": {"repeats": 5},
        "fused": {"seconds_per_step": seconds, "tape_nodes_per_step": 120},
        "speedup": speedup,
        "final_loss": 0.5,
        "top_ops": [("matmul", 67, 0.005)],
        "smoke": False,
    }


class TestRecords:
    def test_extract_metrics_flattens_numeric_leaves_only(self):
        metrics = extract_metrics(_result())
        assert metrics["fused.seconds_per_step"] == 0.1
        assert metrics["speedup"] == 3.0
        assert "config.repeats" not in metrics  # config is not a metric
        assert "machine" not in str(metrics)
        assert "top_ops" not in metrics  # list-valued
        assert "smoke" not in metrics  # booleans are flags, not metrics

    def test_make_record_is_versioned_and_stamped(self):
        record = make_record(_result(), timestamp=123.0)
        assert record["schema_version"] == HISTORY_SCHEMA_VERSION
        assert record["unix_time"] == 123.0
        assert record["benchmark"] == "demo"
        assert set(record["machine"]) == {"platform", "python", "numpy"}

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_result(0.1), path=path, timestamp=1.0)
        append_history(_result(0.2), path=path, timestamp=2.0)
        records, skipped = load_history(path)
        assert skipped == 0
        assert [r["unix_time"] for r in records] == [1.0, 2.0]
        # every line is valid standalone JSON
        lines = path.read_text().strip().split("\n")
        assert all(json.loads(line)["benchmark"] == "demo" for line in lines)

    def test_load_tolerates_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_result(), path=path, timestamp=1.0)
        with open(path, "a") as stream:
            stream.write('{"benchmark": "demo", "metrics": {"x"\n')  # truncated
        append_history(_result(), path=path, timestamp=2.0)
        records, skipped = load_history(path)
        assert len(records) == 2
        assert skipped == 1

    def test_load_missing_file_is_empty_not_fatal(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == ([], 0)


class TestDiff:
    def test_metric_directions(self):
        assert metric_direction("fused.seconds_per_step") == "lower"
        assert metric_direction("mem.taped_bytes") == "lower"
        assert metric_direction("fused.tape_nodes_per_step") == "lower"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("tape_node_reduction") == "higher"
        assert metric_direction("final_loss") is None  # informational

    def test_seeded_regression_is_flagged(self):
        base = make_record(_result(seconds=0.1), timestamp=1.0)
        head = make_record(_result(seconds=0.15), timestamp=2.0)  # +50%
        rows = diff_records(base, head, threshold=0.10)
        flagged = {r["metric"] for r in rows if r["regression"]}
        assert flagged == {"fused.seconds_per_step"}
        assert "REGRESSION" in render_diff(rows, base, head)

    def test_speedup_drop_is_a_regression_improvement_is_not(self):
        base = make_record(_result(speedup=3.0), timestamp=1.0)
        slower = make_record(_result(speedup=2.0), timestamp=2.0)
        faster = make_record(_result(speedup=4.0), timestamp=2.0)
        assert any(r["regression"] for r in diff_records(base, slower))
        assert not any(r["regression"] for r in diff_records(base, faster))

    def test_informational_metrics_never_gate(self):
        base = make_record(_result(), timestamp=1.0)
        head_result = _result()
        head_result["final_loss"] = 50.0  # 100x worse, but not a perf metric
        head = make_record(head_result, timestamp=2.0)
        assert not any(r["regression"] for r in diff_records(base, head))

    def test_identical_records_are_clean(self):
        record = make_record(_result(), timestamp=1.0)
        rows = diff_records(record, record)
        assert rows and not any(r["regression"] for r in rows)

    def test_find_base_matches_benchmark_and_depth(self):
        records = [
            make_record(_result(name="a"), timestamp=1.0),
            make_record(_result(name="b"), timestamp=2.0),
            make_record(_result(name="a"), timestamp=3.0),
            make_record(_result(name="a"), timestamp=4.0),
        ]
        head = records[-1]
        assert find_base(records, head, back=1)["unix_time"] == 3.0
        assert find_base(records, head, back=2)["unix_time"] == 1.0  # skips "b"
        assert find_base(records, head, back=3) is None

    def test_smoke_check_passes(self):
        assert "smoke ok" in smoke_check()


class TestCli:
    def test_bench_diff_smoke_exits_zero(self, capsys):
        assert main(["bench", "diff", "--smoke"]) == 0
        assert "seeded regression detected" in capsys.readouterr().out

    def test_bench_diff_flags_ledger_regression(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        append_history(_result(seconds=0.1), path=path, timestamp=1.0)
        append_history(_result(seconds=0.2), path=path, timestamp=2.0)  # 2x slower
        assert main(["bench", "diff", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # a looser threshold lets the same pair pass
        assert main(["bench", "diff", "--history", str(path), "--threshold", "1.5"]) == 0

    def test_bench_diff_clean_ledger_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        append_history(_result(), path=path, timestamp=1.0)
        append_history(_result(), path=path, timestamp=2.0)
        assert main(["bench", "diff", "--history", str(path)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_bench_diff_json_output(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        append_history(_result(seconds=0.1), path=path, timestamp=1.0)
        append_history(_result(seconds=0.5), path=path, timestamp=2.0)
        assert main(["bench", "diff", "--history", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["head"]["unix_time"] == 2.0
        assert any(r["regression"] for r in payload["rows"])

    def test_bench_diff_without_enough_runs_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        assert main(["bench", "diff", "--history", str(path)]) == 2
        append_history(_result(), path=path, timestamp=1.0)
        assert main(["bench", "diff", "--history", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_diff_base_selects_older_run(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_result(seconds=0.1), path=path, timestamp=1.0)
        append_history(_result(seconds=0.5), path=path, timestamp=2.0)
        append_history(_result(seconds=0.5), path=path, timestamp=3.0)
        # vs the immediately previous (equal) run: clean
        assert main(["bench", "diff", "--history", str(path)]) == 0
        # vs two runs back: the 5x slowdown shows
        assert main(["bench", "diff", "--history", str(path), "--base", "2"]) == 1

    def test_bench_diff_benchmark_filter(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        append_history(_result(seconds=0.1, name="a"), path=path, timestamp=1.0)
        append_history(_result(seconds=0.5, name="b"), path=path, timestamp=2.0)
        append_history(_result(seconds=0.1, name="a"), path=path, timestamp=3.0)
        capsys.readouterr()
        assert main(["bench", "diff", "--history", str(path), "--benchmark", "a"]) == 0
        assert "bench diff: a" in capsys.readouterr().out

    @pytest.mark.perf
    def test_bench_smoke_appends_history(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "history.jsonl"
        code = main(["bench", "--smoke", "--no-json", "--history", str(path)])
        assert code == 0
        records, skipped = load_history(path)
        assert skipped == 0
        assert len(records) == 1
        assert records[0]["benchmark"] == "conformer_training_step"
        assert records[0]["metrics"]["fused.seconds_per_step"] > 0
        assert "history appended" in capsys.readouterr().out
