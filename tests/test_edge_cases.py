"""Edge-case hardening across the library surface."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, WindowedDataset, load_dataset
from repro.eval import band_chart, sparkline
from repro.tensor import Tensor, functional as F
from repro.training import metrics as M
from tests.helpers import check_gradients

RNG = np.random.default_rng(190)


class TestTensorEdgeCases:
    def test_huber_both_branches(self):
        pred = Tensor(np.array([0.1, 5.0]), requires_grad=True)
        target = Tensor(np.array([0.0, 0.0]))
        loss = F.huber_loss(pred, target, delta=1.0)
        # 0.5*0.01 quadratic + (5 - 0.5) linear, averaged
        assert loss.item() == pytest.approx((0.5 * 0.01 + 4.5) / 2)
        check_gradients(lambda: F.huber_loss(pred, target, delta=1.0), [pred])

    def test_where_broadcast_condition(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        cond = np.array([True, False, True, False])  # broadcasts over rows
        out = F.where(np.broadcast_to(cond, (3, 4)), a, b)
        assert out.shape == (3, 4)

    def test_split_uneven_rejected(self):
        x = Tensor(RNG.normal(size=(2, 7)))
        with pytest.raises(ValueError):
            F.split(x, 3, axis=1)

    def test_conv1d_no_padding_shrinks(self):
        x = Tensor(RNG.normal(size=(1, 10, 2)), requires_grad=True)
        w = Tensor(RNG.normal(size=(3, 2, 4)), requires_grad=True)
        out = F.conv1d(x, w, padding=0)
        assert out.shape == (1, 8, 4)
        check_gradients(lambda: (F.conv1d(x, w, padding=0) ** 2).sum(), [x, w], atol=1e-4)

    def test_log_softmax_extreme_values(self):
        x = Tensor(np.array([[1e4, 0.0, -1e4]]))
        out = F.log_softmax(x, axis=-1)
        assert np.all(np.isfinite(out.data))
        assert np.all(out.data <= 0)

    def test_scalar_tensor_item_and_repr(self):
        t = Tensor(3.5, requires_grad=True)
        assert t.item() == 3.5
        assert "requires_grad" in repr(t)

    def test_matmul_vector_cases(self):
        m = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: (m @ v).sum(), [m, v])

    def test_pow_gradient(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (x**2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])
        with pytest.raises(TypeError):
            x ** Tensor(np.array([2.0]))


class TestNNEdgeCases:
    def test_token_embedding_circular_shift_equivariance(self):
        """Circular conv: cyclically shifting the input shifts the output."""
        emb = nn.TokenEmbedding(c_in=2, d_model=4)
        emb.eval()
        x = RNG.normal(size=(1, 12, 2))
        out = emb(Tensor(x)).data
        shifted = emb(Tensor(np.roll(x, 3, axis=1))).data
        np.testing.assert_allclose(shifted, np.roll(out, 3, axis=1), atol=1e-10)

    def test_time_feature_embedding_linear(self):
        emb = nn.TimeFeatureEmbedding(d_time=3, d_model=8)
        marks = RNG.normal(size=(2, 5, 3))
        out1 = emb(Tensor(marks)).data
        out2 = emb(Tensor(2 * marks)).data
        np.testing.assert_allclose(out2, 2 * out1, atol=1e-10)

    def test_layernorm_single_feature(self):
        ln = nn.LayerNorm(1)
        out = ln(Tensor(RNG.normal(size=(2, 3, 1))))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-4)  # (x - x)/std -> 0

    def test_sequential_indexing(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU())
        assert isinstance(model[0], nn.Linear)
        assert len(model) == 2

    def test_module_repr(self):
        model = nn.Sequential(nn.Linear(2, 3))
        assert "Sequential" in repr(model)

    def test_modulelist_iteration(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(list(ml)) == 3
        assert ml[1] is list(ml)[1]

    def test_load_state_dict_shape_mismatch(self):
        model = nn.Linear(3, 4)
        bad = {name: np.zeros((1, 1)) for name, _ in model.named_parameters()}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)


class TestDataEdgeCases:
    def test_window_label_len_zero(self):
        values = np.arange(30, dtype=float)[:, None]
        ws = WindowedDataset(values, np.zeros((30, 1)), input_len=8, pred_len=4, label_len=0)
        s = ws[0]
        assert s.x_dec.shape == (4, 1)
        np.testing.assert_array_equal(s.x_dec, 0.0)

    def test_loader_on_minimal_dataset(self):
        values = np.arange(13, dtype=float)[:, None]
        ws = WindowedDataset(values, np.zeros((13, 1)), input_len=8, pred_len=4)
        assert len(ws) == 2
        loader = DataLoader(ws, batch_size=10)
        batches = list(loader)
        assert len(batches) == 1 and batches[0][0].shape[0] == 2

    def test_dataset_marks_match_split(self):
        ds = load_dataset("etth1", n_points=300)
        values, stamps = ds.split("val")
        marks = ds.marks(stamps)
        assert len(marks) == len(values)
        assert marks.shape[1] == 4  # hourly resolution set

    def test_airdelay_marks_on_irregular_stamps(self):
        ds = load_dataset("airdelay", n_points=200)
        _, stamps = ds.split("train")
        marks = ds.marks(stamps)
        assert np.all(np.isfinite(marks))
        assert marks.min() >= -0.5 - 1e-9 and marks.max() <= 0.5 + 1e-9


class TestMetricsEdgeCases:
    def test_coverage_shape_mismatch(self):
        with pytest.raises(ValueError):
            M.coverage(np.zeros(3), np.zeros(3), np.zeros(4))

    def test_mape_with_zero_targets(self):
        value = M.mape(np.ones(3), np.zeros(3))
        assert np.isfinite(value)  # epsilon guard

    def test_perfect_forecast_metrics(self):
        x = RNG.normal(size=(4, 5))
        out = M.evaluate(x, x.copy())
        assert out["mse"] == 0.0 and out["mae"] == 0.0 and out["rmse"] == 0.0


class TestPlotsEdgeCases:
    def test_sparkline_with_nan_free_bounds(self):
        line = sparkline([1.0, 2.0], lo=0.0, hi=4.0)
        assert len(line) == 2

    def test_band_chart_single_step(self):
        chart = band_chart(np.array([1.0]), np.array([0.5]), np.array([1.5]))
        assert "*" in chart

    def test_band_chart_degenerate_band(self):
        point = np.zeros(5)
        chart = band_chart(point, point, point)
        assert "*" in chart


class TestConformerEdgeCases:
    def test_batch_size_one(self):
        from repro.core import Conformer, ConformerConfig

        cfg = ConformerConfig(enc_in=2, dec_in=2, c_out=2, input_len=12, label_len=6, pred_len=4,
                              d_model=8, n_heads=2, moving_avg=5, d_time=2, dropout=0.0)
        model = Conformer(cfg)
        out = model.predict(
            RNG.normal(size=(1, 12, 2)), RNG.normal(size=(1, 12, 2)),
            RNG.normal(size=(1, 10, 2)), RNG.normal(size=(1, 10, 2)),
        )
        assert out.shape == (1, 4, 2)

    def test_pred_len_one(self):
        from repro.core import Conformer, ConformerConfig

        cfg = ConformerConfig(enc_in=2, dec_in=2, c_out=2, input_len=12, label_len=6, pred_len=1,
                              d_model=8, n_heads=2, moving_avg=5, d_time=2, dropout=0.0)
        model = Conformer(cfg)
        y_out, z_out = model(
            Tensor(RNG.normal(size=(2, 12, 2))), Tensor(RNG.normal(size=(2, 12, 2))),
            Tensor(RNG.normal(size=(2, 7, 2))), Tensor(RNG.normal(size=(2, 7, 2))),
        )
        assert y_out.shape == (2, 1, 2) and z_out.shape == (2, 1, 2)

    def test_univariate_config(self):
        from repro.core import Conformer, ConformerConfig

        cfg = ConformerConfig(enc_in=1, dec_in=1, c_out=1, input_len=12, label_len=6, pred_len=4,
                              d_model=8, n_heads=2, moving_avg=5, d_time=2, dropout=0.0)
        model = Conformer(cfg)
        out = model.predict(
            RNG.normal(size=(2, 12, 1)), RNG.normal(size=(2, 12, 2)),
            RNG.normal(size=(2, 10, 1)), RNG.normal(size=(2, 10, 2)),
        )
        assert out.shape == (2, 4, 1)
