"""Tests for the shared Transformer scaffold (encoder/decoder layers,
distilling) used by the baseline zoo."""

import numpy as np
import pytest

from repro.baselines.transformer_common import (
    DistilLayer,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    TransformerForecaster,
)
from repro.nn import FullAttention, SlidingWindowAttention
from repro.tensor import Tensor

RNG = np.random.default_rng(140)


class TestEncoderLayer:
    def _layer(self):
        return TransformerEncoderLayer(8, 2, 16, dropout=0.0, attention=lambda: FullAttention())

    def test_shape_preserved(self):
        layer = self._layer()
        x = Tensor(RNG.normal(size=(2, 10, 8)))
        assert layer(x).shape == (2, 10, 8)

    def test_residual_path(self):
        """Output stays correlated with input (residual connections)."""
        layer = self._layer()
        layer.eval()
        x = Tensor(RNG.normal(size=(1, 12, 8)))
        out = layer(x).data
        corr = np.corrcoef(x.data.ravel(), out.ravel())[0, 1]
        assert corr > 0.2


class TestDistilLayer:
    def test_halves_length(self):
        layer = DistilLayer(8)
        x = Tensor(RNG.normal(size=(2, 12, 8)))
        assert layer(x).shape == (2, 6, 8)

    def test_odd_length(self):
        layer = DistilLayer(8)
        x = Tensor(RNG.normal(size=(1, 9, 8)))
        assert layer(x).shape == (1, 4, 8)


class TestDecoderLayer:
    def test_cross_attention_used(self):
        layer = TransformerDecoderLayer(
            8, 2, 16, dropout=0.0,
            self_attention=lambda: FullAttention(causal=True),
            cross_attention=lambda: FullAttention(),
        )
        layer.eval()
        x = Tensor(RNG.normal(size=(1, 6, 8)))
        mem1 = Tensor(RNG.normal(size=(1, 10, 8)))
        mem2 = Tensor(RNG.normal(size=(1, 10, 8)))
        assert not np.allclose(layer(x, mem1).data, layer(x, mem2).data)


class TestForecasterScaffold:
    def test_custom_attention_factories(self):
        model = TransformerForecaster(
            enc_in=3, dec_in=3, c_out=3, pred_len=4, d_model=8, n_heads=2,
            e_layers=1, d_layers=1, d_ff=16, dropout=0.0, d_time=2,
            enc_attention=lambda: SlidingWindowAttention(window=2),
        )
        x_enc = Tensor(RNG.normal(size=(2, 8, 3)))
        x_mark = Tensor(RNG.normal(size=(2, 8, 2)))
        x_dec = Tensor(RNG.normal(size=(2, 8, 3)))
        y_mark = Tensor(RNG.normal(size=(2, 8, 2)))
        assert model(x_enc, x_mark, x_dec, y_mark).shape == (2, 4, 3)

    def test_distil_skipped_on_short_sequences(self):
        """Distilling halves lengths; short inputs must not collapse."""
        model = TransformerForecaster(
            enc_in=2, dec_in=2, c_out=2, pred_len=2, d_model=8, n_heads=2,
            e_layers=3, d_layers=1, d_ff=16, dropout=0.0, d_time=2, distil=True,
        )
        x_enc = Tensor(RNG.normal(size=(1, 6, 2)))  # 6 -> 3 -> stop (< 4)
        x_mark = Tensor(RNG.normal(size=(1, 6, 2)))
        x_dec = Tensor(RNG.normal(size=(1, 4, 2)))
        y_mark = Tensor(RNG.normal(size=(1, 4, 2)))
        assert model(x_enc, x_mark, x_dec, y_mark).shape == (1, 2, 2)

    def test_pred_slice_from_decoder_tail(self):
        model = TransformerForecaster(
            enc_in=2, dec_in=2, c_out=2, pred_len=3, d_model=8, n_heads=2,
            e_layers=1, d_layers=1, d_ff=16, dropout=0.0, d_time=2,
        )
        x_enc = Tensor(RNG.normal(size=(1, 8, 2)))
        x_mark = Tensor(RNG.normal(size=(1, 8, 2)))
        x_dec = Tensor(RNG.normal(size=(1, 7, 2)))  # label 4 + pred 3
        y_mark = Tensor(RNG.normal(size=(1, 7, 2)))
        out = model(x_enc, x_mark, x_dec, y_mark)
        assert out.shape == (1, 3, 2)


class TestMainModule:
    def test_python_dash_m_repro(self, capsys):
        import subprocess, sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "models"], capture_output=True, text=True, timeout=120
        )
        assert proc.returncode == 0
        assert "conformer" in proc.stdout
