"""Tests for the NLL flow-training extension (Gaussian output head)."""

import numpy as np
import pytest

from repro.core import Conformer, ConformerConfig, NormalizingFlow
from repro.optim import Adam
from repro.tensor import Tensor

RNG = np.random.default_rng(77)


def nll_config(**overrides):
    defaults = dict(
        enc_in=3,
        dec_in=3,
        c_out=3,
        input_len=16,
        label_len=8,
        pred_len=6,
        d_model=8,
        n_heads=2,
        d_ff=16,
        moving_avg=5,
        d_time=3,
        dropout=0.0,
        flow_loss="nll",
        seed=0,
    )
    defaults.update(overrides)
    return ConformerConfig(**defaults)


def model_inputs(cfg, batch=2):
    return (
        Tensor(RNG.normal(size=(batch, cfg.input_len, cfg.enc_in))),
        Tensor(RNG.normal(size=(batch, cfg.input_len, cfg.d_time))),
        Tensor(RNG.normal(size=(batch, cfg.dec_len, cfg.dec_in))),
        Tensor(RNG.normal(size=(batch, cfg.dec_len, cfg.d_time))),
    )


class TestFlowDistributionHead:
    def _flow(self):
        return NormalizingFlow(d_hidden=8, latent_dim=6, pred_len=5, c_out=2, n_flows=2, seed=0)

    def test_output_distribution_shapes(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(3, 8))), Tensor(RNG.normal(size=(3, 8)))
        mu, sigma = flow.output_distribution(h_e, h_d)
        assert mu.shape == (3, 5, 2) and sigma.shape == (3, 5, 2)
        assert np.all(sigma.data > 0)

    def test_nll_finite_and_differentiable(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        target = Tensor(RNG.normal(size=(2, 5, 2)))
        loss = flow.nll(h_e, h_d, target, deterministic=True)
        assert np.isfinite(loss.item())
        loss.backward()
        assert flow.scale_projection.weight.grad is not None

    def test_nll_lower_for_better_mean(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        mu, _ = flow.output_distribution(h_e, h_d, deterministic=True)
        near = Tensor(mu.data + 0.01)
        far = Tensor(mu.data + 10.0)
        assert flow.nll(h_e, h_d, near, deterministic=True).item() < flow.nll(h_e, h_d, far, deterministic=True).item()

    def test_sample_distribution_spread_matches_sigma(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(1, 8))), Tensor(RNG.normal(size=(1, 8)))
        samples = flow.sample_distribution(h_e, h_d, n_samples=400)
        assert samples.shape == (400, 1, 5, 2)
        _, sigma = flow.output_distribution(h_e, h_d, deterministic=True)
        # empirical std should be at least the deterministic sigma (chain adds noise)
        assert np.all(samples.std(axis=0) > 0.5 * sigma.data)


class TestConformerNLLMode:
    def test_forward_returns_mu(self):
        cfg = nll_config()
        model = Conformer(cfg)
        y_out, z_out = model(*model_inputs(cfg), deterministic=True)
        assert z_out.shape == (2, cfg.pred_len, cfg.c_out)

    def test_invalid_flow_loss(self):
        with pytest.raises(ValueError):
            nll_config(flow_loss="elbo")

    def test_nll_training_learns_variance(self):
        """Train on noisy targets: NLL mode should keep sigma well above the
        near-zero values MSE training collapses to."""
        cfg = nll_config()
        model = Conformer(cfg)
        inputs = model_inputs(cfg)
        opt = Adam(model.parameters(), lr=5e-3)
        for step in range(12):
            target = Tensor(RNG.normal(scale=1.0, size=(2, cfg.pred_len, cfg.c_out)))
            opt.zero_grad()
            outputs = model(*inputs, deterministic=True)
            loss = model.compute_loss(outputs, target)
            loss.backward()
            opt.step()
        h_enc, h_dec = model._flow_inputs
        _, sigma = model.flow.output_distribution(h_enc, h_dec, deterministic=True)
        assert sigma.data.mean() > 0.1  # variance not collapsed

    def test_predict_with_uncertainty_uses_distribution(self):
        cfg = nll_config()
        model = Conformer(cfg)
        result = model.predict_with_uncertainty(*model_inputs(cfg), n_samples=30)
        assert result["samples"].shape[0] == 30
        assert np.all(result["q0.95"] >= result["q0.05"] - 1e-12)

    def test_mse_mode_unchanged(self):
        cfg = nll_config(flow_loss="mse")
        model = Conformer(cfg)
        y_out, z_out = model(*model_inputs(cfg), deterministic=True)
        target = Tensor(RNG.normal(size=(2, cfg.pred_len, cfg.c_out)))
        loss = model.compute_loss((y_out, z_out), target)
        assert np.isfinite(loss.item())
