"""Tests for the runtime tensor sanitizer (repro.analysis.sanitizer).

The acceptance contract: an injected non-finite value is caught in the
forward tape *and* in backward accumulation with the offending op named;
findings mirror into repro.obs anomaly events; nesting restores the
previous hook; and disabled mode leaves the engine untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import TensorSanitizerError, sanitize
from repro.core import NormalizingFlow
from repro.obs import MemorySink, RunLogger
from repro.tensor import Tensor, functional as F
from repro.tensor import tensor as engine

RNG = np.random.default_rng(99)


class TestForwardChecks:
    def test_nan_in_forward_tape_names_the_op(self):
        with sanitize(raise_on_error=False) as san:
            x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            x.log()
        assert len(san.findings) == 1
        finding = san.findings[0]
        assert finding.kind == "nonfinite_forward"
        assert finding.op == "log"
        assert finding.detail["first_bad_index"] == [1]
        assert any("log" in frame or "functional" in frame for frame in finding.stack)

    def test_strict_mode_raises_at_first_finding(self):
        with pytest.raises(TensorSanitizerError) as excinfo:
            with sanitize():
                Tensor(np.array([0.0]), requires_grad=True).log()
        assert excinfo.value.finding.op == "log"
        assert "creation stack" in str(excinfo.value)

    def test_dtype_drift_detected(self):
        with sanitize(raise_on_error=False) as san:
            x = Tensor(np.ones(3), requires_grad=True)
            # a rogue op that silently drops precision
            Tensor._make(x.data.astype(np.float32), (x,), "rogue_cast", lambda g: None)
        kinds = {f.kind for f in san.findings}
        assert "dtype_drift" in kinds
        assert san.findings[0].op == "rogue_cast"

    def test_dtype_check_can_be_disabled(self):
        with sanitize(raise_on_error=False, check_dtype=False) as san:
            x = Tensor(np.ones(3), requires_grad=True)
            Tensor._make(x.data.astype(np.float32), (x,), "rogue_cast", lambda g: None)
        assert san.findings == []

    def test_double_broadcast_surprise_detected(self):
        with sanitize(raise_on_error=False) as san:
            col = Tensor(np.ones((5, 1)), requires_grad=True)
            row = Tensor(np.ones((1, 7)))
            col + row  # (5,1)+(1,7) -> (5,7): neither operand shape survives
        assert [f.kind for f in san.findings] == ["broadcast_surprise"]
        assert san.findings[0].detail["out_shape"] == [5, 7]

    def test_ordinary_bias_broadcast_is_not_flagged(self):
        with sanitize() as san:
            x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
            bias = Tensor(np.zeros(3), requires_grad=True)
            (x + bias).relu().sum().backward()
        assert san.findings == []


class TestBackwardChecks:
    def test_nonfinite_gradient_attributes_producing_op(self):
        with sanitize(raise_on_error=False) as san:
            x = Tensor(np.array([0.0, 4.0]), requires_grad=True)
            with np.errstate(divide="ignore"):
                x.sqrt().sum().backward()  # d sqrt/dx at 0 -> inf
        grads = [f for f in san.findings if f.kind == "nonfinite_grad"]
        assert grads and grads[0].op == "sqrt"
        assert grads[0].detail["producer_op"] == "sqrt"

    def test_injected_nan_seed_is_caught(self):
        with sanitize(raise_on_error=False) as san:
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
            y.backward(np.array(np.nan))
        assert any(f.kind == "nonfinite_grad" for f in san.findings)

    def test_clean_backward_stays_silent_and_counts_work(self):
        with sanitize() as san:
            x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
            (x @ x).relu().sum().backward()
        assert san.findings == []
        assert san.checked_nodes >= 3
        assert san.checked_grads >= 3


class TestFlowHeadInjection:
    """The acceptance scenario: a NaN born deep inside the flow-NLL head."""

    def _flow(self):
        return NormalizingFlow(d_hidden=8, latent_dim=6, pred_len=5, c_out=2, n_flows=2, seed=0)

    def test_sanitizer_names_op_and_emits_obs_anomaly(self):
        flow = self._flow()
        # poison the mu-projection weights: mu comes out NaN, so the NLL
        # residual (target - mu) is born non-finite deep inside the head
        flow.projection.weight.data[0, 0] = np.nan
        memory = MemorySink()
        logger = RunLogger(sinks=[memory])
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        target = Tensor(RNG.normal(size=(2, 5, 2)))
        with sanitize(logger=logger, raise_on_error=False) as san:
            flow.nll(h_e, h_d, target, deterministic=True)
        assert san.findings, "sanitizer missed the injected NaN"
        first = san.findings[0]
        assert first.kind == "nonfinite_forward"
        assert first.op  # the offending op is named (matmul inside the projection)
        events = memory.of_kind("anomaly")
        assert events and events[0]["anomaly"] == "sanitizer_nonfinite_forward"
        assert events[0]["op"] == first.op
        assert "stack" in events[0]

    def test_fused_scan_reports_first_bad_timestep(self):
        xp = np.zeros((2, 6, 9))
        # column 7 lands in the candidate gate (tanh), where a NaN survives;
        # sigmoid-gate columns would saturate an Inf away silently
        xp[1, 4, 7] = np.nan
        with sanitize(raise_on_error=False) as san:
            F.gru_sequence(
                Tensor(xp, requires_grad=True),
                Tensor(np.zeros((2, 3))),
                Tensor(RNG.normal(size=(3, 9)) * 0.1, requires_grad=True),
                Tensor(np.zeros(9)),
            )
        scans = [f for f in san.findings if f.op == "gru_sequence"]
        assert scans, san.findings
        assert scans[0].detail["first_bad_timestep"] == 4
        # the generic tape-node check must not double-report the same array
        assert len([f for f in san.findings if f.kind == "nonfinite_forward"]) == 1


class TestLifecycle:
    def test_nesting_restores_previous_sanitizer(self):
        assert engine.get_sanitizer() is None
        with sanitize(raise_on_error=False) as outer:
            with sanitize(raise_on_error=False) as inner:
                assert engine.get_sanitizer() is inner
            assert engine.get_sanitizer() is outer
        assert engine.get_sanitizer() is None

    def test_hook_restored_when_body_raises(self):
        with pytest.raises(TensorSanitizerError):
            with sanitize():
                Tensor(np.array([-1.0]), requires_grad=True).log()
        assert engine.get_sanitizer() is None

    def test_max_findings_caps_collection(self):
        with sanitize(raise_on_error=False, max_findings=2) as san:
            bad = Tensor(np.array([np.nan]), requires_grad=True)
            for _ in range(5):
                bad * 1.0
        assert len(san.findings) == 2

    def test_summary_renders_clean_and_dirty(self):
        with sanitize(raise_on_error=False) as san:
            Tensor(np.ones(2), requires_grad=True).sum()
        assert "clean" in san.summary()
        with sanitize(raise_on_error=False) as san:
            Tensor(np.array([np.inf]), requires_grad=True) * 2.0
        assert "1 finding" in san.summary()
