"""Tests for Longformer-style global+window attention."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(90)


def qkv(length=16, d_head=4):
    make = lambda: Tensor(RNG.normal(size=(1, 2, length, d_head)), requires_grad=True)
    return make(), make(), make()


class TestGlobalWindowAttention:
    def test_shape(self):
        q, k, v = qkv()
        out = nn.GlobalWindowAttention(window=4, n_global=3)(q, k, v)
        assert out.shape == q.shape

    def test_global_token_sees_everything(self):
        """Perturbing any value changes the global positions' output."""
        q, k, v = qkv(length=12)
        attn = nn.GlobalWindowAttention(window=2, n_global=2)
        glob = attn._global_indices(12)
        out1 = attn(q, k, v).data.copy()
        v2 = Tensor(v.data.copy())
        far = 6  # not a neighbour of position 0, not global
        assert far not in glob
        v2.data[0, 0, far, :] += 25.0
        out2 = attn(q, k, v2).data
        # global rows change...
        assert not np.allclose(out1[0, 0, glob], out2[0, 0, glob])

    def test_local_token_sees_global_far_away(self):
        """A non-global position is influenced by a far-away global token."""
        length = 16
        q, k, v = qkv(length=length)
        attn = nn.GlobalWindowAttention(window=2, n_global=2)
        glob = attn._global_indices(length)  # includes length-1
        out1 = attn(q, k, v).data.copy()
        v2 = Tensor(v.data.copy())
        v2.data[0, 0, glob[-1], :] += 25.0  # perturb the last global token
        out2 = attn(q, k, v2).data
        probe = 4  # near the start, window too small to reach glob[-1] locally
        assert abs(probe - glob[-1]) > 2
        assert not np.allclose(out1[0, 0, probe], out2[0, 0, probe])

    def test_strictly_local_unaffected_by_far_nonglobal(self):
        length = 16
        q, k, v = qkv(length=length)
        attn = nn.GlobalWindowAttention(window=2, n_global=2)
        glob = set(attn._global_indices(length))
        out1 = attn(q, k, v).data.copy()
        far = 10
        assert far not in glob
        v2 = Tensor(v.data.copy())
        v2.data[0, 0, far, :] += 25.0
        out2 = attn(q, k, v2).data
        probe = 3  # neither neighbour of 10 nor global
        np.testing.assert_allclose(out1[0, 0, probe], out2[0, 0, probe])

    def test_gradients_flow(self):
        q, k, v = qkv(length=10)
        out = (nn.GlobalWindowAttention(window=2, n_global=2)(q, k, v) ** 2).sum()
        out.backward()
        assert q.grad is not None and k.grad is not None and v.grad is not None

    def test_registry(self):
        mech = nn.get_attention("global_window", window=2, n_global=2)
        q, k, v = qkv(length=8)
        assert mech(q, k, v).shape == q.shape
        assert "global_window" in nn.available_attentions()

    def test_invalid_n_global(self):
        with pytest.raises(ValueError):
            nn.GlobalWindowAttention(n_global=0)

    def test_requires_self_attention(self):
        q = Tensor(RNG.normal(size=(1, 1, 8, 4)))
        k = Tensor(RNG.normal(size=(1, 1, 10, 4)))
        with pytest.raises(ValueError):
            nn.GlobalWindowAttention()(q, k, k)

    def test_more_globals_than_length(self):
        q, k, v = qkv(length=3)
        out = nn.GlobalWindowAttention(window=2, n_global=10)(q, k, v)
        assert out.shape == q.shape

    def test_longformer_baseline_uses_it(self):
        model = nn.__dict__  # avoid unused import warnings
        from repro.baselines import Longformer

        lf = Longformer(enc_in=3, dec_in=3, c_out=3, pred_len=4, d_model=8, n_heads=2,
                        e_layers=1, d_layers=1, d_ff=16, dropout=0.0, d_time=2)
        x_enc = Tensor(RNG.normal(size=(2, 12, 3)))
        x_mark = Tensor(RNG.normal(size=(2, 12, 2)))
        x_dec = Tensor(RNG.normal(size=(2, 8, 3)))
        y_mark = Tensor(RNG.normal(size=(2, 8, 2)))
        assert lf(x_enc, x_mark, x_dec, y_mark).shape == (2, 4, 3)
