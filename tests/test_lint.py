"""Tier-1 lint gate: the shipped tree passes every repro.analysis rule.

Historically this file carried a single hand-rolled AST check (no bare
``print`` outside entry points); that check — and five more — now live in
:mod:`repro.analysis.rules`.  This is the thin wrapper that keeps the
rules enforced as tests: the whole ``src/repro`` tree must produce zero
findings, and the allowlists must keep naming real files (a rename must
not silently widen a rule's blind spot).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, default_config, lint_paths, stale_allowlist_entries

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.mark.lint
def test_library_tree_has_zero_findings():
    findings = lint_paths([SRC])
    assert not findings, "lint findings in library code:\n" + "\n".join(
        f.render() for f in findings
    )


@pytest.mark.lint
def test_allowlists_are_current():
    """Every allowlist entry must resolve to an existing file/dir under
    ``src/repro`` (catches renames silently widening a rule's blind spot)."""
    stale = stale_allowlist_entries(SRC)
    assert not stale, f"allowlisted paths vanished: {stale}"


@pytest.mark.lint
def test_rule_scopes_are_current():
    """Scoped rules must point at real subpackages too."""
    for rule_id, rule in all_rules().items():
        for prefix in rule.scope or ():
            assert (SRC / prefix.rstrip("/")).exists(), (
                f"rule {rule_id} scopes a vanished path: {prefix}"
            )


@pytest.mark.lint
def test_print_rule_still_guards_entry_points_only():
    """The migrated no-print check keeps its original allowlist semantics."""
    config = default_config((SRC,))
    allow = set(config.allowlists["no-print"])
    assert {"cli.py", "perf/__main__.py", "__main__.py"} <= allow
