"""Lint-style source checks enforced as tests.

Bare ``print`` calls in library code bypass the telemetry layer — all
run output must flow through :mod:`repro.obs` sinks so it is capturable,
structured, and silenceable.  Only the user-facing entry points
(``cli.py``, ``perf/__main__.py``, ``__main__.py``) may print.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# user-facing entry points whose job *is* writing to stdout
PRINT_ALLOWED = {
    SRC / "cli.py",
    SRC / "perf" / "__main__.py",
    SRC / "__main__.py",
}


def _print_calls(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


@pytest.mark.lint
def test_no_bare_print_outside_entry_points():
    offenders = {}
    for path in sorted(SRC.rglob("*.py")):
        if path in PRINT_ALLOWED:
            continue
        lines = _print_calls(path)
        if lines:
            offenders[str(path.relative_to(SRC))] = lines
    assert not offenders, (
        f"bare print() in library code (route through repro.obs instead): {offenders}"
    )


@pytest.mark.lint
def test_entry_point_allowlist_is_current():
    """The allowlist must name real files (catches renames silently
    widening the lint's blind spot)."""
    for path in PRINT_ALLOWED:
        assert path.exists(), f"allowlisted file vanished: {path}"
