"""Tests for the data substrate: generators, datasets, windows, scalers."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    StandardScaler,
    MinMaxScaler,
    TimeSeriesDataset,
    WindowedDataset,
    available_datasets,
    load_dataset,
    make_timestamps,
    time_features,
)
from repro.data import generators


class TestGenerators:
    @pytest.mark.parametrize(
        "name,expected_dims",
        [("etth1", 7), ("ettm1", 7), ("weather", 21), ("exchange", 8), ("wind", 7), ("airdelay", 6)],
    )
    def test_shapes(self, name, expected_dims):
        ds = load_dataset(name, n_points=500)
        assert ds.values.shape == (500, expected_dims)
        assert len(ds.timestamps) == 500

    def test_ecl_dims_configurable(self):
        ds = load_dataset("ecl", n_points=300, n_dims=12)
        assert ds.n_dims == 12
        assert ds.target_index == 11

    def test_deterministic_given_seed(self):
        a = load_dataset("wind", n_points=200, seed=3)
        b = load_dataset("wind", n_points=200, seed=3)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        a = load_dataset("wind", n_points=200, seed=1)
        b = load_dataset("wind", n_points=200, seed=2)
        assert not np.allclose(a.values, b.values)

    def test_wind_power_nonnegative(self):
        ds = load_dataset("wind", n_points=2000)
        assert np.all(ds.values[:, ds.target_index] >= 0.0)

    def test_ecl_positive(self):
        ds = load_dataset("ecl", n_points=500, n_dims=8)
        assert np.all(ds.values > 0.0)

    def test_etth1_has_daily_periodicity(self):
        ds = load_dataset("etth1", n_points=24 * 40)
        target = ds.values[:, 0] - ds.values[:, 0].mean()
        spectrum = np.abs(np.fft.rfft(target))
        daily_bin = len(target) // 24
        # daily bin should be among the strongest components
        assert spectrum[daily_bin] > 5 * np.median(spectrum[1:])

    def test_exchange_is_random_walk_like(self):
        """Exchange: differences should be nearly white (no dominant period)."""
        ds = load_dataset("exchange", n_points=2000)
        diffs = np.diff(np.log(ds.values[:, 0]))
        autocorr = np.corrcoef(diffs[:-1], diffs[1:])[0, 1]
        assert abs(autocorr) < 0.1

    def test_airdelay_irregular_intervals(self):
        ds = load_dataset("airdelay", n_points=1000)
        gaps = np.diff(ds.timestamps).astype("timedelta64[s]").astype(np.int64)
        assert len(np.unique(gaps)) > 10  # genuinely irregular
        assert np.all(gaps >= 0)

    def test_wind_regime_switching(self):
        """Wind speed distribution should be bimodal-ish: high-variance."""
        ds = load_dataset("wind", n_points=20000, seed=0)
        speed = ds.values[:, 0]
        assert speed.std() > 1.5

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("sp500")

    def test_available_datasets(self):
        names = available_datasets()
        assert set(names) == {"etth1", "ettm1", "ecl", "weather", "exchange", "wind", "airdelay"}


class TestSplits:
    def test_ratios_preserved(self):
        ds = load_dataset("etth1", n_points=1600)
        train, _ = ds.split("train")
        val, _ = ds.split("val")
        test, _ = ds.split("test")
        assert len(train) + len(val) + len(test) == 1600
        assert len(train) == 1200  # 12/(12+2+2)
        assert len(val) == 200

    def test_split_chronological(self):
        ds = load_dataset("etth1", n_points=400)
        _, t_train = ds.split("train")
        _, t_val = ds.split("val")
        _, t_test = ds.split("test")
        assert t_train[-1] < t_val[0] < t_test[0]

    def test_scaling_uses_train_stats(self):
        ds = load_dataset("etth1", n_points=800)
        train, _ = ds.split("train")
        np.testing.assert_allclose(train.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(train.std(axis=0), 1.0, atol=1e-9)
        test, _ = ds.split("test")
        # test scaled by train stats: not exactly standardized
        assert not np.allclose(test.mean(axis=0), 0.0, atol=1e-3)

    def test_invalid_split_name(self):
        ds = load_dataset("etth1", n_points=200)
        with pytest.raises(ValueError):
            ds.split("holdout")

    def test_univariate_projection(self):
        ds = load_dataset("etth1", n_points=300)
        uni = ds.univariate()
        assert uni.n_dims == 1
        np.testing.assert_array_equal(uni.values[:, 0], ds.values[:, ds.target_index])

    def test_summary(self):
        ds = load_dataset("weather", n_points=250)
        row = ds.summary()
        assert row["n_dims"] == 21 and row["n_points"] == 250 and row["interval"] == "10min"

    def test_bad_ratios_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesDataset(
                name="bad",
                values=np.zeros((10, 2)),
                timestamps=make_timestamps(10, "h"),
                target_index=0,
                freq="h",
                split_ratios=(0.5, 0.2, 0.2),
            )


class TestTimeFeatures:
    def test_range(self):
        ts = make_timestamps(500, "h")
        feats = time_features(ts, ("hour", "day", "week", "month"))
        assert feats.shape == (500, 4)
        assert feats.min() >= -0.5 - 1e-9 and feats.max() <= 0.5 + 1e-9

    def test_hour_cycles(self):
        ts = make_timestamps(48, "h", start="2020-01-01")
        feats = time_features(ts, ("hour",))
        np.testing.assert_allclose(feats[0, 0], -0.5)
        np.testing.assert_allclose(feats[24, 0], -0.5)
        assert feats[12, 0] > 0.0

    def test_weekday_monday_zero(self):
        # 2020-01-06 was a Monday
        ts = np.array([np.datetime64("2020-01-06")])
        feats = time_features(ts, ("week",))
        np.testing.assert_allclose(feats[0, 0], -0.5)

    def test_year_feature_spans(self):
        ts = make_timestamps(365 * 3, "d")
        feats = time_features(ts, ("year",))
        assert feats[0, 0] == -0.5 and feats[-1, 0] == 0.5

    def test_unknown_resolution(self):
        with pytest.raises(ValueError):
            time_features(make_timestamps(5, "h"), ("fortnight",))

    def test_unknown_freq(self):
        with pytest.raises(ValueError):
            make_timestamps(5, "5s")


class TestScalers:
    def test_standard_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(100, 4))
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_standard_stats(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(500, 2))
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_constant_channel_safe(self):
        data = np.column_stack([np.ones(50), np.arange(50.0)])
        out = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(out))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((3, 2)))

    def test_minmax(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(-5, 10, size=(60, 3))
        scaler = MinMaxScaler().fit(data)
        out = scaler.transform(data)
        assert out.min() >= 0.0 and out.max() <= 1.0
        np.testing.assert_allclose(scaler.inverse_transform(out), data)


class TestWindows:
    def _windows(self, n=50, input_len=8, pred_len=4, **kwargs):
        values = np.arange(n, dtype=float)[:, None] * np.ones((1, 2))
        marks = np.zeros((n, 3))
        return WindowedDataset(values, marks, input_len, pred_len, **kwargs)

    def test_count(self):
        ws = self._windows(n=50, input_len=8, pred_len=4)
        assert len(ws) == 50 - 8 - 4 + 1

    def test_sample_alignment(self):
        ws = self._windows(n=30, input_len=6, pred_len=3, label_len=2)
        s = ws[5]
        np.testing.assert_array_equal(s.x_enc[:, 0], np.arange(5, 11))
        np.testing.assert_array_equal(s.y[:, 0], np.arange(11, 14))
        # decoder input: last label_len of encoder + zeros
        np.testing.assert_array_equal(s.x_dec[:2, 0], [9, 10])
        np.testing.assert_array_equal(s.x_dec[2:, 0], 0.0)
        assert s.y_mark.shape == (5, 3)

    def test_default_label_len(self):
        ws = self._windows(input_len=8, pred_len=4)
        assert ws.label_len == 4

    def test_out_of_range(self):
        ws = self._windows()
        with pytest.raises(IndexError):
            ws[len(ws)]

    def test_stride(self):
        ws = self._windows(n=50, input_len=8, pred_len=4, stride=2)
        assert len(ws) == (50 - 8 - 4 + 1 + 1) // 2
        s0, s1 = ws[0], ws[1]
        assert s1.x_enc[0, 0] - s0.x_enc[0, 0] == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            self._windows(input_len=0)
        with pytest.raises(ValueError):
            self._windows(input_len=4, pred_len=2, label_len=8)

    def test_values_marks_length_mismatch(self):
        with pytest.raises(ValueError):
            WindowedDataset(np.zeros((10, 2)), np.zeros((9, 3)), 4, 2)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ws = TestWindows()._windows(n=60, input_len=8, pred_len=4)
        loader = DataLoader(ws, batch_size=16)
        total = sum(batch[0].shape[0] for batch in loader)
        assert total == len(ws)

    def test_batch_shapes(self):
        ws = TestWindows()._windows(n=40, input_len=8, pred_len=4)
        x_enc, x_mark, x_dec, y_mark, y = next(iter(DataLoader(ws, batch_size=5)))
        assert x_enc.shape == (5, 8, 2)
        assert x_mark.shape == (5, 8, 3)
        assert x_dec.shape == (5, 8, 2)  # label_len (4) + pred_len (4)
        assert y_mark.shape == (5, 8, 3)
        assert y.shape == (5, 4, 2)

    def test_shuffle_changes_order(self):
        ws = TestWindows()._windows(n=100, input_len=8, pred_len=4)
        plain = next(iter(DataLoader(ws, batch_size=10, shuffle=False)))[0]
        shuffled = next(iter(DataLoader(ws, batch_size=10, shuffle=True, rng=np.random.default_rng(1))))[0]
        assert not np.allclose(plain, shuffled)

    def test_drop_last(self):
        ws = TestWindows()._windows(n=60, input_len=8, pred_len=4)  # 49 samples
        loader = DataLoader(ws, batch_size=16, drop_last=True)
        assert len(loader) == 3
        assert sum(1 for _ in loader) == 3
