"""Tests for the Conformer core: decomposition, input repr, SIRN, flow, model."""

import numpy as np
import pytest

from repro.core import (
    Conformer,
    ConformerConfig,
    InputRepresentation,
    MultiscaleDynamics,
    NormalizingFlow,
    SeriesDecomposition,
    SIRNEncoder,
    SIRNDecoder,
    SIRNLayer,
    multivariate_correlation_weights,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(33)


def tiny_config(**overrides):
    defaults = dict(
        enc_in=4,
        dec_in=4,
        c_out=4,
        input_len=16,
        label_len=8,
        pred_len=8,
        d_model=8,
        n_heads=2,
        e_layers=2,
        d_layers=1,
        d_ff=16,
        moving_avg=5,
        d_time=3,
        dropout=0.0,
        n_flows=2,
        seed=0,
    )
    defaults.update(overrides)
    return ConformerConfig(**defaults)


def model_inputs(cfg, batch=2):
    x_enc = RNG.normal(size=(batch, cfg.input_len, cfg.enc_in))
    x_mark = RNG.normal(size=(batch, cfg.input_len, cfg.d_time))
    x_dec = RNG.normal(size=(batch, cfg.dec_len, cfg.dec_in))
    x_dec[:, -cfg.pred_len :, :] = 0.0
    y_mark = RNG.normal(size=(batch, cfg.dec_len, cfg.d_time))
    return Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark)


class TestSeriesDecomposition:
    def test_reconstruction_identity(self):
        decomp = SeriesDecomposition(kernel_size=7)
        x = Tensor(RNG.normal(size=(2, 30, 3)))
        trend, seasonal = decomp(x)
        np.testing.assert_allclose(trend.data + seasonal.data, x.data, atol=1e-12)

    def test_trend_is_smooth(self):
        decomp = SeriesDecomposition(kernel_size=15)
        t = np.arange(100)
        noisy = t * 0.1 + np.sin(t) + RNG.normal(0, 0.5, 100)
        trend, _ = decomp(Tensor(noisy.reshape(1, -1, 1)))
        assert np.var(np.diff(trend.data.ravel())) < np.var(np.diff(noisy))

    def test_constant_series_all_trend(self):
        decomp = SeriesDecomposition(kernel_size=5)
        x = Tensor(np.full((1, 20, 2), 3.0))
        trend, seasonal = decomp(x)
        np.testing.assert_allclose(trend.data, 3.0)
        np.testing.assert_allclose(seasonal.data, 0.0, atol=1e-12)


class TestMultivariateCorrelation:
    def test_weights_simplex(self):
        x = RNG.normal(size=(3, 32, 5))
        w = multivariate_correlation_weights(x)
        assert w.shape == x.shape
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, atol=1e-10)
        assert np.all(w >= 0)

    def test_periodic_variable_gets_weight(self):
        """A strongly periodic variable has higher auto-correlation energy."""
        length = 64
        t = np.arange(length)
        periodic = 3.0 * np.sin(2 * np.pi * t / 8)
        noise = RNG.normal(0, 0.3, length)
        x = np.stack([periodic, noise], axis=-1)[None]
        w = multivariate_correlation_weights(x)
        assert w[0, :, 0].mean() > w[0, :, 1].mean()


class TestMultiscaleDynamics:
    def test_output_shape(self):
        block = MultiscaleDynamics(n_scales=3, seq_len=12, d_model=8)
        marks = Tensor(RNG.normal(size=(2, 12, 3)))
        assert block(marks).shape == (2, 12, 8)

    def test_wrong_length_rejected(self):
        block = MultiscaleDynamics(n_scales=2, seq_len=12, d_model=8)
        with pytest.raises(ValueError):
            block(Tensor(RNG.normal(size=(2, 10, 2))))

    def test_too_few_marks_rejected(self):
        block = MultiscaleDynamics(n_scales=4, seq_len=8, d_model=8)
        with pytest.raises(ValueError):
            block(Tensor(RNG.normal(size=(1, 8, 2))))

    def test_parameters_registered(self):
        block = MultiscaleDynamics(n_scales=3, seq_len=6, d_model=4)
        names = [n for n, _ in block.named_parameters()]
        assert sum("mixer" in n for n in names) == 3


class TestInputRepresentation:
    @pytest.mark.parametrize("variant", ["full", "-gamma", "-r", "-r-gamma", "-x", "-x-gamma"])
    def test_variants_shape(self, variant):
        block = InputRepresentation(d_x=4, d_model=8, seq_len=10, n_scales=3, variant=variant)
        x = Tensor(RNG.normal(size=(2, 10, 4)))
        marks = Tensor(RNG.normal(size=(2, 10, 3)))
        assert block(x, marks).shape == (2, 10, 8)

    @pytest.mark.parametrize("method", [1, 2, 3, 4])
    def test_fusion_methods_shape(self, method):
        block = InputRepresentation(d_x=4, d_model=8, seq_len=10, n_scales=3, fusion_method=method)
        x = Tensor(RNG.normal(size=(2, 10, 4)))
        marks = Tensor(RNG.normal(size=(2, 10, 3)))
        assert block(x, marks).shape == (2, 10, 8)

    def test_variant_changes_output(self):
        x = Tensor(RNG.normal(size=(1, 10, 4)))
        marks = Tensor(RNG.normal(size=(1, 10, 3)))
        from repro.tensor.random import seed_everything

        seed_everything(0)
        full = InputRepresentation(4, 8, 10, 3, variant="full")
        seed_everything(0)
        no_gamma = InputRepresentation(4, 8, 10, 3, variant="-gamma")
        assert not np.allclose(full(x, marks).data, no_gamma(x, marks).data)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            InputRepresentation(4, 8, 10, variant="nope")

    def test_gradients_flow_to_conv(self):
        block = InputRepresentation(d_x=3, d_model=4, seq_len=8, n_scales=2)
        x = Tensor(RNG.normal(size=(1, 8, 3)))
        marks = Tensor(RNG.normal(size=(1, 8, 2)))
        (block(x, marks) ** 2).sum().backward()
        assert block.conv.weight.grad is not None
        assert block.multiscale.embeddings[0].weight.grad is not None


class TestSIRN:
    def test_layer_shape_preserved(self):
        layer = SIRNLayer(d_model=8, n_heads=2, moving_avg=5, dropout=0.0)
        x = Tensor(RNG.normal(size=(2, 12, 8)))
        assert layer(x).shape == (2, 12, 8)

    def test_hidden_state_exposed(self):
        layer = SIRNLayer(d_model=8, n_heads=2, moving_avg=5)
        assert layer.last_hidden is None
        layer(Tensor(RNG.normal(size=(3, 12, 8))))
        assert layer.last_hidden.shape == (3, 8)

    def test_eta_iterations(self):
        layer = SIRNLayer(d_model=8, n_heads=2, moving_avg=5, decomp_iterations=3, dropout=0.0)
        x = Tensor(RNG.normal(size=(1, 12, 8)))
        assert layer(x).shape == (1, 12, 8)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            SIRNLayer(d_model=8, n_heads=2, decomp_iterations=0)

    def test_encoder_stack(self):
        encoder = SIRNEncoder(2, d_model=8, n_heads=2, moving_avg=5, dropout=0.0)
        out = encoder(Tensor(RNG.normal(size=(2, 12, 8))))
        assert out.shape == (2, 12, 8)
        states = encoder.hidden_states()
        assert len(states) == 2 and states[0].shape == (2, 8)

    def test_decoder_cross_attends(self):
        decoder = SIRNDecoder(1, d_model=8, c_out=4, n_heads=2, moving_avg=5, dropout=0.0)
        x = Tensor(RNG.normal(size=(2, 10, 8)))
        memory1 = Tensor(RNG.normal(size=(2, 16, 8)))
        memory2 = Tensor(RNG.normal(size=(2, 16, 8)))
        out1, _ = decoder(x, memory1)
        out2, _ = decoder(x, memory2)
        assert out1.shape == (2, 10, 4)
        assert not np.allclose(out1.data, out2.data)

    @pytest.mark.parametrize("attn", ["full", "prob_sparse", "lsh", "log_sparse", "auto_correlation"])
    def test_attention_swaps(self, attn):
        """Table VI: SIRN must accept every competitor attention."""
        layer = SIRNLayer(d_model=8, n_heads=2, moving_avg=5, attention_type=attn, dropout=0.0)
        x = Tensor(RNG.normal(size=(1, 16, 8)))
        assert layer(x).shape == (1, 16, 8)


class TestNormalizingFlow:
    def _flow(self, mode="flow", n_flows=2):
        return NormalizingFlow(d_hidden=8, latent_dim=6, pred_len=5, c_out=3, n_flows=n_flows, mode=mode, seed=0)

    def test_output_shape(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(4, 8))), Tensor(RNG.normal(size=(4, 8)))
        assert flow(h_e, h_d).shape == (4, 5, 3)

    def test_latent_chain_length(self):
        flow = self._flow(n_flows=3)
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        chain = flow.latent_chain(h_e, h_d)
        assert len(chain) == 2 + 3  # z_e, z_0, z_1..z_3

    def test_deterministic_repeatable(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        out1 = flow(h_e, h_d, deterministic=True)
        out2 = flow(h_e, h_d, deterministic=True)
        np.testing.assert_array_equal(out1.data, out2.data)

    def test_stochastic_varies(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        out1 = flow(h_e, h_d)
        out2 = flow(h_e, h_d)
        assert not np.allclose(out1.data, out2.data)

    @pytest.mark.parametrize("mode", ["flow", "z_e", "z_d", "z_0"])
    def test_ablation_modes(self, mode):
        flow = self._flow(mode=mode)
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        assert flow(h_e, h_d).shape == (2, 5, 3)

    def test_sampling(self):
        flow = self._flow()
        h_e, h_d = Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 8)))
        samples = flow.sample(h_e, h_d, n_samples=7)
        assert samples.shape == (7, 2, 5, 3)
        assert samples.std(axis=0).mean() > 0  # genuine spread

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            self._flow(mode="vae")

    def test_invalid_n_flows(self):
        with pytest.raises(ValueError):
            self._flow(n_flows=0)

    def test_gradients_reach_heads(self):
        flow = self._flow()
        h_e = Tensor(RNG.normal(size=(2, 8)), requires_grad=True)
        h_d = Tensor(RNG.normal(size=(2, 8)), requires_grad=True)
        (flow(h_e, h_d, deterministic=True) ** 2).sum().backward()
        assert flow.encoder_head.mu.weight.grad is not None
        assert flow.transforms[0].mu.weight.grad is not None
        assert h_e.grad is not None and h_d.grad is not None


class TestConformerModel:
    def test_forward_shapes(self):
        cfg = tiny_config()
        model = Conformer(cfg)
        y_out, z_out = model(*model_inputs(cfg))
        assert y_out.shape == (2, cfg.pred_len, cfg.c_out)
        assert z_out.shape == (2, cfg.pred_len, cfg.c_out)

    def test_flow_none_mode(self):
        cfg = tiny_config(flow_mode="none")
        model = Conformer(cfg)
        y_out, z_out = model(*model_inputs(cfg))
        assert z_out is None
        assert y_out.shape == (2, cfg.pred_len, cfg.c_out)

    def test_loss_combines_heads(self):
        cfg = tiny_config(lambda_weight=0.8)
        model = Conformer(cfg)
        inputs = model_inputs(cfg)
        y_out, z_out = model(*inputs, deterministic=True)
        target = Tensor(RNG.normal(size=(2, cfg.pred_len, cfg.c_out)))
        combined = model.loss(y_out, z_out, target).item()
        y_only = model.loss(y_out, None, target).item()
        from repro.tensor import functional as F

        z_mse = F.mse_loss(z_out, target).item()
        assert combined == pytest.approx(0.8 * y_only + 0.2 * z_mse)

    def test_training_step_reduces_loss(self):
        from repro.optim import Adam

        cfg = tiny_config()
        model = Conformer(cfg)
        inputs = model_inputs(cfg)
        target = Tensor(RNG.normal(scale=0.3, size=(2, cfg.pred_len, cfg.c_out)))
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(8):
            opt.zero_grad()
            y_out, z_out = model(*inputs, deterministic=True)
            loss = model.loss(y_out, z_out, target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_predict_blends(self):
        cfg = tiny_config()
        model = Conformer(cfg)
        out = model.predict(*model_inputs(cfg))
        assert out.shape == (2, cfg.pred_len, cfg.c_out)
        assert model.training  # mode restored

    def test_predict_with_uncertainty(self):
        cfg = tiny_config()
        model = Conformer(cfg)
        result = model.predict_with_uncertainty(*model_inputs(cfg), n_samples=11)
        assert result["mean"].shape == (2, cfg.pred_len, cfg.c_out)
        assert result["samples"].shape == (11, 2, cfg.pred_len, cfg.c_out)
        assert np.all(result["q0.05"] <= result["q0.95"] + 1e-12)

    def test_uncertainty_requires_flow(self):
        cfg = tiny_config(flow_mode="none")
        model = Conformer(cfg)
        with pytest.raises(RuntimeError):
            model.predict_with_uncertainty(*model_inputs(cfg))

    @pytest.mark.parametrize("source", [("first", "first"), ("last", "last"), ("first", "last")])
    def test_hidden_source_options(self, source):
        cfg = tiny_config(flow_hidden_source=source)
        model = Conformer(cfg)
        y_out, z_out = model(*model_inputs(cfg))
        assert z_out is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            tiny_config(lambda_weight=1.5)
        with pytest.raises(ValueError):
            tiny_config(label_len=99)
        with pytest.raises(ValueError):
            tiny_config(flow_mode="diffusion")
        with pytest.raises(ValueError):
            tiny_config(input_variant="-q")
        with pytest.raises(ValueError):
            tiny_config(flow_hidden_source=("middle", "first"))

    def test_state_roundtrip(self, tmp_path):
        cfg = tiny_config()
        model = Conformer(cfg)
        inputs = model_inputs(cfg)
        expected = model.predict(*inputs)
        path = str(tmp_path / "conformer.npz")
        model.save(path)
        clone = Conformer(tiny_config())
        clone.load(path)
        np.testing.assert_allclose(clone.predict(*inputs), expected)
