"""Op-level profiler, memory accounting, and Chrome-trace export.

Covers the ``repro.obs.profile`` surface end to end:

- :func:`repro.perf.op_profile` — per-op wall-time/call/byte attribution,
  dotted-``named_modules`` labelling, hook install/uninstall hygiene;
- memory accounting — live/peak bytes, tape-node pinning, and the
  inference fast path's zero-tape guarantee;
- the ``op_profile`` run-log event → ``obs report`` / ``obs trace``
  round-trip, including Chrome Trace Event Format schema validity;
- tolerant JSONL loading (truncated/corrupt lines skipped and counted);
- zero overhead when disabled, mirroring the sanitizer guard.
"""

from __future__ import annotations

import gc
import json

import numpy as np
import pytest

from repro.nn import Linear, Module
from repro.obs import chrome_trace, load_jsonl, load_run, render_report, run_logger
from repro.obs.trace import OP_TID, SPAN_TID, write_chrome_trace
from repro.perf import op_profile
from repro.perf.opprof import OP_PROFILE_SCHEMA
from repro.tensor import Tensor, inference_mode
from repro.tensor import tensor as tensor_mod
from repro.tensor.profiler import ROOT_MODULE

RNG = np.random.default_rng(404)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


def _forward(model=None):
    model = model if model is not None else TinyNet()
    return model(Tensor(RNG.normal(size=(3, 4)), requires_grad=True))


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
@pytest.mark.profile
class TestOpProfile:
    def test_counts_seconds_and_bytes_per_op(self):
        with op_profile() as prof:
            a = Tensor(RNG.normal(size=(8, 8)), requires_grad=True)
            b = Tensor(RNG.normal(size=(8, 8)), requires_grad=True)
            (a @ b).relu().sum()
        per_op = prof.engine.per_op()
        assert per_op["matmul"]["calls"] == 1
        assert per_op["relu"]["calls"] == 1
        assert prof.total_calls >= 3
        assert prof.total_seconds >= 0.0
        # the matmul output is an 8x8 float64 array
        assert per_op["matmul"]["nbytes"] == 8 * 8 * 8
        assert "matmul" in prof.summary()

    def test_module_attribution_uses_named_modules_paths(self):
        model = TinyNet()
        with op_profile(model) as prof:
            _forward(model)
        modules = prof.engine.per_module()
        # matmul/add happen inside the Linears; relu in the root forward
        assert "fc1" in modules and "fc2" in modules
        labelled = {(r["module"], r["op"]) for r in prof.rows()}
        assert ("fc1", "matmul") in labelled
        assert ("fc2", "matmul") in labelled
        assert (ROOT_MODULE, "relu") in labelled

    def test_module_forward_restored_after_context(self):
        model = TinyNet()
        with op_profile(model):
            _forward(model)
        # the instance-attribute shims are gone: class forward again
        assert "forward" not in vars(model.fc1)
        assert "forward" not in vars(model.fc2)
        # and unwrapped calls still work
        assert _forward(model).shape == (3, 2)

    def test_hook_uninstalls_cleanly_even_on_error(self):
        assert tensor_mod._OP_HOOK is None
        with pytest.raises(RuntimeError):
            with op_profile():
                _forward()
                raise RuntimeError("body failed")
        assert tensor_mod._OP_HOOK is None, "op hook leaked after exception"

    def test_nested_profiles_restore_outer_hook(self):
        with op_profile() as outer:
            _forward()
            calls_before = outer.total_calls
            with op_profile() as inner:
                _forward()
            assert inner.total_calls > 0
            _forward()
        # outer kept recording after the inner context restored its hook
        assert outer.total_calls > calls_before
        assert tensor_mod._OP_HOOK is None

    def test_timeline_capacity_bounds_events_not_aggregates(self):
        with op_profile(timeline_capacity=4) as prof:
            for _ in range(3):
                _forward()
        assert len(prof.timeline()) == 4
        assert prof.engine.dropped_events == prof.total_calls - 4
        assert prof.total_calls > 4  # aggregates saw every op


# ----------------------------------------------------------------------
# memory accounting
# ----------------------------------------------------------------------
@pytest.mark.profile
class TestMemoryAccounting:
    def test_training_mode_pins_tape_nodes_and_bytes(self):
        with op_profile() as prof:
            out = _forward()
        mem = prof.memory_stats()
        assert mem["taped_nodes"] > 0
        assert mem["taped_bytes"] > 0
        assert mem["allocated_bytes"] >= mem["taped_bytes"]
        assert mem["peak_bytes"] >= mem["live_bytes"] >= 0
        del out

    def test_inference_mode_shows_zero_tape(self):
        model = TinyNet()
        with op_profile(model) as prof:
            with inference_mode():
                _forward(model)
        mem = prof.memory_stats()
        assert prof.total_calls > 0
        assert mem["taped_nodes"] == 0, "inference fast path must not tape"
        assert mem["taped_bytes"] == 0

    def test_live_bytes_drop_when_the_graph_is_freed(self):
        with op_profile() as prof:
            out = _forward()
        assert prof.engine.live_bytes > 0
        del out
        gc.collect()
        assert prof.engine.live_bytes == 0
        # cumulative counters are unaffected by frees
        assert prof.engine.peak_bytes > 0
        assert prof.total_bytes > 0

    def test_track_live_false_skips_weakrefs(self):
        with op_profile(track_live=False) as prof:
            _forward()
        assert prof.engine.live_bytes == 0
        assert prof.engine.peak_bytes == 0
        assert prof.total_bytes > 0


# ----------------------------------------------------------------------
# zero overhead when disabled (mirrors the sanitizer guard)
# ----------------------------------------------------------------------
@pytest.mark.perf
@pytest.mark.profile
class TestProfilerZeroOverheadWhenOff:
    def _work(self):
        x = Tensor(RNG.normal(size=(8, 8)), requires_grad=True)
        ((x @ x).relu().sum()).backward()

    def _tape_nodes(self) -> int:
        from repro.perf import profile

        with profile() as prof:
            self._work()
        return prof.total_nodes

    def test_op_hook_is_none_by_default(self):
        assert tensor_mod._OP_HOOK is None

    def test_disabled_mode_records_identical_tape(self):
        baseline = self._tape_nodes()
        with op_profile() as prof:
            self._work()  # profiled run — same graph, hook installed
        assert prof.total_calls > 0
        assert tensor_mod._OP_HOOK is None, "op_profile() leaked its hook"
        assert self._tape_nodes() == baseline

    def test_profiler_does_not_perturb_op_outputs(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6, 6))
        plain = (Tensor(x) @ Tensor(x)).data
        with op_profile():
            profiled = (Tensor(x) @ Tensor(x)).data
        np.testing.assert_array_equal(plain, profiled)


# ----------------------------------------------------------------------
# run-log integration: gauges, report, Chrome trace
# ----------------------------------------------------------------------
def _record_run(tmp_path, taped: bool = True):
    path = tmp_path / "run.jsonl"
    logger = run_logger(jsonl_path=path)
    model = TinyNet()
    with logger.span("fit"):
        with logger.span("forward"):
            with op_profile(model) as prof:
                if taped:
                    _forward(model)
                else:
                    with inference_mode():
                        _forward(model)
    logger.record_memory(prof)
    logger.record_op_profile(prof)
    logger.close()
    return path


@pytest.mark.profile
class TestRunLogIntegration:
    def test_op_profile_event_round_trips_through_report(self, tmp_path):
        path = _record_run(tmp_path)
        run = load_run(path)
        assert run.op_profile["schema"] == OP_PROFILE_SCHEMA
        assert run.op_profile["total_calls"] > 0
        report = render_report(run)
        assert "op profile" in report
        assert "matmul" in report
        assert "memory:" in report

    def test_memory_and_cache_gauges_reach_the_registry(self, tmp_path):
        path = _record_run(tmp_path, taped=False)
        run = load_run(path)
        # inference fast path: the mem.* gauges must show zero tape
        assert run.metrics["mem.taped_nodes"]["value"] == 0
        assert run.metrics["mem.taped_bytes"]["value"] == 0
        assert run.metrics["mem.allocated_bytes"]["value"] > 0
        # arena/plan-cache stats are gauged automatically on close()
        for name in ("arena.hits", "arena.misses", "arena.high_water_bytes",
                     "plan_cache.hits", "plan_cache.misses"):
            assert name in run.metrics, name

    def test_span_events_stream_alongside_aggregates(self, tmp_path):
        run = load_run(_record_run(tmp_path))
        spans = run.of_kind("span")
        assert {s["path"] for s in spans} == {"fit", "fit/forward"}
        assert all(s["end"] >= s["start"] for s in spans)
        assert "fit/forward" in run.spans  # the close() aggregate too


@pytest.mark.profile
class TestChromeTrace:
    def test_trace_schema_is_valid(self, tmp_path):
        trace = chrome_trace(_record_run(tmp_path))
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        slices = [e for e in events if e["ph"] == "X"]
        for event in slices:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["tid"] in (SPAN_TID, OP_TID)
        assert trace["otherData"]["n_spans"] == 2
        assert trace["otherData"]["n_ops"] >= 5

    def test_span_and_op_tracks_share_the_clock(self, tmp_path):
        trace = chrome_trace(_record_run(tmp_path))
        events = trace["traceEvents"]
        forward = next(
            e for e in events if e.get("cat") == "span" and e["name"] == "forward"
        )
        ops = [e for e in events if e.get("cat") == "op"]
        assert ops
        lo, hi = forward["ts"], forward["ts"] + forward["dur"]
        assert all(lo <= op["ts"] <= hi for op in ops)

    def test_write_chrome_trace_emits_loadable_json(self, tmp_path):
        out = write_chrome_trace(_record_run(tmp_path), tmp_path / "trace.json")
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"

    def test_include_ops_false_drops_the_op_track(self, tmp_path):
        trace = chrome_trace(_record_run(tmp_path), include_ops=False)
        assert trace["otherData"]["n_ops"] == 0
        assert all(e.get("cat") != "op" for e in trace["traceEvents"])

    def test_cli_obs_trace(self, tmp_path, capsys):
        from repro.cli import main

        run_path = _record_run(tmp_path)
        out = tmp_path / "t.json"
        assert main(["obs", "trace", str(run_path), "-o", str(out)]) == 0
        assert "perfetto" in capsys.readouterr().out
        assert json.loads(out.read_text())["traceEvents"]


# ----------------------------------------------------------------------
# tolerant JSONL loading
# ----------------------------------------------------------------------
class TestTolerantJsonl:
    def test_load_run_skips_corrupt_lines_with_warning(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            json.dumps({"ts": 0.0, "kind": "manifest", "model": "m"}),
            '{"ts": 1.0, "kind": "epoch", "train_l',  # truncated mid-write
            "[1, 2, 3]",  # parses, but not an object
            json.dumps({"ts": 2.0, "kind": "epoch", "epoch": 0, "train_loss": 1.0}),
            "not json at all",
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        run = load_run(path)
        assert run.skipped_lines == 3
        assert len(run.epochs) == 1
        assert run.manifest["model"] == "m"
        assert "skipped 3 malformed line(s)" in render_report(run)

    def test_load_jsonl_counts_and_keeps_order(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n\nbroken\n{"a": 2}\n', encoding="utf-8")
        records, skipped = load_jsonl(path)
        assert [r["a"] for r in records] == [1, 2]
        assert skipped == 1

    def test_clean_file_reports_zero_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"kind": "epoch", "epoch": 0}\n', encoding="utf-8")
        assert load_run(path).skipped_lines == 0
