"""Integration tests: end-to-end pipelines, determinism, persistence."""

import numpy as np
import pytest

from repro import Conformer, ConformerConfig, load_dataset, seed_everything
from repro.data import DataLoader, WindowedDataset
from repro.tensor import Tensor
from repro.training import (
    ExperimentSettings,
    Trainer,
    build_model,
    make_loaders,
    run_experiment,
)

FAST = ExperimentSettings(
    input_len=16,
    label_len=8,
    d_model=8,
    n_heads=2,
    e_layers=1,
    d_layers=1,
    d_ff=16,
    n_points=400,
    max_epochs=2,
    batch_size=8,
    window_stride=16,
    eval_stride=16,
    max_train_windows=16,
    max_eval_windows=8,
    moving_avg=5,
)


class TestDeterminism:
    def test_same_seed_same_result(self):
        r1 = run_experiment("etth1", "conformer", pred_len=4, settings=FAST, seeds=(3,))
        r2 = run_experiment("etth1", "conformer", pred_len=4, settings=FAST, seeds=(3,))
        assert r1.mse == pytest.approx(r2.mse, rel=1e-9)
        assert r1.mae == pytest.approx(r2.mae, rel=1e-9)

    def test_different_seeds_different_results(self):
        r1 = run_experiment("etth1", "gru", pred_len=4, settings=FAST, seeds=(0,))
        r2 = run_experiment("etth1", "gru", pred_len=4, settings=FAST, seeds=(1,))
        assert r1.mse != pytest.approx(r2.mse, rel=1e-6)

    def test_model_construction_deterministic(self):
        seed_everything(7)
        cfg = ConformerConfig(enc_in=3, dec_in=3, c_out=3, input_len=8, label_len=4, pred_len=4,
                              d_model=8, n_heads=2, moving_avg=5, d_time=2, seed=5)
        m1 = Conformer(cfg)
        seed_everything(7)
        m2 = Conformer(ConformerConfig(enc_in=3, dec_in=3, c_out=3, input_len=8, label_len=4, pred_len=4,
                                       d_model=8, n_heads=2, moving_avg=5, d_time=2, seed=5))
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)


class TestFullPipeline:
    @pytest.mark.parametrize("model_name", ["conformer", "informer", "autoformer", "gru", "nbeats"])
    def test_every_model_full_pipeline(self, model_name):
        result = run_experiment("wind", model_name, pred_len=4, settings=FAST)
        assert np.isfinite(result.mse) and result.mse > 0

    def test_every_dataset_full_pipeline(self):
        for dataset in ["etth1", "ettm1", "weather", "exchange", "wind", "airdelay"]:
            result = run_experiment(dataset, "gru", pred_len=4, settings=FAST)
            assert np.isfinite(result.mse), dataset

    def test_checkpoint_resume(self, tmp_path):
        """Save after training, reload into a fresh model, same predictions."""
        dataset = load_dataset("etth1", n_points=400)
        train, val, test = make_loaders(dataset, FAST, pred_len=4)
        model = build_model("conformer", dataset.n_dims, dataset.n_dims, 4, FAST, seed=0)
        Trainer(model, max_epochs=1).fit(train)
        path = str(tmp_path / "ckpt.npz")
        model.save(path)

        clone = build_model("conformer", dataset.n_dims, dataset.n_dims, 4, FAST, seed=99)
        clone.load(path)
        x_enc, x_mark, x_dec, y_mark, _ = next(iter(test))
        np.testing.assert_allclose(
            model.predict(x_enc, x_mark, x_dec, y_mark),
            clone.predict(x_enc, x_mark, x_dec, y_mark),
            atol=1e-10,
        )

    def test_training_beats_untrained(self):
        dataset = load_dataset("etth1", n_points=800)
        settings = ExperimentSettings(
            input_len=24, label_len=12, d_model=16, n_heads=2, d_ff=32, n_points=800,
            max_epochs=4, moving_avg=9, window_stride=4, eval_stride=8,
            max_train_windows=64, max_eval_windows=16,
        )
        train, val, test = make_loaders(dataset, settings, pred_len=8)
        model = build_model("conformer", dataset.n_dims, dataset.n_dims, 8, settings)
        trainer = Trainer(model, learning_rate=1e-3, max_epochs=4)
        untrained = trainer.evaluate(test)["mse"]
        trainer.fit(train, val)
        trained = trainer.evaluate(test)["mse"]
        assert trained < untrained

    def test_univariate_pipeline_all_flow_modes(self):
        for mode in ["flow", "none"]:
            result = run_experiment(
                "wind", "conformer", pred_len=4, settings=FAST, univariate=True,
                model_overrides={"flow_mode": mode},
            )
            assert np.isfinite(result.mse)

    def test_nll_mode_pipeline(self):
        result = run_experiment(
            "etth1", "conformer", pred_len=4, settings=FAST,
            model_overrides={"flow_loss": "nll"},
        )
        assert np.isfinite(result.mse)
