"""repro.obs: tracer spans, metric registry, sinks, run logger, report.

Covers the observability subsystem end to end: span nesting and
aggregation, streaming-histogram percentiles/EWMA, ring-buffer and JSONL
sinks, anomaly detection (non-finite loss/grads, exploding norms), the
trainer's step-skip robustness, and the JSONL → ``obs report``
round-trip for a real ``run_experiment`` invocation.
"""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest

from repro.data import load_dataset
from repro.nn import Linear, Module
from repro.obs import (
    NULL_LOGGER,
    AnomalyMonitor,
    ConsoleSink,
    JSONLSink,
    MemorySink,
    MetricRegistry,
    RunLogger,
    StreamingHistogram,
    Tracer,
    build_manifest,
    load_run,
    render_report,
    report_dict,
    run_logger,
)
from repro.tensor import Tensor
from repro.training import run_experiment
from repro.training.experiment import active_profile, build_model, make_loaders
from repro.training.trainer import Trainer


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_aggregate_by_path(self):
        tracer = Tracer()
        with tracer.span("fit"):
            for _ in range(3):
                with tracer.span("epoch"):
                    with tracer.span("batch"):
                        pass
        stats = tracer.as_dict()
        assert stats["fit"]["calls"] == 1
        assert stats["fit/epoch"]["calls"] == 3
        assert stats["fit/epoch/batch"]["calls"] == 3
        # parent wall-clock bounds its children
        assert stats["fit"]["seconds"] >= stats["fit/epoch"]["seconds"]
        assert "fit/epoch/batch" in tracer.summary()

    def test_same_name_at_different_depths_stays_distinct(self):
        tracer = Tracer()
        with tracer.span("load"):
            pass
        with tracer.span("fit"):
            with tracer.span("load"):
                pass
        assert tracer.calls["load"] == 1
        assert tracer.calls["fit/load"] == 1

    def test_flat_mode_keys_by_leaf_name(self):
        tracer = Tracer(flat=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert tracer.calls["inner"] == 2
        assert "outer/inner" not in tracer.seconds

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("inside")
        assert tracer.calls["boom"] == 1
        assert tracer.depth == 0

    def test_records_ring_is_bounded(self):
        tracer = Tracer(max_records=4)
        for _ in range(10):
            with tracer.span("s"):
                pass
        assert len(tracer.records) == 4
        assert tracer.calls["s"] == 10  # aggregates unaffected

    def test_on_close_callback_sees_each_record(self):
        seen = []
        tracer = Tracer(on_close=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r.path for r in seen] == ["a/b", "a"]
        assert seen[0].depth == 1


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_percentiles(self):
        hist = StreamingHistogram("x")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.5)
        assert hist.quantile(0.95) == pytest.approx(95.05, abs=0.2)
        assert hist.max == 100.0
        assert hist.min == 1.0
        assert hist.mean == pytest.approx(50.5)
        p = hist.percentiles()
        assert set(p) == {"p50", "p95"}

    def test_histogram_window_bounds_quantiles_not_aggregates(self):
        hist = StreamingHistogram("x", window=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.max == 99.0
        # quantiles describe only the last 10 observations (90..99)
        assert hist.quantile(0.0) == 90.0

    def test_histogram_ewma_tracks_recent_values(self):
        hist = StreamingHistogram("x", ewma_alpha=0.5)
        hist.observe(0.0)
        hist.observe(10.0)
        assert hist.ewma == pytest.approx(5.0)

    def test_histogram_ignores_nonfinite(self):
        hist = StreamingHistogram("x")
        hist.observe(1.0)
        hist.observe(float("nan"))
        hist.observe(float("inf"))
        assert hist.count == 1
        assert hist.nonfinite == 2
        assert math.isfinite(hist.mean)

    def test_registry_get_or_create_and_snapshot(self):
        reg = MetricRegistry()
        reg.counter("clips").inc()
        reg.counter("clips").inc(2)
        reg.gauge("lr").set(1e-3)
        reg.histogram("loss").observe(0.5)
        snap = reg.snapshot()
        assert snap["clips"]["value"] == 3
        assert snap["lr"]["value"] == 1e-3
        assert snap["loss"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable

    def test_registry_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_memory_sink_ring_buffer(self):
        sink = MemorySink(capacity=3)
        for i in range(5):
            sink.emit({"kind": "e", "i": i})
        assert [e["i"] for e in sink.events] == [2, 3, 4]

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JSONLSink(path)
        sink.emit({"kind": "manifest", "model": "gru"})
        sink.emit({"kind": "epoch", "epoch": 0, "train_loss": 0.5, "arr": np.float64(1.5)})
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "manifest"
        assert lines[1]["arr"] == 1.5  # numpy scalars serialise

    def test_console_sink_epoch_format_matches_legacy_print(self):
        buf = io.StringIO()
        sink = ConsoleSink(stream=buf)
        sink.emit({"kind": "epoch", "epoch": 2, "train_loss": 1.23456, "val_loss": 0.98765})
        sink.emit({"kind": "epoch", "epoch": 3, "train_loss": 1.0, "val_loss": None})
        sink.emit({"kind": "spans", "spans": {}})  # filtered out
        out = buf.getvalue().splitlines()
        assert out[0] == "epoch 2: train=1.2346 val=0.9877"
        assert out[1] == "epoch 3: train=1.0000"
        assert len(out) == 2


# ----------------------------------------------------------------------
# run logger + anomaly monitor
# ----------------------------------------------------------------------
class TestRunLogger:
    def test_null_logger_is_disabled_and_inert(self):
        log = RunLogger.null()
        assert log is NULL_LOGGER
        assert not log.enabled
        log.event("epoch", epoch=0)
        log.observe("loss", 1.0)
        with log.span("x"):
            pass
        assert log.tracer.seconds == {}
        assert log.metrics.snapshot() == {}
        with pytest.raises(ValueError):
            log.add_sink(MemorySink())

    def test_events_reach_all_enabled_sinks(self):
        a, b = MemorySink(), MemorySink()
        log = RunLogger(sinks=[a, b])
        log.event("epoch", epoch=1, train_loss=0.5)
        assert a.events[0]["epoch"] == 1
        assert b.events[0]["train_loss"] == 0.5
        assert "ts" in a.events[0]

    def test_close_emits_span_and_metric_summaries(self):
        sink = MemorySink()
        log = RunLogger(sinks=[sink])
        with log.span("fit"):
            log.observe("loss", 0.25)
        log.close()
        kinds = [e["kind"] for e in sink.events]
        assert "spans" in kinds and "metrics" in kinds
        spans = sink.of_kind("spans")[0]["spans"]
        assert spans["fit"]["calls"] == 1
        metrics = sink.of_kind("metrics")[0]["metrics"]
        assert metrics["loss"]["count"] == 1

    def test_anomaly_monitor_nonfinite(self):
        mon = AnomalyMonitor()
        assert mon.check_loss(float("nan"))["anomaly"] == "nonfinite_loss"
        assert mon.check_loss(1.0) is None
        assert mon.check_grad_norm(float("inf"))["anomaly"] == "nonfinite_grad_norm"

    def test_anomaly_monitor_exploding_grad_norm(self):
        mon = AnomalyMonitor(grad_norm_threshold=10.0, grad_norm_ratio=5.0)
        for _ in range(5):
            assert mon.check_grad_norm(1.0) is None
        finding = mon.check_grad_norm(100.0)
        assert finding["anomaly"] == "exploding_grad_norm"
        assert finding["ratio"] > 5.0

    def test_check_loss_emits_event(self):
        sink = MemorySink()
        log = RunLogger(sinks=[sink])
        assert log.check_loss(float("nan")) is True
        assert log.check_loss(0.5) is False
        anomalies = sink.of_kind("anomaly")
        assert len(anomalies) == 1
        assert anomalies[0]["anomaly"] == "nonfinite_loss"
        assert log.metrics.counter("anomalies").value == 1

    def test_manifest_records_environment(self):
        manifest = build_manifest(model="gru", seed=7)
        assert manifest["model"] == "gru"
        assert manifest["seed"] == 7
        assert manifest["numpy_version"] == np.__version__
        assert "python_version" in manifest

    def test_run_logger_factory_null_without_sinks(self):
        assert run_logger() is NULL_LOGGER
        log = run_logger(memory=16)
        assert log.enabled


# ----------------------------------------------------------------------
# trainer integration
# ----------------------------------------------------------------------
class _NaNEveryOther(Module):
    """Protocol-conforming model whose loss is NaN on odd batches."""

    def __init__(self) -> None:
        super().__init__()
        self.lin = Linear(4, 4, rng=np.random.default_rng(0))
        self.calls = 0

    def forward(self, x_enc, x_mark, x_dec, y_mark):
        return self.lin(x_enc)

    def compute_loss(self, outputs, target) -> Tensor:
        self.calls += 1
        loss = (outputs * outputs).mean()
        if self.calls % 2 == 0:
            return loss * float("nan")
        return loss

    def point_forecast(self, outputs):
        return outputs.data


def _toy_batches(n_batches: int = 4):
    rng = np.random.default_rng(3)
    return [
        tuple(rng.normal(size=(2, 3, 4)) for _ in range(5))
        for _ in range(n_batches)
    ]


class TestTrainerTelemetry:
    def test_nonfinite_loss_skips_optimizer_step(self):
        model = _NaNEveryOther()
        sink = MemorySink()
        trainer = Trainer(model, max_epochs=1, grad_clip=None, logger=RunLogger(sinks=[sink]))
        before = [p.data.copy() for p in model.parameters()]
        history = trainer.fit(_toy_batches(4))
        # odd batches stepped, even batches skipped — params moved, but
        # never through a NaN update
        assert history.skipped_steps == 2
        assert all(np.isfinite(p.data).all() for p in model.parameters())
        assert any(not np.allclose(b, p.data) for b, p in zip(before, model.parameters()))
        anomalies = sink.of_kind("anomaly")
        assert sum(a["anomaly"] == "nonfinite_loss" for a in anomalies) == 2
        assert sink.of_kind("epoch")[0]["train_loss"] is not None

    def test_nonfinite_loss_skipped_even_without_telemetry(self):
        model = _NaNEveryOther()
        trainer = Trainer(model, max_epochs=1, grad_clip=None)
        history = trainer.fit(_toy_batches(4))
        assert history.skipped_steps == 2
        assert all(np.isfinite(p.data).all() for p in model.parameters())

    def test_evaluate_restores_prior_mode(self):
        settings = active_profile()
        dataset = load_dataset("etth1", n_points=settings.n_points, seed=0)
        train, val, test = make_loaders(dataset, settings, 4, seed=0)
        model = build_model("gru", dataset.n_dims, dataset.n_dims, 4, settings, seed=0)
        trainer = Trainer(model, max_epochs=1)

        model.eval()
        trainer.evaluate_loss(val)
        assert model.training is False, "evaluate_loss must restore eval mode"
        trainer.evaluate(test)
        assert model.training is False, "evaluate must restore eval mode"

        model.train()
        trainer.evaluate_loss(val)
        assert model.training is True

    def test_epoch_events_and_grad_norm_metrics(self):
        settings = active_profile()
        dataset = load_dataset("etth1", n_points=settings.n_points, seed=0)
        train, val, _ = make_loaders(dataset, settings, 4, seed=0)
        model = build_model("gru", dataset.n_dims, dataset.n_dims, 4, settings, seed=0)
        sink = MemorySink()
        log = RunLogger(sinks=[sink])
        Trainer(model, max_epochs=2, logger=log).fit(train, val)
        epochs = sink.of_kind("epoch")
        assert len(epochs) == 2
        for e in epochs:
            assert math.isfinite(e["train_loss"])
            assert math.isfinite(e["val_loss"])
            assert e["grad_norm"] > 0
            assert e["samples_per_sec"] > 0
        assert log.metrics.histogram("grad_norm").count > 0
        assert log.metrics.histogram("tape_nodes").count == 2  # first batch per epoch
        assert log.tracer.calls["fit/epoch/batch/forward"] > 0


# ----------------------------------------------------------------------
# run_experiment round trip + report
# ----------------------------------------------------------------------
class TestRunLogRoundTrip:
    @pytest.fixture(scope="class")
    def run_log(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "run.jsonl"
        result = run_experiment("etth1", "gru", pred_len=4, log_jsonl=path)
        return path, result

    def test_jsonl_manifest_and_epoch_events(self, run_log):
        path, result = run_log
        run = load_run(path)
        assert run.manifest["dataset"] == "etth1"
        assert run.manifest["model"] == "gru"
        assert run.manifest["numpy_version"] == np.__version__
        assert isinstance(run.manifest["settings"], dict)
        assert run.epochs, "expected per-epoch events"
        for e in run.epochs:
            assert "train_loss" in e and "grad_norm" in e and "samples_per_sec" in e
        # spans + metrics summaries flushed on close
        assert any(k.startswith("fit") for k in run.spans)
        assert "loss" in run.metrics and "samples_per_sec" in run.metrics

    def test_report_renders_run(self, run_log):
        path, result = run_log
        run = load_run(path)
        text = render_report(run)
        assert "manifest" in text
        assert "etth1" in text and "gru" in text
        assert "samples/s" in text
        assert "anomalies: none" in text
        data = report_dict(run)
        assert data["manifest"]["model"] == "gru"
        json.dumps(data, default=str)

    def test_cli_obs_report(self, run_log, capsys):
        from repro.cli import main

        path, _ = run_log
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epochs" in out and "stages (wall clock)" in out
        assert main(["obs", "report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["dataset"] == "etth1"

    def test_loader_tolerates_truncated_lines(self, run_log, tmp_path):
        path, _ = run_log
        broken = tmp_path / "broken.jsonl"
        broken.write_text(path.read_text() + '{"kind": "epoch", "trunc')
        run = load_run(broken)
        assert run.epochs  # valid prefix still parsed

    def test_cli_run_writes_log(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli_run.jsonl"
        assert main([
            "run", "--dataset", "etth1", "--model", "dlinear",
            "--pred-len", "4", "--epochs", "1", "--log-jsonl", str(path),
        ]) == 0
        run = load_run(path)
        assert run.manifest["model"] == "dlinear"
        assert run.epochs
