"""Tier-1 gates for the tape-free inference fast path.

Covers the contracts docs/performance.md documents:

- ``inference_mode`` / ``no_grad`` nesting semantics and restoration,
- zero tape nodes recorded inside ``inference_mode`` (counter-asserted),
- inference scan kernels agree with the taped fused kernels,
- arena / plan-cache reuse and invalidation on shape change,
- ``compute_dtype`` + ``Module.to_dtype`` float32 forecasts agree with
  float64 within the documented tolerance,
- ``predict_with_uncertainty`` recycles one Monte-Carlo sample buffer,
- the ``repro.cli bench --inference`` harness and its artifact schema.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.nn import GRUCell, LSTMCell, Module, Parameter
from repro.tensor import (
    Tensor,
    compute_dtype,
    functional as F,
    get_arena,
    get_default_dtype,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    plan_cache,
    tape_node_count,
)
from repro.training import PROFILES

RNG = np.random.default_rng(404)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _smoke_settings():
    return replace(PROFILES["tiny"], input_len=24, label_len=12, batch_size=8, n_points=400)


def _conformer_and_batch(seed: int = 0):
    from repro.perf.bench_inference import _model_and_batch

    return _model_and_batch("conformer", _smoke_settings(), seed=seed)


@pytest.mark.inference
class TestModeSemantics:
    def test_defaults(self):
        assert is_grad_enabled()
        assert not is_inference_mode()
        assert get_default_dtype() == np.dtype(np.float64)

    def test_inference_mode_disables_grad_and_restores(self):
        with inference_mode():
            assert not is_grad_enabled()
            assert is_inference_mode()
        assert is_grad_enabled()
        assert not is_inference_mode()

    def test_nested_inference_mode(self):
        with inference_mode():
            with inference_mode():
                assert is_inference_mode()
            assert is_inference_mode(), "inner exit must not end the outer block"

    def test_no_grad_inside_inference_mode(self):
        with inference_mode():
            with no_grad():
                assert not is_grad_enabled()
                assert is_inference_mode()
            assert is_inference_mode()

    def test_inference_mode_inside_no_grad(self):
        with no_grad():
            with inference_mode():
                assert is_inference_mode()
            # leaving inference_mode restores plain no_grad, not full grad
            assert not is_inference_mode()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                raise RuntimeError("boom")
        assert is_grad_enabled()
        assert not is_inference_mode()

    def test_compute_dtype_context(self):
        with compute_dtype(np.float32):
            assert get_default_dtype() == np.dtype(np.float32)
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).data.dtype == np.float64


@pytest.mark.inference
class TestZeroTapeNodes:
    def test_elementwise_chain_records_nothing(self):
        x = Tensor(RNG.normal(size=(8, 8)), requires_grad=True)
        with inference_mode():
            before = tape_node_count()
            ((x @ x).relu() + x).sum()
            assert tape_node_count() == before
        # and the counter does move outside
        before = tape_node_count()
        (x @ x).sum()
        assert tape_node_count() > before

    def test_conformer_forward_records_nothing(self):
        model, batch = _conformer_and_batch()
        x_enc, x_mark, x_dec, y_mark, _ = batch
        with inference_mode():
            before = tape_node_count()
            model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
            assert tape_node_count() == before

    def test_scan_kernels_record_nothing(self):
        gru = GRUCell(5, 7, rng=np.random.default_rng(1))
        lstm = LSTMCell(5, 7, rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(3, 9, 5)))
        with F.fused_ops(True), inference_mode():
            before = tape_node_count()
            gru(x)
            lstm(x)
            assert tape_node_count() == before


@pytest.mark.inference
class TestInferenceKernelParity:
    def test_gru_scan_matches_taped_kernel(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(3))
        x = Tensor(RNG.normal(size=(3, 9, 5)))
        with F.fused_ops(True):
            ref, ref_h = cell(x)
            with inference_mode():
                fast, fast_h = cell(x)
        np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)
        np.testing.assert_allclose(fast_h.data, ref_h.data, atol=1e-12)

    def test_lstm_scan_matches_taped_kernel(self):
        cell = LSTMCell(5, 7, rng=np.random.default_rng(4))
        x = Tensor(RNG.normal(size=(3, 9, 5)))
        with F.fused_ops(True):
            ref, (ref_h, ref_c) = cell(x)
            with inference_mode():
                fast, (fast_h, fast_c) = cell(x)
        np.testing.assert_allclose(fast.data, ref.data, atol=1e-12)
        np.testing.assert_allclose(fast_h.data, ref_h.data, atol=1e-12)
        np.testing.assert_allclose(fast_c.data, ref_c.data, atol=1e-12)

    def test_attention_zoo_matches_taped_path(self):
        from repro.nn import attention as A

        q = Tensor(RNG.normal(size=(2, 2, 24, 4)))
        k = Tensor(RNG.normal(size=(2, 2, 24, 4)))
        v = Tensor(RNG.normal(size=(2, 2, 24, 4)))
        mechanisms = [
            A.AutoCorrelation(),
            A.SlidingWindowAttention(window=4),
            A.GlobalWindowAttention(window=8, n_global=2),
        ]
        for mech in mechanisms:
            ref = mech(q, k, v).data
            with inference_mode():
                fast = mech(q, k, v).data
            np.testing.assert_allclose(fast, ref, atol=1e-12, err_msg=type(mech).__name__)

    def test_input_repr_weights_match(self):
        from repro.core.input_repr import multivariate_correlation_weights

        x = RNG.normal(size=(2, 16, 3))
        ref = multivariate_correlation_weights(x)
        with inference_mode():
            fast = multivariate_correlation_weights(x).copy()  # arena-backed
        np.testing.assert_allclose(fast, ref, atol=1e-12)


@pytest.mark.inference
class TestBufferAndPlanReuse:
    def test_arena_reuses_matching_geometry(self):
        arena = get_arena()
        a = arena.get("test.slot", (4, 5), np.float64)
        b = arena.get("test.slot", (4, 5), np.float64)
        assert a is b

    def test_arena_shape_change_reallocates(self):
        arena = get_arena()
        a = arena.get("test.shape", (4, 5), np.float64)
        b = arena.get("test.shape", (6, 5), np.float64)
        assert a is not b
        assert b.shape == (6, 5)

    def test_arena_dtype_change_reallocates(self):
        arena = get_arena()
        a = arena.get("test.dtype", (4, 5), np.float64)
        b = arena.get("test.dtype", (4, 5), np.float32)
        assert a is not b
        assert b.dtype == np.float32

    def test_scan_reuses_buffers_across_calls(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(5))
        x = Tensor(RNG.normal(size=(3, 9, 5)))
        arena = get_arena()
        with F.fused_ops(True), inference_mode():
            cell(x)  # may allocate slots
            hits_before, misses_before = arena.hits, arena.misses
            cell(x)
            assert arena.misses == misses_before, "second call must not reallocate"
            assert arena.hits > hits_before

    def test_plan_cache_invalidates_on_shape_change(self):
        from repro.nn.attention import causal_mask

        m16 = causal_mask(16)
        assert causal_mask(16) is m16  # hit: same geometry
        m24 = causal_mask(24)
        assert m24.shape == (24, 24)  # miss + rebuild: new geometry
        assert causal_mask(16) is m16  # old geometry still correct

    def test_plan_cache_explicit_invalidate(self):
        cache = plan_cache()
        cache.get(("test_plan", 8), lambda: np.zeros(8))
        assert cache.invalidate("test_plan") == 1
        assert cache.invalidate("test_plan") == 0

    def test_cached_plans_are_read_only(self):
        from repro.nn.attention import causal_mask

        mask = causal_mask(12)
        with pytest.raises(ValueError):
            mask[0, 0] = True


@pytest.mark.inference
class TestFloat32Path:
    def test_to_dtype_casts_parameters_and_buffers(self):
        class WithBuffer(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((3, 3)))
                self.table = np.ones(4)

        mod = WithBuffer()
        mod.to_dtype(np.float32)
        assert mod.weight.data.dtype == np.float32
        assert mod.table.dtype == np.float32
        mod.to_dtype(np.float64)
        assert mod.weight.data.dtype == np.float64

    def test_to_dtype_drops_stale_grads(self):
        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.weight = Parameter(np.ones((2, 2)))

        mod = Tiny()
        (mod.weight.sum()).backward()
        assert mod.weight.grad is not None
        mod.to_dtype(np.float32)
        assert mod.weight.grad is None

    def test_float32_conformer_matches_float64(self):
        model, batch = _conformer_and_batch(seed=7)
        x_enc, x_mark, x_dec, y_mark, _ = batch
        args = lambda: (Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))  # noqa: E731
        with inference_mode():
            y64, z64 = model(*args(), deterministic=True)
        model.to_dtype(np.float32)
        with inference_mode(), compute_dtype(np.float32):
            y32, z32 = model(*args(), deterministic=True)
        assert y32.data.dtype == np.float32
        # documented tolerance (docs/performance.md): 1e-4 absolute on
        # standardized series — measured agreement is ~1e-6
        np.testing.assert_allclose(y32.data, y64.data, atol=1e-4)
        np.testing.assert_allclose(z32.data, z64.data, atol=1e-4)

    def test_sanitizer_contract_follows_compute_dtype(self):
        from repro.analysis import sanitize

        with sanitize() as san:
            assert san.expected_dtype == np.dtype(np.float64)
            with compute_dtype(np.float32):
                assert san.expected_dtype == np.dtype(np.float32)
                x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
                (x * 2.0).sum().backward()  # float32 ops pass the drift check
            assert san.expected_dtype == np.dtype(np.float64)
        assert not san.findings

    def test_sanitizer_pinned_dtype_still_flags_drift(self):
        from repro.analysis import sanitize, TensorSanitizerError

        # pinning a contract disables the mode-following default: float64
        # ops must now trip the drift check
        with pytest.raises(TensorSanitizerError, match="dtype_drift"):
            with sanitize(expected_dtype=np.float32):
                x = Tensor(np.ones(3), requires_grad=True)
                (x * 2.0).sum()


@pytest.mark.inference
class TestUncertaintyBufferReuse:
    def test_predict_with_uncertainty_recycles_sample_buffer(self):
        model, batch = _conformer_and_batch(seed=3)
        x_enc, x_mark, x_dec, y_mark, _ = batch
        # other tests may have drawn MC samples with different geometry;
        # start from an empty arena so the one-slot assertion is hermetic
        get_arena().clear()
        result = model.predict_with_uncertainty(x_enc, x_mark, x_dec, y_mark, n_samples=4)
        arena = get_arena()
        misses_before = arena.misses
        again = model.predict_with_uncertainty(x_enc, x_mark, x_dec, y_mark, n_samples=4)
        sample_keys = [k for k in arena._slots if k[0] == "model.mc_samples"]
        assert len(sample_keys) == 1, "one recycled Monte-Carlo buffer expected"
        assert arena._slots[sample_keys[0]].shape[0] == 4
        assert all(np.isfinite(result["samples"]).all() for result in (result, again))
        # the second call reuses every slot the first one allocated
        assert arena.misses == misses_before
        for q in ("q0.05", "q0.25", "q0.75", "q0.95"):
            assert q in result
        # escaping arrays must not alias the arena buffer
        assert again["samples"].base is not arena._slots[sample_keys[0]]


@pytest.mark.inference
def test_bench_inference_smoke_produces_artifact(tmp_path):
    """End-to-end micro run of the inference benchmark — checks the
    artifact schema (config + all four arm timings), not wall-clock claims."""
    from repro.perf.bench_inference import ARMS, run_inference_benchmark, write_bench_json

    result = run_inference_benchmark(repeats=1, warmup=0, settings=_smoke_settings())
    path = write_bench_json(result, tmp_path / "BENCH_inference.json")
    loaded = json.loads(path.read_text())
    assert loaded["benchmark"] == "inference_forward"
    assert "config" in loaded and loaded["config"]["fast_path_dtype"] == "float32"
    assert set(loaded["models"]) == {"conformer", "gru"}
    for entry in loaded["models"].values():
        for arm in ARMS:
            assert entry[arm]["seconds_per_forward"] > 0
        assert entry["eager"]["tape_nodes_per_forward"] > 0
        assert entry["fast_path"]["tape_nodes_per_forward"] == 0
        assert entry["fast_path"]["prediction_dtype"] == "float32"
        assert entry["float32_max_abs_diff"] < 1e-4
        assert entry["speedup"] > 0
    assert loaded["speedup"] > 0


@pytest.mark.inference
def test_cli_bench_inference_smoke(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "BENCH_inference.json"
    assert main(["bench", "--inference", "--smoke", "--json", str(out_path)]) == 0
    captured = capsys.readouterr()
    assert "inference_forward" in captured.out
    loaded = json.loads(out_path.read_text())
    assert loaded["benchmark"] == "inference_forward"
    assert "fast_path" in loaded["models"]["conformer"]
