"""Tests for walk-forward backtesting."""

import numpy as np
import pytest

from repro.baselines import GRUForecaster
from repro.data import load_dataset
from repro.training.backtest import BacktestFold, BacktestReport, walk_forward


def gru_factory(n_dims, pred_len):
    return GRUForecaster(enc_in=n_dims, c_out=n_dims, pred_len=pred_len,
                         hidden_size=8, d_time=4, dropout=0.0, seed=0)


class TestWalkForward:
    def test_produces_folds(self):
        ds = load_dataset("etth1", n_points=600)
        report = walk_forward(ds, gru_factory, input_len=16, pred_len=4,
                              n_folds=3, max_epochs=1, stride=8)
        assert len(report.folds) == 3
        for fold in report.folds:
            assert fold.metrics["mse"] > 0
        # origins strictly increase
        origins = [f.origin for f in report.folds]
        assert origins == sorted(origins) and len(set(origins)) == 3

    def test_summary_keys(self):
        ds = load_dataset("etth1", n_points=600)
        report = walk_forward(ds, gru_factory, input_len=16, pred_len=4,
                              n_folds=2, max_epochs=1, stride=8)
        summary = report.summary()
        assert summary["n_folds"] == 2
        assert summary["mse_worst"] >= summary["mse_mean"]
        assert summary["mse_std"] >= 0

    def test_degradation_slope(self):
        report = BacktestReport(folds=[
            BacktestFold(0, {"mse": 1.0, "mae": 0.5}),
            BacktestFold(1, {"mse": 2.0, "mae": 0.7}),
            BacktestFold(2, {"mse": 3.0, "mae": 0.9}),
        ])
        assert report.degradation() == pytest.approx(1.0)

    def test_degradation_single_fold(self):
        report = BacktestReport(folds=[BacktestFold(0, {"mse": 1.0, "mae": 0.5})])
        assert report.degradation() == 0.0

    def test_series_too_short(self):
        ds = load_dataset("etth1", n_points=100)
        with pytest.raises(ValueError):
            walk_forward(ds, gru_factory, input_len=16, pred_len=4,
                         n_folds=5, eval_span=50, max_epochs=1)

    def test_fresh_model_each_fold(self):
        """The factory must be invoked once per fold."""
        calls = []

        def counting_factory(n_dims, pred_len):
            calls.append(1)
            return gru_factory(n_dims, pred_len)

        ds = load_dataset("etth1", n_points=600)
        walk_forward(ds, counting_factory, input_len=16, pred_len=4,
                     n_folds=2, max_epochs=1, stride=8)
        assert len(calls) == 2

    def test_deterministic(self):
        ds = load_dataset("etth1", n_points=600)
        r1 = walk_forward(ds, gru_factory, input_len=16, pred_len=4, n_folds=2, max_epochs=1, stride=8, seed=5)
        r2 = walk_forward(ds, gru_factory, input_len=16, pred_len=4, n_folds=2, max_epochs=1, stride=8, seed=5)
        np.testing.assert_allclose(r1.metric("mse"), r2.metric("mse"))
