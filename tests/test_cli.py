"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestCLI:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ["etth1", "ettm1", "ecl", "weather", "exchange", "wind", "airdelay"]:
            assert name in out

    def test_models_lists_conformer(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "conformer" in out and "informer" in out

    def test_run_default(self, capsys):
        assert main(["run", "--dataset", "etth1", "--model", "gru", "--pred-len", "4", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "mse=" in out and "gru" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["run", "--dataset", "etth1", "--model", "gru", "--pred-len", "4", "--epochs", "1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gru"
        assert payload["mse"] > 0
        assert len(payload["per_seed"]) == 1

    def test_run_with_overrides(self, capsys):
        assert main(
            [
                "run",
                "--model",
                "conformer",
                "--pred-len",
                "4",
                "--epochs",
                "1",
                "--model-overrides",
                '{"flow_mode": "none"}',
            ]
        ) == 0
        assert "conformer" in capsys.readouterr().out

    def test_run_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "prophet"])

    def test_efficiency(self, capsys):
        assert main(["efficiency", "--lengths", "16,32", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "sliding_window" in out and "slope" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--param", "window", "--values", "1,2", "--pred-len", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + 2 rows

    def test_diagnose(self, capsys):
        assert main(["diagnose", "--n-points", "600"]) == 0
        out = capsys.readouterr().out
        assert "unit-root" in out and "exchange" in out

    def test_backtest(self, capsys):
        assert main(["backtest", "--dataset", "etth1", "--model", "gru", "--pred-len", "4", "--folds", "2"]) == 0
        out = capsys.readouterr().out
        assert "degradation slope" in out and "fold" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestLintCommand:
    def test_lint_src_json_smoke(self, capsys):
        """The shipped tree is clean: exit 0 and an empty JSON report."""
        assert main(["lint", SRC, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["total"] == 0
        assert payload["files_scanned"] > 50

    def test_lint_reports_violations_with_nonzero_exit(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(cache={}):\n    print(cache)\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"no-mutable-default": 1, "no-print": 1}

    def test_run_with_sanitizer_clean(self, capsys):
        assert main(
            ["run", "--dataset", "etth1", "--model", "gru", "--pred-len", "4", "--epochs", "1", "--sanitize"]
        ) == 0
        captured = capsys.readouterr()
        assert "mse=" in captured.out
        assert "sanitizer: clean" in captured.err
