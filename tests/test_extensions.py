"""Tests for the extension modules: gradcheck, dataset IO, grid search,
DeepAR, and DLinear."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import DeepAR, DLinear
from repro.data import load_dataset
from repro.data.io import export_csv, load_csv, load_saved_dataset, save_dataset
from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck, numerical_gradient
from repro.training import ExperimentSettings, run_experiment
from repro.training.tuning import grid_search

RNG = np.random.default_rng(150)

FAST = ExperimentSettings(
    input_len=16,
    label_len=8,
    d_model=8,
    n_heads=2,
    e_layers=1,
    d_layers=1,
    d_ff=16,
    n_points=400,
    max_epochs=1,
    batch_size=8,
    window_stride=16,
    eval_stride=16,
    max_train_windows=16,
    max_eval_windows=8,
    moving_avg=5,
)


class TestGradcheck:
    def test_passes_on_correct_gradients(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda: (x * x).sum(), [x])

    def test_detects_missing_gradient(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        y = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        with pytest.raises(AssertionError):
            gradcheck(lambda: (x * 2).sum(), [x, y])  # y unused -> no grad

    def test_raise_on_fail_false(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        y = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        assert gradcheck(lambda: (x * 2).sum(), [x, y], raise_on_fail=False) is False

    def test_rejects_nonscalar(self):
        x = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(lambda: x * 2, [x])

    def test_numerical_gradient_linear(self):
        x = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        w = np.array([1.0, -2.0, 3.0, 0.5])
        grad = numerical_gradient(lambda: (x * Tensor(w)).sum(), x)
        np.testing.assert_allclose(grad, w, atol=1e-6)


class TestDatasetIO:
    def test_npz_roundtrip(self, tmp_path):
        ds = load_dataset("etth1", n_points=200)
        path = str(tmp_path / "etth1.npz")
        save_dataset(ds, path)
        loaded = load_saved_dataset(path)
        np.testing.assert_allclose(loaded.values, ds.values)
        assert loaded.name == ds.name
        assert loaded.target_index == ds.target_index
        np.testing.assert_array_equal(
            loaded.timestamps.astype("datetime64[s]"), ds.timestamps.astype("datetime64[s]")
        )

    def test_csv_roundtrip(self, tmp_path):
        ds = load_dataset("exchange", n_points=100)
        path = str(tmp_path / "exchange.csv")
        export_csv(ds, path)
        loaded = load_csv(path, freq="d", split_ratios=ds.split_ratios)
        np.testing.assert_allclose(loaded.values, ds.values, rtol=1e-9)
        assert loaded.n_dims == ds.n_dims
        assert loaded.target_index == ds.n_dims - 1  # default: last column

    def test_csv_named_target(self, tmp_path):
        ds = load_dataset("etth1", n_points=50)
        path = str(tmp_path / "ett.csv")
        export_csv(ds, path, column_names=["HUFL", "HULL", "MUFL", "MULL", "LUFL", "LULL", "OT"])
        loaded = load_csv(path, target="OT")
        assert loaded.target_index == 6

    def test_csv_unknown_target(self, tmp_path):
        ds = load_dataset("etth1", n_points=50)
        path = str(tmp_path / "ett.csv")
        export_csv(ds, path)
        with pytest.raises(ValueError):
            load_csv(path, target="OT")

    def test_csv_missing_date_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(str(path))

    def test_csv_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("date,a,b\n2020-01-01 00:00:00,1.0\n")
        with pytest.raises(ValueError):
            load_csv(str(path))

    def test_csv_wrong_column_count(self, tmp_path):
        ds = load_dataset("etth1", n_points=50)
        with pytest.raises(ValueError):
            export_csv(ds, str(tmp_path / "x.csv"), column_names=["only-one"])

    def test_loaded_csv_usable_in_experiment(self, tmp_path):
        """A CSV round-tripped dataset slots into the windowing pipeline."""
        from repro.training import make_loaders

        ds = load_dataset("etth1", n_points=300)
        path = str(tmp_path / "ett.csv")
        export_csv(ds, path)
        loaded = load_csv(path, freq="h")
        train, val, test = make_loaders(loaded, FAST, pred_len=4)
        batch = next(iter(train))
        assert batch[0].shape[1:] == (FAST.input_len, ds.n_dims)


class TestGridSearch:
    def test_selects_by_validation(self):
        result = grid_search(
            "etth1", "gru", pred_len=4,
            param_grid={"hidden_size": [4, 8]},
            settings=FAST,
        )
        assert len(result.trials) == 2
        best = result.best
        assert best.val_loss == min(t.val_loss for t in result.trials)
        assert best.test_metrics is not None and best.test_metrics["mse"] > 0
        # non-winners were not test-evaluated (no leakage)
        losers = [t for t in result.trials if t is not best]
        assert all(t.test_metrics is None for t in losers)

    def test_settings_level_keys(self):
        result = grid_search(
            "etth1", "gru", pred_len=4,
            param_grid={"learning_rate": [1e-3, 1e-2]},
            settings=FAST,
        )
        assert len(result.trials) == 2
        assert {t.params["learning_rate"] for t in result.trials} == {1e-3, 1e-2}

    def test_cartesian_product(self):
        result = grid_search(
            "etth1", "gru", pred_len=4,
            param_grid={"hidden_size": [4, 8], "num_layers": [1, 2]},
            settings=FAST, evaluate_all_on_test=True,
        )
        assert len(result.trials) == 4
        assert all(t.test_metrics is not None for t in result.trials)

    def test_table_rendering(self):
        result = grid_search("etth1", "gru", pred_len=4, param_grid={"hidden_size": [4]}, settings=FAST)
        text = result.table()
        assert "val" in text and "hidden_size" in text

    def test_empty_search_best_raises(self):
        from repro.training.tuning import SearchResult

        with pytest.raises(RuntimeError):
            SearchResult().best


class TestDeepAR:
    def _inputs(self, batch=2, enc_in=3, input_len=12, label_len=6, pred_len=4, d_time=2):
        return (
            Tensor(RNG.normal(size=(batch, input_len, enc_in))),
            Tensor(RNG.normal(size=(batch, input_len, d_time))),
            Tensor(RNG.normal(size=(batch, label_len + pred_len, enc_in))),
            Tensor(RNG.normal(size=(batch, label_len + pred_len, d_time))),
        )

    def make(self):
        return DeepAR(enc_in=3, c_out=3, pred_len=4, hidden_size=8, d_time=2, seed=0)

    def test_forward_shape(self):
        model = self.make()
        assert model(*self._inputs()).shape == (2, 4, 3)

    def test_nll_loss_finite_and_trains(self):
        from repro.optim import Adam

        model = self.make()
        inputs = self._inputs()
        target = Tensor(RNG.normal(size=(2, 4, 3)))
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(6):
            opt.zero_grad()
            out = model(*inputs)
            loss = model.compute_loss(out, target)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert np.isfinite(loss.item()) and loss.item() < first

    def test_sampling_paths(self):
        model = self.make()
        paths = model.sample_paths(*self._inputs(), n_samples=9)
        assert paths.shape == (9, 2, 4, 3)
        assert paths.std(axis=0).mean() > 0

    def test_registered_in_experiment_runner(self):
        result = run_experiment("etth1", "deepar", pred_len=4, settings=FAST)
        assert np.isfinite(result.mse)


class TestDLinear:
    def _inputs(self, batch=2, enc_in=3, input_len=16, pred_len=4):
        return (
            Tensor(RNG.normal(size=(batch, input_len, enc_in))),
            Tensor(RNG.normal(size=(batch, input_len, 2))),
            Tensor(RNG.normal(size=(batch, 8 + pred_len, enc_in))),
            Tensor(RNG.normal(size=(batch, 8 + pred_len, 2))),
        )

    def test_shape(self):
        model = DLinear(enc_in=3, c_out=3, input_len=16, pred_len=4, moving_avg=5)
        assert model(*self._inputs()).shape == (2, 4, 3)

    def test_individual_mode(self):
        model = DLinear(enc_in=3, c_out=3, input_len=16, pred_len=4, moving_avg=5, individual=True)
        assert model(*self._inputs()).shape == (2, 4, 3)

    def test_learns_linear_trend_fast(self):
        """DLinear should nail a pure linear trend in a few steps."""
        from repro.optim import Adam

        t = np.arange(200, dtype=float)
        series = (0.05 * t)[:, None]
        x = np.stack([series[i : i + 16] for i in range(100)])
        y = np.stack([series[i + 16 : i + 20] for i in range(100)])
        model = DLinear(enc_in=1, c_out=1, input_len=16, pred_len=4, moving_avg=5)
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(200):
            opt.zero_grad()
            out = model(Tensor(x), None, None, None)
            loss = model.compute_loss(out, Tensor(y))
            loss.backward()
            opt.step()
        assert loss.item() < 0.01

    def test_registered_in_experiment_runner(self):
        result = run_experiment("etth1", "dlinear", pred_len=4, settings=FAST)
        assert np.isfinite(result.mse)
