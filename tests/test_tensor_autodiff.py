"""Unit tests for the autodiff engine: every op vs finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad
from tests.helpers import check_gradients

RNG = np.random.default_rng(7)


def randt(*shape, scale=1.0):
    return Tensor(RNG.normal(0.0, scale, size=shape), requires_grad=True)


class TestArithmetic:
    def test_add_broadcast(self):
        a, b = randt(3, 4), randt(4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub(self):
        a, b = randt(2, 3), randt(2, 3)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = randt(2, 3, 4), randt(1, 3, 1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a = randt(3, 3)
        b = Tensor(RNG.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_neg_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda: (-(a**3)).sum(), [a])

    def test_scalar_ops(self):
        a = randt(3)
        check_gradients(lambda: (2.0 * a + 1.0 - a / 3.0).sum(), [a])

    def test_rsub_rdiv(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (3,)), requires_grad=True)
        check_gradients(lambda: (1.0 - a).sum() + (2.0 / a).sum(), [a])


class TestMatmul:
    def test_matmul_2d(self):
        a, b = randt(3, 4), randt(4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = randt(2, 3, 4), randt(2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self):
        a, b = randt(2, 3, 4), randt(4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestReductions:
    def test_sum_axis(self):
        a = randt(3, 4, 5)
        check_gradients(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_keepdims(self):
        a = randt(3, 4)
        check_gradients(lambda: (a.sum(axis=0, keepdims=True) * a).sum(), [a])

    def test_mean(self):
        a = randt(4, 5)
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis(self):
        a = randt(2, 6)
        check_gradients(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_var(self):
        a = randt(3, 7)
        check_gradients(lambda: a.var(axis=1).sum(), [a])

    def test_max(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_min(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        check_gradients(lambda: a.min(axis=0).sum(), [a])


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        [F.exp, F.tanh, F.sigmoid, F.relu, F.gelu, F.elu, F.softplus, F.erf, F.leaky_relu],
    )
    def test_activation_gradients(self, op):
        a = randt(4, 3, scale=0.8)
        # nudge away from relu kink at 0
        a.data[np.abs(a.data) < 1e-3] += 0.01
        check_gradients(lambda: op(a).sum(), [a])

    def test_log_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 3.0, (5,)), requires_grad=True)
        check_gradients(lambda: (F.log(a) + F.sqrt(a)).sum(), [a])

    def test_abs(self):
        a = randt(6)
        a.data[np.abs(a.data) < 1e-3] += 0.01
        check_gradients(lambda: a.abs().sum(), [a])

    def test_clip(self):
        a = randt(8)
        a.data[np.abs(np.abs(a.data) - 0.5) < 1e-3] += 0.01
        check_gradients(lambda: a.clip(-0.5, 0.5).sum(), [a])

    def test_maximum(self):
        a, b = randt(5), randt(5)
        b.data += 0.05  # avoid exact ties
        check_gradients(lambda: F.maximum(a, b).sum(), [a, b])

    def test_where(self):
        a, b = randt(5), randt(5)
        cond = RNG.random(5) > 0.5
        check_gradients(lambda: F.where(cond, a, b).sum(), [a, b])


class TestSoftmax:
    def test_softmax_grad(self):
        a = randt(3, 6)
        w = Tensor(RNG.normal(size=(3, 6)))
        check_gradients(lambda: (F.softmax(a, axis=-1) * w).sum(), [a])

    def test_softmax_rows_sum_to_one(self):
        a = randt(4, 9)
        out = F.softmax(a, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_log_softmax_grad(self):
        a = randt(2, 5)
        w = Tensor(RNG.normal(size=(2, 5)))
        check_gradients(lambda: (F.log_softmax(a, axis=-1) * w).sum(), [a])

    def test_softmax_stability(self):
        a = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = F.softmax(a, axis=-1)
        assert np.all(np.isfinite(out.data))


class TestShapeOps:
    def test_reshape(self):
        a = randt(2, 6)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self):
        a = randt(2, 3, 4)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_swapaxes(self):
        a = randt(2, 3, 4)
        check_gradients(lambda: (a.swapaxes(1, 2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = randt(5, 4)
        check_gradients(lambda: (a[1:4, ::2] ** 2).sum(), [a])

    def test_getitem_fancy(self):
        a = randt(6, 3)
        idx = np.array([0, 2, 2, 5])  # repeated index must accumulate
        check_gradients(lambda: (a[idx] ** 2).sum(), [a])

    def test_concat(self):
        a, b = randt(2, 3), randt(2, 5)
        check_gradients(lambda: (F.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = randt(3, 4), randt(3, 4)
        check_gradients(lambda: (F.stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_split_roundtrip(self):
        a = randt(4, 6)
        parts = F.split(a, 3, axis=1)
        assert len(parts) == 3
        check_gradients(lambda: sum((p**2).sum() for p in F.split(a, 3, axis=1)), [a])

    def test_expand_squeeze(self):
        a = randt(3, 4)
        check_gradients(lambda: (a.expand_dims(1).squeeze(1) ** 2).sum(), [a])

    def test_broadcast_to(self):
        a = randt(1, 4)
        check_gradients(lambda: (a.broadcast_to((3, 4)) ** 2).sum(), [a])


class TestPadding:
    @pytest.mark.parametrize("mode", ["constant", "edge", "wrap"])
    def test_pad_grad(self, mode):
        a = randt(2, 5, 3)
        check_gradients(lambda: (F.pad(a, ((0, 0), (2, 1), (0, 0)), mode=mode) ** 2).sum(), [a])

    def test_pad_shape(self):
        a = randt(2, 5, 3)
        out = F.pad(a, ((0, 0), (2, 3), (1, 0)))
        assert out.shape == (2, 10, 4)


class TestConvPool:
    def test_conv1d_grad(self):
        x, w, b = randt(2, 7, 3), randt(3, 3, 4), randt(4)
        check_gradients(lambda: (F.conv1d(x, w, b, padding=1) ** 2).sum(), [x, w, b])

    def test_conv1d_circular(self):
        x, w = randt(1, 6, 2), randt(3, 2, 2)
        out = F.conv1d(x, w, padding=1, padding_mode="wrap")
        assert out.shape == (1, 6, 2)
        check_gradients(lambda: (F.conv1d(x, w, padding=1, padding_mode="wrap") ** 2).sum(), [x, w])

    def test_conv1d_matches_manual(self):
        x = Tensor(np.arange(5, dtype=float).reshape(1, 5, 1))
        w = Tensor(np.ones((3, 1, 1)))
        out = F.conv1d(x, w, padding=0)
        np.testing.assert_allclose(out.data.ravel(), [3.0, 6.0, 9.0])

    def test_avg_pool_keeps_length(self):
        x = randt(2, 9, 3)
        out = F.avg_pool1d(x, kernel=5)
        assert out.shape == (2, 9, 3)

    def test_avg_pool_grad(self):
        x = randt(1, 7, 2)
        check_gradients(lambda: (F.avg_pool1d(x, kernel=3) ** 2).sum(), [x])

    def test_avg_pool_constant_series(self):
        x = Tensor(np.full((1, 8, 1), 2.5))
        out = F.avg_pool1d(x, kernel=5)
        np.testing.assert_allclose(out.data, 2.5)

    def test_max_pool(self):
        x = randt(2, 8, 3)
        out = F.max_pool1d(x, kernel=2, stride=2)
        assert out.shape == (2, 4, 3)
        check_gradients(lambda: (F.max_pool1d(x, kernel=2, stride=2) ** 2).sum(), [x])


class TestLosses:
    def test_mse(self):
        pred, target = randt(4, 3), randt(4, 3)
        loss = F.mse_loss(pred, target)
        expected = np.mean((pred.data - target.data) ** 2)
        assert loss.item() == pytest.approx(expected)
        check_gradients(lambda: F.mse_loss(pred, target), [pred])

    def test_mae(self):
        pred, target = randt(4, 3), randt(4, 3)
        loss = F.mae_loss(pred, target)
        assert loss.item() == pytest.approx(np.mean(np.abs(pred.data - target.data)))

    def test_huber_between_mse_and_mae_shape(self):
        pred, target = randt(10), randt(10)
        check_gradients(lambda: F.huber_loss(pred, target, delta=0.7), [pred])


class TestAutodiffMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # dy/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_requires_scalar(self):
        a = randt(3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_seed_grad(self):
        a = randt(3)
        out = a * 3.0
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, 3.0 * np.ones(3))

    def test_no_grad_blocks_tape(self):
        a = randt(3)
        with no_grad():
            out = a * 2 + 1
        assert not out.requires_grad
        assert out._parents == ()

    def test_detach(self):
        a = randt(3)
        d = a.detach()
        out = (d * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = randt(3)
        (a.sum()).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 4
        out = (b + c).sum()  # d/da = 6
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 0.001
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            a.backward()
