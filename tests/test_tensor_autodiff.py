"""Unit tests for the autodiff engine: every op vs finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad
from tests.helpers import check_gradients

RNG = np.random.default_rng(7)


def randt(*shape, scale=1.0):
    return Tensor(RNG.normal(0.0, scale, size=shape), requires_grad=True)


class TestArithmetic:
    def test_add_broadcast(self):
        a, b = randt(3, 4), randt(4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub(self):
        a, b = randt(2, 3), randt(2, 3)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = randt(2, 3, 4), randt(1, 3, 1)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a = randt(3, 3)
        b = Tensor(RNG.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_neg_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda: (-(a**3)).sum(), [a])

    def test_scalar_ops(self):
        a = randt(3)
        check_gradients(lambda: (2.0 * a + 1.0 - a / 3.0).sum(), [a])

    def test_rsub_rdiv(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (3,)), requires_grad=True)
        check_gradients(lambda: (1.0 - a).sum() + (2.0 / a).sum(), [a])


class TestMatmul:
    def test_matmul_2d(self):
        a, b = randt(3, 4), randt(4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = randt(2, 3, 4), randt(2, 4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self):
        a, b = randt(2, 3, 4), randt(4, 5)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestReductions:
    def test_sum_axis(self):
        a = randt(3, 4, 5)
        check_gradients(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_keepdims(self):
        a = randt(3, 4)
        check_gradients(lambda: (a.sum(axis=0, keepdims=True) * a).sum(), [a])

    def test_mean(self):
        a = randt(4, 5)
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis(self):
        a = randt(2, 6)
        check_gradients(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_var(self):
        a = randt(3, 7)
        check_gradients(lambda: a.var(axis=1).sum(), [a])

    def test_max(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_min(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        check_gradients(lambda: a.min(axis=0).sum(), [a])


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        [F.exp, F.tanh, F.sigmoid, F.relu, F.gelu, F.elu, F.softplus, F.erf, F.leaky_relu],
    )
    def test_activation_gradients(self, op):
        a = randt(4, 3, scale=0.8)
        # nudge away from relu kink at 0
        a.data[np.abs(a.data) < 1e-3] += 0.01
        check_gradients(lambda: op(a).sum(), [a])

    def test_log_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 3.0, (5,)), requires_grad=True)
        check_gradients(lambda: (F.log(a) + F.sqrt(a)).sum(), [a])

    def test_abs(self):
        a = randt(6)
        a.data[np.abs(a.data) < 1e-3] += 0.01
        check_gradients(lambda: a.abs().sum(), [a])

    def test_clip(self):
        a = randt(8)
        a.data[np.abs(np.abs(a.data) - 0.5) < 1e-3] += 0.01
        check_gradients(lambda: a.clip(-0.5, 0.5).sum(), [a])

    def test_maximum(self):
        a, b = randt(5), randt(5)
        b.data += 0.05  # avoid exact ties
        check_gradients(lambda: F.maximum(a, b).sum(), [a, b])

    def test_where(self):
        a, b = randt(5), randt(5)
        cond = RNG.random(5) > 0.5
        check_gradients(lambda: F.where(cond, a, b).sum(), [a, b])


class TestSoftmax:
    def test_softmax_grad(self):
        a = randt(3, 6)
        w = Tensor(RNG.normal(size=(3, 6)))
        check_gradients(lambda: (F.softmax(a, axis=-1) * w).sum(), [a])

    def test_softmax_rows_sum_to_one(self):
        a = randt(4, 9)
        out = F.softmax(a, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_log_softmax_grad(self):
        a = randt(2, 5)
        w = Tensor(RNG.normal(size=(2, 5)))
        check_gradients(lambda: (F.log_softmax(a, axis=-1) * w).sum(), [a])

    def test_softmax_stability(self):
        a = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = F.softmax(a, axis=-1)
        assert np.all(np.isfinite(out.data))


class TestShapeOps:
    def test_reshape(self):
        a = randt(2, 6)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self):
        a = randt(2, 3, 4)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_swapaxes(self):
        a = randt(2, 3, 4)
        check_gradients(lambda: (a.swapaxes(1, 2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = randt(5, 4)
        check_gradients(lambda: (a[1:4, ::2] ** 2).sum(), [a])

    def test_getitem_fancy(self):
        a = randt(6, 3)
        idx = np.array([0, 2, 2, 5])  # repeated index must accumulate
        check_gradients(lambda: (a[idx] ** 2).sum(), [a])

    def test_concat(self):
        a, b = randt(2, 3), randt(2, 5)
        check_gradients(lambda: (F.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = randt(3, 4), randt(3, 4)
        check_gradients(lambda: (F.stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_split_roundtrip(self):
        a = randt(4, 6)
        parts = F.split(a, 3, axis=1)
        assert len(parts) == 3
        check_gradients(lambda: sum((p**2).sum() for p in F.split(a, 3, axis=1)), [a])

    def test_expand_squeeze(self):
        a = randt(3, 4)
        check_gradients(lambda: (a.expand_dims(1).squeeze(1) ** 2).sum(), [a])

    def test_broadcast_to(self):
        a = randt(1, 4)
        check_gradients(lambda: (a.broadcast_to((3, 4)) ** 2).sum(), [a])


class TestPadding:
    @pytest.mark.parametrize("mode", ["constant", "edge", "wrap"])
    def test_pad_grad(self, mode):
        a = randt(2, 5, 3)
        check_gradients(lambda: (F.pad(a, ((0, 0), (2, 1), (0, 0)), mode=mode) ** 2).sum(), [a])

    def test_pad_shape(self):
        a = randt(2, 5, 3)
        out = F.pad(a, ((0, 0), (2, 3), (1, 0)))
        assert out.shape == (2, 10, 4)


class TestConvPool:
    def test_conv1d_grad(self):
        x, w, b = randt(2, 7, 3), randt(3, 3, 4), randt(4)
        check_gradients(lambda: (F.conv1d(x, w, b, padding=1) ** 2).sum(), [x, w, b])

    def test_conv1d_circular(self):
        x, w = randt(1, 6, 2), randt(3, 2, 2)
        out = F.conv1d(x, w, padding=1, padding_mode="wrap")
        assert out.shape == (1, 6, 2)
        check_gradients(lambda: (F.conv1d(x, w, padding=1, padding_mode="wrap") ** 2).sum(), [x, w])

    def test_conv1d_matches_manual(self):
        x = Tensor(np.arange(5, dtype=float).reshape(1, 5, 1))
        w = Tensor(np.ones((3, 1, 1)))
        out = F.conv1d(x, w, padding=0)
        np.testing.assert_allclose(out.data.ravel(), [3.0, 6.0, 9.0])

    def test_avg_pool_keeps_length(self):
        x = randt(2, 9, 3)
        out = F.avg_pool1d(x, kernel=5)
        assert out.shape == (2, 9, 3)

    def test_avg_pool_grad(self):
        x = randt(1, 7, 2)
        check_gradients(lambda: (F.avg_pool1d(x, kernel=3) ** 2).sum(), [x])

    def test_avg_pool_constant_series(self):
        x = Tensor(np.full((1, 8, 1), 2.5))
        out = F.avg_pool1d(x, kernel=5)
        np.testing.assert_allclose(out.data, 2.5)

    def test_max_pool(self):
        x = randt(2, 8, 3)
        out = F.max_pool1d(x, kernel=2, stride=2)
        assert out.shape == (2, 4, 3)
        check_gradients(lambda: (F.max_pool1d(x, kernel=2, stride=2) ** 2).sum(), [x])


class TestLosses:
    def test_mse(self):
        pred, target = randt(4, 3), randt(4, 3)
        loss = F.mse_loss(pred, target)
        expected = np.mean((pred.data - target.data) ** 2)
        assert loss.item() == pytest.approx(expected)
        check_gradients(lambda: F.mse_loss(pred, target), [pred])

    def test_mae(self):
        pred, target = randt(4, 3), randt(4, 3)
        loss = F.mae_loss(pred, target)
        assert loss.item() == pytest.approx(np.mean(np.abs(pred.data - target.data)))

    def test_huber_between_mse_and_mae_shape(self):
        pred, target = randt(10), randt(10)
        check_gradients(lambda: F.huber_loss(pred, target, delta=0.7), [pred])


class TestEinsum:
    def test_matmul_pattern(self):
        a, b = randt(3, 4), randt(4, 5)
        check_gradients(lambda: (F.einsum("ij,jk->ik", a, b) ** 2).sum(), [a, b])
        np.testing.assert_allclose(F.einsum("ij,jk->ik", a, b).data, a.data @ b.data)

    def test_attention_score_pattern(self):
        q, k = randt(2, 2, 5, 3), randt(2, 2, 5, 4, 3)
        check_gradients(lambda: (F.einsum("bhld,bhlwd->bhlw", q, k) ** 2).sum(), [q, k])

    def test_attention_output_pattern(self):
        w, v = randt(2, 2, 5, 4), randt(2, 2, 5, 4, 3)
        check_gradients(lambda: (F.einsum("bhlw,bhlwd->bhld", w, v) ** 2).sum(), [w, v])

    def test_free_summed_index(self):
        # 'j' is summed over a alone: the backward must broadcast against ones
        a = randt(3, 4)
        check_gradients(lambda: (F.einsum("ij->i", a) ** 2).sum(), [a])

    def test_implicit_output(self):
        a, b = randt(3, 4), randt(4, 5)
        np.testing.assert_allclose(F.einsum("ij,jk", a, b).data, np.einsum("ij,jk", a.data, b.data))
        check_gradients(lambda: (F.einsum("ij,jk", a, b) ** 2).sum(), [a, b])

    def test_three_operands(self):
        a, b, c = randt(3, 4), randt(4, 5), randt(5, 2)
        check_gradients(lambda: (F.einsum("ij,jk,kl->il", a, b, c) ** 2).sum(), [a, b, c])

    def test_rejects_traces_and_ellipsis(self):
        a = randt(3, 3)
        with pytest.raises(NotImplementedError):
            F.einsum("ii->i", a)
        with pytest.raises(NotImplementedError):
            F.einsum("...i->...", a)


class TestSoftmaxMasked:
    def test_none_mask_is_softmax(self):
        a = randt(3, 5)
        np.testing.assert_allclose(F.softmax_masked(a, None).data, F.softmax(a, axis=-1).data)

    def test_masked_positions_get_zero_weight(self):
        a = randt(4, 6)
        mask = RNG.random((4, 6)) > 0.5
        mask[:, 0] = False  # keep every row alive
        out = F.softmax_masked(a, mask)
        assert np.all(out.data[mask] == 0.0)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_gradcheck_with_mask(self):
        a = randt(3, 6)
        mask = RNG.random((3, 6)) > 0.5
        mask[:, 2] = False
        w = Tensor(RNG.normal(size=(3, 6)))
        check_gradients(lambda: (F.softmax_masked(a, mask) * w).sum(), [a])

    def test_gradcheck_broadcast_mask(self):
        # (L, w) mask broadcasting over (B, H, L, w) scores — the attention case
        a = randt(2, 2, 4, 3)
        mask = RNG.random((4, 3)) > 0.6
        w = Tensor(RNG.normal(size=(2, 2, 4, 3)))
        check_gradients(lambda: (F.softmax_masked(a, mask) * w).sum(), [a])

    def test_matches_neg_inf_composition(self):
        a = randt(2, 5, 7)
        mask = RNG.random((5, 7)) > 0.5
        mask[:, 0] = False
        fused = F.softmax_masked(a, mask)
        big_neg = Tensor(np.full(a.shape, -1e9))
        reference = F.softmax(F.where(np.broadcast_to(mask, a.shape), big_neg, a), axis=-1)
        np.testing.assert_allclose(fused.data, reference.data, atol=1e-9)

    def test_all_masked_row_uniform_zero_grad(self):
        a = randt(3, 4)
        mask = np.zeros((3, 4), dtype=bool)
        mask[1] = True  # row 1 fully masked
        w = Tensor(RNG.normal(size=(3, 4)))
        out = F.softmax_masked(a, mask)
        np.testing.assert_allclose(out.data[1], 0.25)
        (out * w).sum().backward()
        np.testing.assert_allclose(a.grad[1], 0.0)
        a.zero_grad()
        check_gradients(lambda: (F.softmax_masked(a, mask) * w).sum(), [a])

    def test_extreme_masked_values_stay_stable(self):
        # huge masked scores must not poison the max-shift or overflow exp
        data = np.array([[1.0, 2.0, 1000.0], [1000.0, 0.5, -0.5]])
        mask = np.array([[False, False, True], [True, False, False]])
        out = F.softmax_masked(Tensor(data), mask)
        assert np.all(np.isfinite(out.data))
        assert np.all(out.data[mask] == 0.0)


class TestFusedRecurrent:
    HIDDEN = 4
    BATCH = 3

    def _gru_params(self):
        return (
            randt(self.BATCH, 3 * self.HIDDEN),
            randt(self.BATCH, self.HIDDEN),
            randt(self.HIDDEN, 3 * self.HIDDEN, scale=0.5),
            randt(3 * self.HIDDEN, scale=0.3),
        )

    def test_gru_step_gradcheck(self):
        xg, h, whh, bhh = self._gru_params()
        check_gradients(lambda: (F.gru_step(xg, h, whh, bhh) ** 2).sum(), [xg, h, whh, bhh])

    def test_gru_step_is_single_tape_node(self):
        xg, h, whh, bhh = self._gru_params()
        out = F.gru_step(xg, h, whh, bhh)
        assert out._op == "gru_step"
        assert out._parents == (xg, h, whh, bhh)

    def test_lstm_step_gradcheck(self):
        xg = randt(self.BATCH, 4 * self.HIDDEN)
        h, c = randt(self.BATCH, self.HIDDEN), randt(self.BATCH, self.HIDDEN)
        whh = randt(self.HIDDEN, 4 * self.HIDDEN, scale=0.5)
        bhh = randt(4 * self.HIDDEN, scale=0.3)
        check_gradients(lambda: (F.lstm_step(xg, h, c, whh, bhh) ** 2).sum(), [xg, h, c, whh, bhh])

    def test_gru_sequence_gradcheck(self):
        length = 5
        xp = randt(self.BATCH, length, 3 * self.HIDDEN)
        h0 = randt(self.BATCH, self.HIDDEN)
        whh = randt(self.HIDDEN, 3 * self.HIDDEN, scale=0.5)
        bhh = randt(3 * self.HIDDEN, scale=0.3)
        check_gradients(lambda: (F.gru_sequence(xp, h0, whh, bhh) ** 2).sum(), [xp, h0, whh, bhh])

    def test_lstm_sequence_gradcheck(self):
        length = 5
        xp = randt(self.BATCH, length, 4 * self.HIDDEN)
        h0, c0 = randt(self.BATCH, self.HIDDEN), randt(self.BATCH, self.HIDDEN)
        whh = randt(self.HIDDEN, 4 * self.HIDDEN, scale=0.5)
        bhh = randt(4 * self.HIDDEN, scale=0.3)
        check_gradients(
            lambda: (F.lstm_sequence(xp, h0, c0, whh, bhh) ** 2).sum(), [xp, h0, c0, whh, bhh]
        )

    def test_gru_sequence_matches_unrolled_steps(self):
        length = 4
        xp = randt(self.BATCH, length, 3 * self.HIDDEN)
        h0 = randt(self.BATCH, self.HIDDEN)
        whh = randt(self.HIDDEN, 3 * self.HIDDEN, scale=0.5)
        bhh = randt(3 * self.HIDDEN, scale=0.3)
        seq = F.gru_sequence(xp, h0, whh, bhh)
        h = h0
        for t in range(length):
            h = F.gru_step(xp[:, t, :], h, whh, bhh)
            np.testing.assert_allclose(seq.data[:, t], h.data, atol=1e-12)

    def test_lstm_sequence_matches_unrolled_steps(self):
        length = 4
        xp = randt(self.BATCH, length, 4 * self.HIDDEN)
        h0, c0 = randt(self.BATCH, self.HIDDEN), randt(self.BATCH, self.HIDDEN)
        whh = randt(self.HIDDEN, 4 * self.HIDDEN, scale=0.5)
        bhh = randt(4 * self.HIDDEN, scale=0.3)
        seq = F.lstm_sequence(xp, h0, c0, whh, bhh)
        h, c = h0, c0
        for t in range(length):
            hc = F.lstm_step(xp[:, t, :], h, c, whh, bhh)
            h, c = hc[:, : self.HIDDEN], hc[:, self.HIDDEN :]
            np.testing.assert_allclose(seq.data[:, t, : self.HIDDEN], h.data, atol=1e-12)
            np.testing.assert_allclose(seq.data[:, t, self.HIDDEN :], c.data, atol=1e-12)


class TestAutodiffMechanics:
    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a  # dy/da = 2a + 1 = 5
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_backward_requires_scalar(self):
        a = randt(3)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_seed_grad(self):
        a = randt(3)
        out = a * 3.0
        out.backward(np.ones(3))
        np.testing.assert_allclose(a.grad, 3.0 * np.ones(3))

    def test_no_grad_blocks_tape(self):
        a = randt(3)
        with no_grad():
            out = a * 2 + 1
        assert not out.requires_grad
        assert out._parents == ()

    def test_detach(self):
        a = randt(3)
        d = a.detach()
        out = (d * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        a = randt(3)
        (a.sum()).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 4
        out = (b + c).sum()  # d/da = 6
        out.backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 0.001
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            a.backward()
