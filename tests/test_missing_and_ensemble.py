"""Tests for missing-data imputation and forecast ensembling."""

import numpy as np
import pytest

from repro.baselines import GRUForecaster
from repro.data import DataLoader, WindowedDataset
from repro.data.missing import (
    forward_fill,
    linear_interpolate,
    mask_missing,
    missing_rate,
    seasonal_interpolate,
)
from repro.tensor import Tensor
from repro.training.ensembling import ForecastEnsemble

RNG = np.random.default_rng(180)


class TestForwardFill:
    def test_fills_interior_gap(self):
        values = np.array([[1.0], [np.nan], [np.nan], [4.0]])
        out = forward_fill(values)
        np.testing.assert_array_equal(out.ravel(), [1.0, 1.0, 1.0, 4.0])

    def test_backfills_leading(self):
        values = np.array([[np.nan], [2.0], [3.0]])
        out = forward_fill(values)
        np.testing.assert_array_equal(out.ravel(), [2.0, 2.0, 3.0])

    def test_all_missing_channel_raises(self):
        with pytest.raises(ValueError):
            forward_fill(np.full((5, 1), np.nan))

    def test_complete_data_untouched(self):
        values = RNG.normal(size=(10, 3))
        np.testing.assert_array_equal(forward_fill(values), values)


class TestLinearInterpolate:
    def test_straight_line_gap(self):
        values = np.array([[0.0], [np.nan], [np.nan], [3.0]])
        out = linear_interpolate(values)
        np.testing.assert_allclose(out.ravel(), [0.0, 1.0, 2.0, 3.0])

    def test_edges_held(self):
        values = np.array([[np.nan], [1.0], [np.nan]])
        out = linear_interpolate(values)
        np.testing.assert_allclose(out.ravel(), [1.0, 1.0, 1.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            linear_interpolate(np.zeros(5))


class TestSeasonalInterpolate:
    def test_uses_phase_mean(self):
        period = 4
        base = np.tile([0.0, 10.0, 20.0, 30.0], 5)[:, None].astype(float)
        values = base.copy()
        values[9, 0] = np.nan  # phase 1 -> should become ~10
        out = seasonal_interpolate(values, period)
        assert out[9, 0] == pytest.approx(10.0)

    def test_beats_linear_on_periodic_data(self):
        period = 24
        t = np.arange(period * 20)
        truth = np.sin(2 * np.pi * t / period)[:, None]
        holey = mask_missing(truth, np.random.default_rng(0), rate=0.1, gap_length=6)
        mask = np.isnan(holey)
        seasonal = seasonal_interpolate(holey, period)
        linear = linear_interpolate(holey)
        err_seasonal = np.mean((seasonal[mask] - truth[mask]) ** 2)
        err_linear = np.mean((linear[mask] - truth[mask]) ** 2)
        assert err_seasonal < err_linear

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            seasonal_interpolate(np.zeros((10, 1)), period=0)


class TestMaskMissing:
    def test_rate_approximate(self):
        values = RNG.normal(size=(2000, 2))
        holey = mask_missing(values, np.random.default_rng(1), rate=0.2, gap_length=4)
        assert 0.05 < missing_rate(holey) < 0.35

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            mask_missing(np.zeros((10, 1)), np.random.default_rng(0), rate=1.0)

    def test_roundtrip_through_imputers(self):
        values = RNG.normal(size=(200, 3)).cumsum(axis=0)
        holey = mask_missing(values, np.random.default_rng(2), rate=0.1, gap_length=3)
        for imputer in (forward_fill, linear_interpolate):
            out = imputer(holey)
            assert not np.isnan(out).any()
            # observed cells unchanged
            observed = ~np.isnan(holey)
            np.testing.assert_array_equal(out[observed], holey[observed])


def _make_model(seed):
    return GRUForecaster(enc_in=2, c_out=2, pred_len=4, hidden_size=8, d_time=2, dropout=0.0, seed=seed)


def _batch(batch=3, input_len=8, pred_len=4):
    return (
        RNG.normal(size=(batch, input_len, 2)),
        RNG.normal(size=(batch, input_len, 2)),
        RNG.normal(size=(batch, 8, 2)),
        RNG.normal(size=(batch, 8, 2)),
    )


class TestForecastEnsemble:
    def test_mean_of_identical_models_is_member(self):
        model = _make_model(0)
        ensemble = ForecastEnsemble([model, model])
        inputs = _batch()
        member = ensemble.member_forecasts(*inputs)[0]
        np.testing.assert_allclose(ensemble.predict(*inputs), member)

    def test_median_method(self):
        models = [_make_model(s) for s in range(3)]
        ensemble = ForecastEnsemble(models, method="median")
        out = ensemble.predict(*_batch())
        members = ensemble.member_forecasts(*_batch(batch=3))
        assert out.shape == (3, 4, 2)

    def test_weights_normalized(self):
        models = [_make_model(s) for s in range(2)]
        ensemble = ForecastEnsemble(models, weights=[2.0, 6.0])
        np.testing.assert_allclose(ensemble.weights, [0.25, 0.75])

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            ForecastEnsemble([_make_model(0)], weights=[-1.0])

    def test_empty_models(self):
        with pytest.raises(ValueError):
            ForecastEnsemble([])

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            ForecastEnsemble([_make_model(0)], method="max")

    def test_fit_weights_favours_better_member(self):
        values = RNG.normal(size=(200, 2)).cumsum(axis=0) * 0.1
        windows = WindowedDataset(values, np.zeros((200, 2)), 8, 4, stride=8)
        loader = DataLoader(windows, batch_size=8)
        good = _make_model(0)
        # train the good member a little
        from repro.training import Trainer

        Trainer(good, learning_rate=5e-3, max_epochs=3).fit(loader)
        bad = _make_model(1)  # untrained
        ensemble = ForecastEnsemble([good, bad])
        weights = ensemble.fit_weights(loader, temperature=0.1)
        assert weights[0] > weights[1]

    def test_ensemble_at_least_as_good_as_worst(self):
        values = np.sin(np.arange(300) / 5.0)[:, None] * np.ones((1, 2))
        windows = WindowedDataset(values, np.zeros((300, 2)), 8, 4, stride=4)
        loader = DataLoader(windows, batch_size=16)
        models = [_make_model(s) for s in range(3)]
        from repro.training import Trainer

        for m in models:
            Trainer(m, learning_rate=5e-3, max_epochs=2).fit(loader)
        ensemble = ForecastEnsemble(models)
        member_errors = []
        ens_errors = []
        for x_enc, x_mark, x_dec, y_mark, y in loader:
            members = ensemble.member_forecasts(x_enc, x_mark, x_dec, y_mark)
            member_errors.append(np.mean((members - y[None]) ** 2, axis=(1, 2, 3)))
            ens_errors.append(np.mean((ensemble.predict(x_enc, x_mark, x_dec, y_mark) - y) ** 2))
        worst_member = np.max(np.mean(member_errors, axis=0))
        assert np.mean(ens_errors) <= worst_member + 1e-9
