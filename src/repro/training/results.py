"""Experiment-result persistence: append-only JSONL store + summaries.

Long benchmark campaigns (Table II is 80 training runs) want results
written incrementally and re-aggregated later without re-running.  The
store is a plain JSONL file so it diffs cleanly and needs no database.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.training.experiment import ExperimentResult


class ResultStore:
    """Append-only JSONL store of :class:`ExperimentResult` records."""

    def __init__(self, path: str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- write -------------------------------------------------------------
    def append(self, result: ExperimentResult, tags: Optional[Dict[str, object]] = None) -> None:
        record = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "dataset": result.dataset,
            "model": result.model,
            "pred_len": result.pred_len,
            "mse": result.mse,
            "mae": result.mae,
            "per_seed": result.per_seed,
        }
        if tags:
            record["tags"] = tags
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record) + "\n")

    # -- read --------------------------------------------------------------
    def records(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        with open(self.path) as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    raise ValueError(f"{self.path}:{line_no}: corrupt record") from None

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def query(
        self,
        dataset: Optional[str] = None,
        model: Optional[str] = None,
        pred_len: Optional[int] = None,
    ) -> List[dict]:
        """Filter records by any combination of keys."""
        out = []
        for rec in self.records():
            if dataset is not None and rec["dataset"] != dataset:
                continue
            if model is not None and rec["model"] != model:
                continue
            if pred_len is not None and rec["pred_len"] != pred_len:
                continue
            out.append(rec)
        return out

    def best_per_cell(self) -> Dict[tuple, dict]:
        """For each (dataset, pred_len): the record with the lowest MSE."""
        best: Dict[tuple, dict] = {}
        for rec in self.records():
            key = (rec["dataset"], rec["pred_len"])
            if key not in best or rec["mse"] < best[key]["mse"]:
                best[key] = rec
        return best

    def leaderboard(self, dataset: str, pred_len: int) -> List[dict]:
        """Records of one cell sorted by MSE (latest record per model)."""
        latest: Dict[str, dict] = {}
        for rec in self.query(dataset=dataset, pred_len=pred_len):
            latest[rec["model"]] = rec  # later lines win
        return sorted(latest.values(), key=lambda r: r["mse"])

    def summary_table(self) -> str:
        """Human-readable dump of the whole store."""
        lines = [f"{'dataset':10s} {'H':>5} {'model':14s} {'MSE':>8} {'MAE':>8}"]
        for rec in sorted(self.records(), key=lambda r: (r["dataset"], r["pred_len"], r["mse"])):
            lines.append(
                f"{rec['dataset']:10s} {rec['pred_len']:>5} {rec['model']:14s} "
                f"{rec['mse']:>8.4f} {rec['mae']:>8.4f}"
            )
        return "\n".join(lines)
