"""Walk-forward (rolling-origin) backtesting.

The paper evaluates on a single chronological test split; production
forecasting practice evaluates with *rolling origins*: train up to time
t, forecast the next horizon, advance the origin, repeat.  This gives a
distribution of errors over origins — detecting models whose accuracy
decays as the data drifts (the non-stationarity the paper's Wind and
Exchange experiments stress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.ckpt import CheckpointManager
from repro.data.datasets import TimeSeriesDataset
from repro.data.scalers import StandardScaler
from repro.data.windows import DataLoader, WindowedDataset
from repro.obs import RunLogger
from repro.tensor.random import seed_everything
from repro.training.trainer import Trainer
from repro.training import metrics as M


@dataclass
class BacktestFold:
    """One rolling origin: where it starts and how the model scored."""

    origin: int  # index separating train from evaluation
    metrics: Dict[str, float]


@dataclass
class BacktestReport:
    """All folds plus aggregate statistics."""

    folds: List[BacktestFold] = field(default_factory=list)

    def metric(self, name: str) -> np.ndarray:
        return np.array([f.metrics[name] for f in self.folds])

    def summary(self) -> Dict[str, float]:
        mses = self.metric("mse")
        maes = self.metric("mae")
        return {
            "n_folds": len(self.folds),
            "mse_mean": float(mses.mean()),
            "mse_std": float(mses.std()),
            "mse_worst": float(mses.max()),
            "mae_mean": float(maes.mean()),
            "mae_std": float(maes.std()),
        }

    def degradation(self) -> float:
        """Slope of MSE against fold index (positive = decaying accuracy)."""
        mses = self.metric("mse")
        if len(mses) < 2:
            return 0.0
        slope, _ = np.polyfit(np.arange(len(mses)), mses, 1)
        return float(slope)


def walk_forward(
    dataset: TimeSeriesDataset,
    model_factory: Callable[[int, int], object],
    input_len: int,
    pred_len: int,
    n_folds: int = 3,
    eval_span: Optional[int] = None,
    min_train: Optional[int] = None,
    label_len: Optional[int] = None,
    batch_size: int = 16,
    learning_rate: float = 1e-3,
    max_epochs: int = 3,
    stride: int = 4,
    seed: int = 0,
    logger: Optional[RunLogger] = None,
    checkpoint_dir: Union[str, Path, None] = None,
    resume: bool = False,
    checkpoint_every_steps: Optional[int] = None,
) -> BacktestReport:
    """Rolling-origin evaluation of a forecaster on one dataset.

    Parameters
    ----------
    model_factory:
        ``(n_dims, pred_len) -> model`` building a *fresh* model per fold
        (each origin retrains from scratch — no leakage across folds).
    eval_span:
        Points evaluated after each origin (default: horizon-sized
        span that fits ``n_folds`` folds into the series tail).
    min_train:
        Minimum training points before the first origin (default: half
        the series).
    logger:
        Optional :class:`repro.obs.RunLogger`; each fold is a ``fold``
        span and emits a ``fold`` event with its origin and metrics.
    checkpoint_dir:
        Optional directory for fault-tolerant folds: each fold trains
        under ``<checkpoint_dir>/fold<k>/`` and, with ``resume=True``,
        continues from its latest verified checkpoint (already-finished
        folds restore their final weights and skip straight to
        evaluation).
    """
    values = dataset.values
    n = len(values)
    if label_len is None:
        label_len = input_len // 2
    if min_train is None:
        min_train = n // 2
    if eval_span is None:
        eval_span = max(input_len + pred_len + 1, (n - min_train) // n_folds)
    origins = [min_train + k * eval_span for k in range(n_folds)]
    if origins[-1] + input_len + pred_len > n:
        raise ValueError(
            f"series too short: last fold needs {origins[-1] + input_len + pred_len} points, have {n}"
        )

    log = logger if logger is not None else RunLogger.null()
    report = BacktestReport()
    for fold_index, origin in enumerate(origins):
        seed_everything(seed + fold_index)
        scaler = StandardScaler().fit(values[:origin])
        train_values = scaler.transform(values[:origin])
        eval_stop = min(n, origin + eval_span + input_len + pred_len)
        # include input_len of history before the origin so the first
        # evaluation window predicts points strictly after the origin
        eval_values = scaler.transform(values[origin - input_len : eval_stop])
        train_marks = dataset.marks(dataset.timestamps[:origin])
        eval_marks = dataset.marks(dataset.timestamps[origin - input_len : eval_stop])

        train_windows = WindowedDataset(train_values, train_marks, input_len, pred_len, label_len, stride=stride)
        eval_windows = WindowedDataset(eval_values, eval_marks, input_len, pred_len, label_len, stride=stride)
        if len(train_windows) == 0 or len(eval_windows) == 0:
            raise ValueError(f"fold at origin {origin} has no windows")
        train_loader = DataLoader(train_windows, batch_size=batch_size, shuffle=True,
                                  rng=np.random.default_rng(seed + fold_index))
        eval_loader = DataLoader(eval_windows, batch_size=batch_size)

        with log.span("fold"):
            model = model_factory(dataset.n_dims, pred_len)
            trainer = Trainer(model, learning_rate=learning_rate, max_epochs=max_epochs, logger=log)
            manager = None
            if checkpoint_dir is not None:
                manager = CheckpointManager(Path(checkpoint_dir) / f"fold{fold_index}", logger=log)
            trainer.fit(
                train_loader,
                checkpoint=manager,
                checkpoint_every_steps=checkpoint_every_steps,
                resume=resume and manager is not None,
            )
            fold_metrics = trainer.evaluate(eval_loader)
        report.folds.append(BacktestFold(origin=origin, metrics=fold_metrics))
        log.event("fold", fold=fold_index, origin=origin, **fold_metrics)
    return report
