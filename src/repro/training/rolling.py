"""Iterated (rolling) multi-step forecasting.

All deep models in the paper predict the whole horizon in one pass (the
"one-step prediction strategy", §V-A2).  The classical alternative —
predict a short block, append it to the input, repeat — is provided here
both as a baseline decoding strategy and for horizon-extension beyond a
trained model's ``pred_len``.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, inference_mode


def rolling_forecast(
    model,
    x_enc: np.ndarray,
    x_mark_enc: np.ndarray,
    future_marks: np.ndarray,
    horizon: int,
    label_len: int,
) -> np.ndarray:
    """Extend a trained forecaster to an arbitrary horizon by iteration.

    Parameters
    ----------
    model:
        Any forecaster following the protocol; its single-pass horizon is
        inferred from one probe call.
    x_enc, x_mark_enc:
        The seed window (B, L, C) and its marks (B, L, T).
    future_marks:
        Calendar marks covering the ``horizon`` steps after the window
        (B, horizon, T) — known in advance, like the paper's setup.
    horizon:
        Total steps to forecast (may exceed the model's pred_len).
    label_len:
        Decoder context length used when the model was trained.
    """
    x_enc = np.asarray(x_enc, dtype=np.float64)
    marks = np.asarray(x_mark_enc, dtype=np.float64)
    future_marks = np.asarray(future_marks, dtype=np.float64)
    if future_marks.shape[1] < horizon:
        raise ValueError(f"future_marks covers {future_marks.shape[1]} steps < horizon {horizon}")
    batch, window, channels = x_enc.shape

    model.eval()
    outputs = []
    produced = 0
    while produced < horizon:
        # build the decoder input for the current window
        with inference_mode():
            block_marks = future_marks[:, produced:, :]
            x_dec_ctx = x_enc[:, -label_len:, :]
            probe_pred_len = _model_pred_len(model)
            step = min(probe_pred_len, horizon - produced)
            dec_marks = np.concatenate([marks[:, -label_len:, :], block_marks[:, :probe_pred_len, :]], axis=1)
            if dec_marks.shape[1] < label_len + probe_pred_len:  # pad marks if horizon tail is short
                pad = np.repeat(dec_marks[:, -1:, :], label_len + probe_pred_len - dec_marks.shape[1], axis=1)
                dec_marks = np.concatenate([dec_marks, pad], axis=1)
            x_dec = np.concatenate([x_dec_ctx, np.zeros((batch, probe_pred_len, channels))], axis=1)
            out = model(Tensor(x_enc), Tensor(marks), Tensor(x_dec), Tensor(dec_marks))
            block = model.point_forecast(out)[:, :step, :]
        outputs.append(block)
        produced += step
        # slide the window forward over the model's own predictions
        x_enc = np.concatenate([x_enc, block], axis=1)[:, -window:, :]
        used_marks = future_marks[:, produced - step : produced, :]
        marks = np.concatenate([marks, used_marks], axis=1)[:, -window:, :]
    return np.concatenate(outputs, axis=1)


def _model_pred_len(model) -> int:
    """Read the single-pass horizon off a forecaster."""
    if hasattr(model, "pred_len"):
        return int(model.pred_len)
    if hasattr(model, "config"):
        return int(model.config.pred_len)
    raise AttributeError("model exposes neither pred_len nor config.pred_len")
