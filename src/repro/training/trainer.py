"""Training loop: Adam + early stopping + best-checkpoint restore.

Matches §V-A3: Adam at lr 1e-4, batch 32, early stopping within 10
epochs.  Works with any model following the forecaster protocol
(``forward`` / ``compute_loss`` / ``point_forecast``).

Telemetry: every fit is instrumented through a
:class:`repro.obs.RunLogger` — spans for epoch/batch/forward/backward/
step, per-epoch ``epoch`` events (train/val loss, grad norm, samples per
second), streaming metrics (``loss``, ``grad_norm``, ``clip_events``,
``samples_per_sec``, ``tape_nodes``), and ``anomaly`` events for
non-finite losses/gradients and exploding grad norms.  The default
logger is the shared null logger, which costs nothing; pass
``verbose=True`` to get the classic console epoch lines (now routed
through a :class:`~repro.obs.sinks.ConsoleSink`).

Robustness: a batch whose loss is non-finite never reaches the
optimizer — the step is skipped and recorded, so one poisoned batch
cannot corrupt Adam's moment buffers for the rest of the run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.flow import set_flow_anomaly_hook
from repro.data.windows import DataLoader
from repro.obs import ConsoleSink, RunLogger
from repro.optim import Adam, EarlyStopping, clip_grad_norm, global_grad_norm
from repro.perf import profile as op_profile
from repro.tensor import Tensor, no_grad
from repro.training import metrics as M


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    grad_norm: List[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    wall_time: float = 0.0
    skipped_steps: int = 0


class Trainer:
    """Fit a forecaster on windowed loaders and evaluate on held-out data.

    Parameters
    ----------
    logger:
        Optional :class:`repro.obs.RunLogger`; defaults to the shared
        null logger (zero overhead).  With ``verbose=True`` and no
        console sink attached, one is added so epoch lines still print.
    """

    def __init__(
        self,
        model,
        learning_rate: float = 1e-4,
        max_epochs: int = 10,
        patience: int = 3,
        grad_clip: Optional[float] = 5.0,
        verbose: bool = False,
        logger: Optional[RunLogger] = None,
    ) -> None:
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.verbose = verbose
        if logger is None:
            logger = RunLogger(sinks=[ConsoleSink()]) if verbose else RunLogger.null()
        elif verbose:
            logger.ensure_console()
        self.logger = logger
        self._skipped_steps = 0

    # ------------------------------------------------------------------
    def _run_batch(self, batch, train: bool) -> tuple:
        """One batch; returns ``(loss_value, grad_norm_or_None)``.

        In training mode a non-finite loss aborts the step before
        ``backward`` and a non-finite gradient norm aborts it before
        ``optimizer.step`` — Adam's moment buffers only ever see finite
        updates.
        """
        log = self.logger
        x_enc, x_mark, x_dec, y_mark, y = batch
        with log.span("forward"):
            outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
            loss = self.model.compute_loss(outputs, Tensor(y))
        value = loss.item()
        if not train:
            return value, None
        if not math.isfinite(value):
            log.anomaly("nonfinite_loss", loss=value)
            self._skipped_steps += 1
            log.count("skipped_steps")
            return value, None
        with log.span("backward"):
            self.optimizer.zero_grad()
            loss.backward()
        if self.grad_clip is not None:
            norm = clip_grad_norm(self.model.parameters(), self.grad_clip)
            if math.isfinite(norm) and norm > self.grad_clip:
                log.count("clip_events")
        elif log.enabled:
            norm = global_grad_norm(self.model.parameters())
        else:
            norm = None  # not needed: no clipping, no telemetry
        if norm is not None:
            # emits nonfinite_grad_norm / exploding_grad_norm events;
            # True only for non-finite norms, which must not reach Adam
            if log.check_grad_norm(norm):
                self.optimizer.zero_grad()
                self._skipped_steps += 1
                log.count("skipped_steps")
                return value, norm
            log.observe("grad_norm", norm)
        with log.span("step"):
            self.optimizer.step()
        return value, norm

    def fit(self, train_loader: DataLoader, val_loader: Optional[DataLoader] = None) -> TrainingHistory:
        """Train with early stopping on validation loss; restore best state."""
        log = self.logger
        history = TrainingHistory()
        stopper = EarlyStopping(patience=self.patience)
        start = time.perf_counter()
        self._skipped_steps = 0
        prev_hook = set_flow_anomaly_hook(
            (lambda kind, payload: log.anomaly(kind, **payload)) if log.enabled else None
        )
        try:
            with log.span("fit"):
                for epoch in range(self.max_epochs):
                    self.model.train()
                    epoch_start = time.perf_counter()
                    epoch_losses: List[float] = []
                    epoch_norms: List[float] = []
                    n_samples = 0
                    with log.span("epoch"):
                        for batch_index, batch in enumerate(train_loader):
                            n_samples += len(batch[0])
                            with log.span("batch"):
                                if batch_index == 0 and log.enabled:
                                    # bridge op-level tape counts into the
                                    # metric registry once per epoch
                                    with op_profile() as prof:
                                        value, norm = self._run_batch(batch, train=True)
                                    log.record_op_profile(prof)
                                else:
                                    value, norm = self._run_batch(batch, train=True)
                            epoch_losses.append(value)
                            if norm is not None and math.isfinite(norm):
                                epoch_norms.append(norm)
                    epoch_seconds = time.perf_counter() - epoch_start
                    # skipped (non-finite) batches are excluded from the mean;
                    # they are accounted for in skipped_steps and anomaly events
                    finite_losses = [v for v in epoch_losses if math.isfinite(v)]
                    train_loss = float(np.mean(finite_losses)) if finite_losses else float("nan")
                    history.train_loss.append(train_loss)
                    mean_norm = float(np.mean(epoch_norms)) if epoch_norms else float("nan")
                    history.grad_norm.append(mean_norm)
                    samples_per_sec = n_samples / epoch_seconds if epoch_seconds > 0 else float("nan")

                    val_loss: Optional[float] = None
                    if val_loader is not None:
                        with log.span("validate"):
                            val_loss = self.evaluate_loss(val_loader)
                        history.val_loss.append(val_loss)
                        stopper.update(val_loss, state=self.model.state_dict())

                    if log.enabled:
                        log.check_loss(train_loss)
                        log.observe("loss", train_loss)
                        log.observe("samples_per_sec", samples_per_sec)
                        log.event(
                            "epoch",
                            epoch=epoch,
                            train_loss=train_loss,
                            val_loss=val_loss,
                            grad_norm=mean_norm if math.isfinite(mean_norm) else None,
                            samples_per_sec=samples_per_sec,
                            n_samples=n_samples,
                            seconds=epoch_seconds,
                        )

                    history.epochs_run = epoch + 1
                    if val_loader is not None and stopper.should_stop:
                        history.stopped_early = True
                        log.event("early_stop", epoch=epoch, best_val=stopper.best_loss)
                        break
            if stopper.best_state is not None:
                self.model.load_state_dict(stopper.best_state)
        finally:
            set_flow_anomaly_hook(prev_hook)
        history.wall_time = time.perf_counter() - start
        history.skipped_steps = self._skipped_steps
        return history

    # ------------------------------------------------------------------
    def evaluate_loss(self, loader: DataLoader) -> float:
        """Mean model loss over a loader (no gradient, eval mode).

        Restores the model's prior train/eval mode on exit.
        """
        was_training = getattr(self.model, "training", True)
        self.model.eval()
        try:
            with no_grad():
                losses = [self._run_batch(batch, train=False)[0] for batch in loader]
        finally:
            self.model.train(was_training)
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self, loader: DataLoader) -> Dict[str, float]:
        """Point-forecast metrics (mse/mae/rmse/mape) over a loader.

        Restores the model's prior train/eval mode on exit.
        """
        was_training = getattr(self.model, "training", True)
        self.model.eval()
        predictions, targets = [], []
        try:
            with no_grad():
                for x_enc, x_mark, x_dec, y_mark, y in loader:
                    outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
                    predictions.append(self.model.point_forecast(outputs))
                    targets.append(y)
        finally:
            self.model.train(was_training)
        prediction = np.concatenate(predictions, axis=0)
        target = np.concatenate(targets, axis=0)
        return M.evaluate(prediction, target)
