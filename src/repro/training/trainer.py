"""Training loop: Adam + early stopping + best-checkpoint restore.

Matches §V-A3: Adam at lr 1e-4, batch 32, early stopping within 10
epochs.  Works with any model following the forecaster protocol
(``forward`` / ``compute_loss`` / ``point_forecast``).

Telemetry: every fit is instrumented through a
:class:`repro.obs.RunLogger` — spans for epoch/batch/forward/backward/
step, per-epoch ``epoch`` events (train/val loss, grad norm, samples per
second), streaming metrics (``loss``, ``grad_norm``, ``clip_events``,
``samples_per_sec``, ``tape_nodes``), and ``anomaly`` events for
non-finite losses/gradients and exploding grad norms.  The default
logger is the shared null logger, which costs nothing; pass
``verbose=True`` to get the classic console epoch lines (now routed
through a :class:`~repro.obs.sinks.ConsoleSink`).

Robustness: a batch whose loss is non-finite never reaches the
optimizer — the step is skipped and recorded, so one poisoned batch
cannot corrupt Adam's moment buffers for the rest of the run.

Fault tolerance: pass a :class:`repro.ckpt.CheckpointManager` to
:meth:`Trainer.fit` and the loop snapshots the *complete* training state
(model, optimizer, scheduler, early-stopping counters + best weights,
every RNG stream, loss history) at every epoch boundary — and, with
``checkpoint_every_steps``, mid-epoch too.  ``resume=True`` restores the
latest verified checkpoint and continues mid-schedule; a resumed run is
bit-exact with an uninterrupted one because the loader's shuffle stream
is rewound to epoch start and already-trained batches are skipped
without consuming any randomness.  :mod:`repro.ckpt.faults` injection
points (``step:N`` after each trained batch, ``epoch:N`` before the
epoch-end save) let tests rehearse crashes at every boundary.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.ckpt import faults as ckpt_faults
from repro.ckpt import state as ckpt_state
from repro.ckpt.manager import CheckpointManager
from repro.core.flow import set_flow_anomaly_hook
from repro.data.windows import DataLoader
from repro.obs import ConsoleSink, RunLogger
from repro.optim import Adam, EarlyStopping, clip_grad_norm, global_grad_norm
from repro.perf import profile as op_profile
from repro.tensor import Tensor, inference_mode
from repro.tensor.random import generator_state
from repro.training import metrics as M


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    grad_norm: List[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    wall_time: float = 0.0
    skipped_steps: int = 0
    resumed_at_step: Optional[int] = None


class Trainer:
    """Fit a forecaster on windowed loaders and evaluate on held-out data.

    Parameters
    ----------
    logger:
        Optional :class:`repro.obs.RunLogger`; defaults to the shared
        null logger (zero overhead).  With ``verbose=True`` and no
        console sink attached, one is added so epoch lines still print.
    optimizer:
        Optional factory ``(params, lr) -> Optimizer``; defaults to the
        paper's Adam.  Any optimizer with ``state_dict`` support works
        with checkpointing.
    scheduler:
        Optional factory ``(optimizer) -> scheduler``; stepped once per
        epoch and included in checkpoints.
    """

    def __init__(
        self,
        model,
        learning_rate: float = 1e-4,
        max_epochs: int = 10,
        patience: int = 3,
        grad_clip: Optional[float] = 5.0,
        verbose: bool = False,
        logger: Optional[RunLogger] = None,
        optimizer: Optional[Callable] = None,
        scheduler: Optional[Callable] = None,
    ) -> None:
        self.model = model
        if optimizer is None:
            self.optimizer = Adam(model.parameters(), lr=learning_rate)
        else:
            self.optimizer = optimizer(model.parameters(), learning_rate)
        self.scheduler = scheduler(self.optimizer) if scheduler is not None else None
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.verbose = verbose
        if logger is None:
            logger = RunLogger(sinks=[ConsoleSink()]) if verbose else RunLogger.null()
        elif verbose:
            logger.ensure_console()
        self.logger = logger
        self._skipped_steps = 0

    # ------------------------------------------------------------------
    def _run_batch(self, batch, train: bool) -> tuple:
        """One batch; returns ``(loss_value, grad_norm_or_None)``.

        In training mode a non-finite loss aborts the step before
        ``backward`` and a non-finite gradient norm aborts it before
        ``optimizer.step`` — Adam's moment buffers only ever see finite
        updates.
        """
        log = self.logger
        x_enc, x_mark, x_dec, y_mark, y = batch
        with log.span("forward"):
            outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
            loss = self.model.compute_loss(outputs, Tensor(y))
        value = loss.item()
        if not train:
            return value, None
        # everything below is the training arm: evaluate paths call with
        # train=False and return at the guard above, so the dataflow pass's
        # flow-insensitive view of this function is suppressed line by line
        if not math.isfinite(value):
            log.anomaly("nonfinite_loss", loss=value)
            self._skipped_steps += 1  # repro: noqa[dataflow-impure-predict]
            log.count("skipped_steps")
            return value, None
        with log.span("backward"):
            self.optimizer.zero_grad()
            loss.backward()  # repro: noqa[dataflow-impure-predict]
        if self.grad_clip is not None:
            norm = clip_grad_norm(self.model.parameters(), self.grad_clip)
            if math.isfinite(norm) and norm > self.grad_clip:
                log.count("clip_events")
        elif log.enabled:
            norm = global_grad_norm(self.model.parameters())
        else:
            norm = None  # not needed: no clipping, no telemetry
        if norm is not None:
            # emits nonfinite_grad_norm / exploding_grad_norm events;
            # True only for non-finite norms, which must not reach Adam
            if log.check_grad_norm(norm):
                self.optimizer.zero_grad()
                self._skipped_steps += 1  # repro: noqa[dataflow-impure-predict]
                log.count("skipped_steps")
                return value, norm
            log.observe("grad_norm", norm)
        with log.span("step"):
            self.optimizer.step()
        return value, norm

    # ------------------------------------------------------------------
    def _capture(
        self,
        stopper: EarlyStopping,
        history: TrainingHistory,
        next_epoch: int,
        next_batch: int,
        global_step: int,
        loader_rng_state: Optional[dict],
        partial_epoch: Optional[dict],
    ) -> dict:
        """Full training-state tree for one checkpoint."""
        return ckpt_state.capture_training_state(
            self.model,
            self.optimizer,
            self.scheduler,
            stopper,
            loader_rng_state=loader_rng_state,
            progress={
                "next_epoch": int(next_epoch),
                "next_batch": int(next_batch),
                "global_step": int(global_step),
                "skipped_steps": int(self._skipped_steps),
            },
            history={
                "train_loss": list(history.train_loss),
                "val_loss": list(history.val_loss),
                "grad_norm": list(history.grad_norm),
                "epochs_run": int(history.epochs_run),
                "stopped_early": bool(history.stopped_early),
            },
            partial_epoch=partial_epoch,
        )

    def _restore(
        self,
        checkpoint: CheckpointManager,
        resume: Union[bool, str],
        stopper: EarlyStopping,
        history: TrainingHistory,
        train_loader: DataLoader,
    ) -> tuple:
        """Restore the resume target; returns ``(next_epoch, next_batch,
        global_step, partial_epoch)`` — all zeros/None on a fresh start."""
        loaded = checkpoint.load_latest() if resume is True else checkpoint.load(resume)
        if loaded is None:
            return 0, 0, 0, None
        extras = ckpt_state.restore_training_state(
            loaded.state,
            self.model,
            self.optimizer,
            self.scheduler,
            stopper,
            loader_rng=getattr(train_loader, "rng", None),
        )
        progress = extras["progress"]
        past = extras["history"]
        history.train_loss = [float(v) for v in past["train_loss"]]
        history.val_loss = [float(v) for v in past["val_loss"]]
        history.grad_norm = [float(v) for v in past["grad_norm"]]
        history.epochs_run = int(past["epochs_run"])
        history.stopped_early = bool(past["stopped_early"])
        history.resumed_at_step = int(progress["global_step"])
        self._skipped_steps = int(progress["skipped_steps"])
        return (
            int(progress["next_epoch"]),
            int(progress["next_batch"]),
            int(progress["global_step"]),
            extras.get("partial_epoch"),
        )

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: Optional[DataLoader] = None,
        *,
        checkpoint: Optional[CheckpointManager] = None,
        checkpoint_every_steps: Optional[int] = None,
        resume: Union[bool, str] = False,
    ) -> TrainingHistory:
        """Train with early stopping on validation loss; restore best state.

        With ``checkpoint`` set, the full training state is snapshotted at
        every epoch end (and every ``checkpoint_every_steps`` trained
        batches); ``resume=True`` continues from the latest verified
        checkpoint in that manager (``resume=<file name>`` picks one),
        bit-exactly reproducing the uninterrupted run.
        """
        if resume and checkpoint is None:
            raise ValueError("resume requires a CheckpointManager")
        log = self.logger
        history = TrainingHistory()
        stopper = EarlyStopping(patience=self.patience)
        start = time.perf_counter()
        self._skipped_steps = 0
        start_epoch, resume_batch, global_step, resumed_partial = 0, 0, 0, None
        if checkpoint is not None and resume:
            start_epoch, resume_batch, global_step, resumed_partial = self._restore(
                checkpoint, resume, stopper, history, train_loader
            )
        prev_hook = set_flow_anomaly_hook(
            (lambda kind, payload: log.anomaly(kind, **payload)) if log.enabled else None
        )
        try:
            with log.span("fit"):
                for epoch in range(start_epoch, self.max_epochs):
                    if val_loader is not None and stopper.should_stop:
                        break  # resumed from a checkpoint taken after early stop
                    self.model.train()
                    epoch_start = time.perf_counter()
                    skip_batches = resume_batch if epoch == start_epoch else 0
                    if epoch == start_epoch and resumed_partial is not None:
                        epoch_losses = [float(v) for v in resumed_partial["losses"]]
                        epoch_norms = [float(v) for v in resumed_partial["norms"]]
                        n_samples = int(resumed_partial["n_samples"])
                    else:
                        epoch_losses, epoch_norms, n_samples = [], [], 0
                    # the shuffle stream as of epoch start: mid-epoch
                    # checkpoints store this so a resumed iteration
                    # replays the exact same permutation
                    loader_rng = getattr(train_loader, "rng", None)
                    epoch_loader_state = None if loader_rng is None else generator_state(loader_rng)
                    with log.span("epoch"):
                        for batch_index, batch in enumerate(train_loader):
                            if batch_index < skip_batches:
                                continue  # already trained before the crash
                            n_samples += len(batch[0])
                            with log.span("batch"):
                                if batch_index == 0 and log.enabled:
                                    # bridge op-level tape counts into the
                                    # metric registry once per epoch
                                    with op_profile() as prof:
                                        value, norm = self._run_batch(batch, train=True)
                                    log.record_op_profile(prof)
                                else:
                                    value, norm = self._run_batch(batch, train=True)
                            epoch_losses.append(value)
                            if norm is not None and math.isfinite(norm):
                                epoch_norms.append(norm)
                            global_step += 1
                            ckpt_faults.check("step", global_step)
                            if (
                                checkpoint is not None
                                and checkpoint_every_steps
                                and global_step % checkpoint_every_steps == 0
                            ):
                                checkpoint.save(
                                    self._capture(
                                        stopper, history,
                                        next_epoch=epoch, next_batch=batch_index + 1,
                                        global_step=global_step,
                                        loader_rng_state=epoch_loader_state,
                                        partial_epoch={
                                            "losses": list(epoch_losses),
                                            "norms": list(epoch_norms),
                                            "n_samples": int(n_samples),
                                        },
                                    ),
                                    epoch=epoch, step=global_step,
                                )
                    epoch_seconds = time.perf_counter() - epoch_start
                    # skipped (non-finite) batches are excluded from the mean;
                    # they are accounted for in skipped_steps and anomaly events
                    finite_losses = [v for v in epoch_losses if math.isfinite(v)]
                    train_loss = float(np.mean(finite_losses)) if finite_losses else float("nan")
                    history.train_loss.append(train_loss)
                    mean_norm = float(np.mean(epoch_norms)) if epoch_norms else float("nan")
                    history.grad_norm.append(mean_norm)
                    samples_per_sec = n_samples / epoch_seconds if epoch_seconds > 0 else float("nan")

                    val_loss: Optional[float] = None
                    if val_loader is not None:
                        with log.span("validate"):
                            val_loss = self.evaluate_loss(val_loader)
                        history.val_loss.append(val_loss)
                        stopper.update(val_loss, state=self.model.state_dict())
                    if self.scheduler is not None:
                        self.scheduler.step()

                    if log.enabled:
                        log.check_loss(train_loss)
                        log.observe("loss", train_loss)
                        log.observe("samples_per_sec", samples_per_sec)
                        log.event(
                            "epoch",
                            epoch=epoch,
                            train_loss=train_loss,
                            val_loss=val_loss,
                            grad_norm=mean_norm if math.isfinite(mean_norm) else None,
                            samples_per_sec=samples_per_sec,
                            n_samples=n_samples,
                            seconds=epoch_seconds,
                        )

                    history.epochs_run = epoch + 1
                    if val_loader is not None and stopper.should_stop:
                        history.stopped_early = True
                        log.event("early_stop", epoch=epoch, best_val=stopper.best_loss)
                    # the epoch boundary crash window: everything since the
                    # last checkpoint is lost, recovery must replay it
                    ckpt_faults.check("epoch", epoch)
                    if checkpoint is not None:
                        loader_rng = getattr(train_loader, "rng", None)
                        checkpoint.save(
                            self._capture(
                                stopper, history,
                                next_epoch=epoch + 1, next_batch=0,
                                global_step=global_step,
                                loader_rng_state=None if loader_rng is None else generator_state(loader_rng),
                                partial_epoch=None,
                            ),
                            epoch=epoch + 1, step=global_step, metric=val_loss,
                        )
                    if val_loader is not None and stopper.should_stop:
                        break
            if stopper.best_state is not None:
                self.model.load_state_dict(stopper.best_state)
        finally:
            set_flow_anomaly_hook(prev_hook)
        history.wall_time = time.perf_counter() - start
        history.skipped_steps = self._skipped_steps
        return history

    # ------------------------------------------------------------------
    def evaluate_loss(self, loader: DataLoader) -> float:
        """Mean model loss over a loader (no gradient, eval mode).

        Restores the model's prior train/eval mode on exit.
        """
        was_training = getattr(self.model, "training", True)
        self.model.eval()
        try:
            with inference_mode():
                losses = [self._run_batch(batch, train=False)[0] for batch in loader]
        finally:
            self.model.train(was_training)
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self, loader: DataLoader) -> Dict[str, float]:
        """Point-forecast metrics (mse/mae/rmse/mape) over a loader.

        Restores the model's prior train/eval mode on exit.
        """
        was_training = getattr(self.model, "training", True)
        self.model.eval()
        predictions, targets = [], []
        try:
            with inference_mode():
                for x_enc, x_mark, x_dec, y_mark, y in loader:
                    outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
                    predictions.append(self.model.point_forecast(outputs))
                    targets.append(y)
        finally:
            self.model.train(was_training)
        prediction = np.concatenate(predictions, axis=0)
        target = np.concatenate(targets, axis=0)
        return M.evaluate(prediction, target)
