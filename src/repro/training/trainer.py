"""Training loop: Adam + early stopping + best-checkpoint restore.

Matches §V-A3: Adam at lr 1e-4, batch 32, early stopping within 10
epochs.  Works with any model following the forecaster protocol
(``forward`` / ``compute_loss`` / ``point_forecast``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.windows import DataLoader
from repro.optim import Adam, EarlyStopping, clip_grad_norm
from repro.tensor import Tensor, no_grad
from repro.training import metrics as M


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    wall_time: float = 0.0


class Trainer:
    """Fit a forecaster on windowed loaders and evaluate on held-out data."""

    def __init__(
        self,
        model,
        learning_rate: float = 1e-4,
        max_epochs: int = 10,
        patience: int = 3,
        grad_clip: Optional[float] = 5.0,
        verbose: bool = False,
    ) -> None:
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.max_epochs = max_epochs
        self.patience = patience
        self.grad_clip = grad_clip
        self.verbose = verbose

    # ------------------------------------------------------------------
    def _run_batch(self, batch, train: bool) -> float:
        x_enc, x_mark, x_dec, y_mark, y = batch
        outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
        loss = self.model.compute_loss(outputs, Tensor(y))
        if train:
            self.optimizer.zero_grad()
            loss.backward()
            if self.grad_clip is not None:
                clip_grad_norm(self.model.parameters(), self.grad_clip)
            self.optimizer.step()
        return loss.item()

    def fit(self, train_loader: DataLoader, val_loader: Optional[DataLoader] = None) -> TrainingHistory:
        """Train with early stopping on validation loss; restore best state."""
        history = TrainingHistory()
        stopper = EarlyStopping(patience=self.patience)
        start = time.perf_counter()
        for epoch in range(self.max_epochs):
            self.model.train()
            epoch_losses = [self._run_batch(batch, train=True) for batch in train_loader]
            train_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            history.train_loss.append(train_loss)

            if val_loader is not None:
                val_loss = self.evaluate_loss(val_loader)
                history.val_loss.append(val_loss)
                stopper.update(val_loss, state=self.model.state_dict())
                if self.verbose:
                    print(f"epoch {epoch}: train={train_loss:.4f} val={val_loss:.4f}")
                if stopper.should_stop:
                    history.stopped_early = True
                    history.epochs_run = epoch + 1
                    break
            elif self.verbose:
                print(f"epoch {epoch}: train={train_loss:.4f}")
            history.epochs_run = epoch + 1
        if stopper.best_state is not None:
            self.model.load_state_dict(stopper.best_state)
        history.wall_time = time.perf_counter() - start
        return history

    # ------------------------------------------------------------------
    def evaluate_loss(self, loader: DataLoader) -> float:
        """Mean model loss over a loader (no gradient, eval mode)."""
        self.model.eval()
        with no_grad():
            losses = [self._run_batch(batch, train=False) for batch in loader]
        self.model.train()
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self, loader: DataLoader) -> Dict[str, float]:
        """Point-forecast metrics (mse/mae/rmse/mape) over a loader."""
        self.model.eval()
        predictions, targets = [], []
        with no_grad():
            for x_enc, x_mark, x_dec, y_mark, y in loader:
                outputs = self.model(Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
                predictions.append(self.model.point_forecast(outputs))
                targets.append(y)
        self.model.train()
        prediction = np.concatenate(predictions, axis=0)
        target = np.concatenate(targets, axis=0)
        return M.evaluate(prediction, target)
