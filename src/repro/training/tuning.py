"""Hyper-parameter search on validation loss.

The paper tunes baselines (e.g. RNN hidden sizes from {16, 24, 32, 64},
§V-A2); this module provides the mechanism: grid search over model
overrides and/or ExperimentSettings fields, selecting by validation loss
and reporting the test metrics of the winner only (no test leakage).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.data import load_dataset
from repro.obs import RunLogger
from repro.tensor.random import seed_everything
from repro.training.experiment import ExperimentSettings, active_profile, build_model, make_loaders
from repro.training.trainer import Trainer


@dataclass
class TrialResult:
    """One grid point: its parameters and validation/test scores."""

    params: Dict[str, Any]
    val_loss: float
    test_metrics: Optional[Dict[str, float]] = None


@dataclass
class SearchResult:
    """All trials plus the validation-selected winner."""

    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise RuntimeError("search produced no trials")
        return min(self.trials, key=lambda t: t.val_loss)

    def table(self) -> str:
        lines = [f"{'params':40s} {'val':>10} {'test mse':>10}"]
        for t in sorted(self.trials, key=lambda t: t.val_loss):
            test = f"{t.test_metrics['mse']:.4f}" if t.test_metrics else "-"
            lines.append(f"{str(t.params):40s} {t.val_loss:>10.4f} {test:>10}")
        return "\n".join(lines)


def _split_param_spaces(param_grid: Dict[str, Sequence]) -> tuple:
    """Separate settings-level keys from model-override keys."""
    settings_fields = set(ExperimentSettings.__dataclass_fields__)
    settings_space = {k: v for k, v in param_grid.items() if k in settings_fields}
    model_space = {k: v for k, v in param_grid.items() if k not in settings_fields}
    return settings_space, model_space


def grid_search(
    dataset_name: str,
    model_name: str,
    pred_len: int,
    param_grid: Dict[str, Sequence],
    settings: Optional[ExperimentSettings] = None,
    univariate: bool = False,
    seed: int = 0,
    evaluate_all_on_test: bool = False,
    logger: Optional[RunLogger] = None,
) -> SearchResult:
    """Exhaustive search over ``param_grid``; select on validation loss.

    Keys that are ``ExperimentSettings`` fields (e.g. ``learning_rate``,
    ``d_model``) vary the profile; all other keys are passed to the model
    constructor as overrides (e.g. ``window``, ``n_flows``, ``hidden_size``).
    Only the winner is evaluated on the test split unless
    ``evaluate_all_on_test`` is set.  With a :class:`repro.obs.RunLogger`
    each grid point is a ``trial`` span emitting a ``trial`` event.
    """
    base_settings = settings if settings is not None else active_profile()
    settings_space, model_space = _split_param_spaces(param_grid)
    keys = list(settings_space) + list(model_space)
    value_lists = [param_grid[k] for k in keys]
    log = logger if logger is not None else RunLogger.null()

    result = SearchResult()
    for combo in itertools.product(*value_lists):
        params = dict(zip(keys, combo))
        trial_settings = replace(base_settings, **{k: params[k] for k in settings_space})
        overrides = {k: params[k] for k in model_space}

        seed_everything(seed)
        with log.span("trial"):
            dataset = load_dataset(
                dataset_name, n_points=trial_settings.n_points, seed=seed, **trial_settings.dataset_kwargs
            )
            if univariate:
                dataset = dataset.univariate()
            train, val, test = make_loaders(dataset, trial_settings, pred_len, seed=seed)
            model = build_model(model_name, dataset.n_dims, dataset.n_dims, pred_len, trial_settings, seed=seed, **overrides)
            trainer = Trainer(
                model,
                learning_rate=trial_settings.learning_rate,
                max_epochs=trial_settings.max_epochs,
                patience=trial_settings.patience,
                logger=log,
            )
            trainer.fit(train, val)
            trial = TrialResult(params=params, val_loss=trainer.evaluate_loss(val))
        log.event("trial", params=params, val_loss=trial.val_loss)
        if evaluate_all_on_test:
            trial.test_metrics = trainer.evaluate(test)
        result.trials.append(trial)
        if not evaluate_all_on_test:
            trial._trainer = trainer  # kept to score the winner below
            trial._test = test

    if not evaluate_all_on_test and result.trials:
        winner = result.best
        winner.test_metrics = winner._trainer.evaluate(winner._test)
        for t in result.trials:  # drop the heavyweight references
            if hasattr(t, "_trainer"):
                del t._trainer, t._test
    return result
