"""Evaluation metrics. The paper reports MSE and MAE (§V-A3)."""

from __future__ import annotations

from typing import Dict

import numpy as np


def mse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    _check_shapes(prediction, target)
    return float(np.mean((prediction - target) ** 2))


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    _check_shapes(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(prediction, target)))


def mape(prediction: np.ndarray, target: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (epsilon-guarded)."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    _check_shapes(prediction, target)
    return float(np.mean(np.abs((prediction - target) / (np.abs(target) + eps))))


def evaluate(prediction: np.ndarray, target: np.ndarray) -> Dict[str, float]:
    """All standard metrics at once (paper tables use mse/mae)."""
    return {
        "mse": mse(prediction, target),
        "mae": mae(prediction, target),
        "rmse": rmse(prediction, target),
        "mape": mape(prediction, target),
    }


def coverage(lower: np.ndarray, upper: np.ndarray, target: np.ndarray) -> float:
    """Fraction of target points falling inside [lower, upper] bands."""
    lower, upper, target = map(np.asarray, (lower, upper, target))
    _check_shapes(lower, target)
    _check_shapes(upper, target)
    return float(np.mean((target >= lower) & (target <= upper)))


def interval_width(lower: np.ndarray, upper: np.ndarray) -> float:
    """Mean width of the uncertainty band (sharpness)."""
    return float(np.mean(np.asarray(upper) - np.asarray(lower)))


def _check_shapes(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
