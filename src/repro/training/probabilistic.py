"""Probabilistic forecast scoring: CRPS, pinball loss, calibration error.

These extend the paper's MSE/MAE evaluation to score the normalizing
flow's distributional output properly — CRPS is the standard strictly
proper scoring rule for sample-based forecasts (used by DeepAR and the
probabilistic-forecasting literature the paper cites).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def crps_from_samples(samples: np.ndarray, target: np.ndarray) -> float:
    """Continuous Ranked Probability Score from forecast samples.

    Uses the energy form  CRPS = E|X - y| - 0.5 E|X - X'|  averaged over
    all target points.  ``samples``: (S, ...), ``target``: (...).
    """
    samples = np.asarray(samples, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if samples.shape[1:] != target.shape:
        raise ValueError(f"samples {samples.shape[1:]} must match target {target.shape}")
    n = samples.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples for CRPS")
    term1 = np.abs(samples - target[None]).mean(axis=0)
    # E|X - X'| via the sorted-sample identity: 2/(n(n-1)) * sum_i (2i - n + 1) x_(i)
    sorted_samples = np.sort(samples, axis=0)
    weights = (2.0 * np.arange(n) - n + 1.0).reshape((n,) + (1,) * target.ndim)
    term2 = (weights * sorted_samples).sum(axis=0) * 2.0 / (n * (n - 1))
    return float((term1 - 0.5 * term2).mean())


def pinball_loss(prediction: np.ndarray, target: np.ndarray, quantile: float) -> float:
    """Quantile (pinball) loss of a quantile forecast."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    diff = target - prediction
    return float(np.mean(np.maximum(quantile * diff, (quantile - 1.0) * diff)))


def quantile_scores(samples: np.ndarray, target: np.ndarray, quantiles: Sequence[float] = (0.1, 0.5, 0.9)) -> Dict[float, float]:
    """Pinball loss of each sample-derived quantile forecast."""
    samples = np.asarray(samples)
    return {
        q: pinball_loss(np.quantile(samples, q, axis=0), target, q)
        for q in quantiles
    }


def calibration_error(
    samples: np.ndarray, target: np.ndarray, levels: Sequence[float] = (0.5, 0.8, 0.9, 0.95)
) -> float:
    """Mean |empirical coverage - nominal level| over central intervals."""
    samples = np.asarray(samples)
    target = np.asarray(target)
    errors = []
    for level in levels:
        alpha = (1.0 - level) / 2.0
        lower = np.quantile(samples, alpha, axis=0)
        upper = np.quantile(samples, 1.0 - alpha, axis=0)
        empirical = np.mean((target >= lower) & (target <= upper))
        errors.append(abs(empirical - level))
    return float(np.mean(errors))
