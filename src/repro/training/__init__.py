"""Training loop, metrics, and the dataset x model x horizon runner."""

from repro.training import metrics
from repro.training.experiment import (
    PROFILES,
    ExperimentResult,
    ExperimentSettings,
    active_profile,
    available_models,
    build_model,
    make_loaders,
    run_experiment,
)
from repro.training.trainer import Trainer, TrainingHistory
from repro.training.probabilistic import (
    calibration_error,
    crps_from_samples,
    pinball_loss,
    quantile_scores,
)
from repro.training.rolling import rolling_forecast
from repro.training.backtest import BacktestReport, walk_forward
from repro.training.results import ResultStore
from repro.training.tuning import SearchResult, grid_search
from repro.training.ensembling import ForecastEnsemble

__all__ = [
    "ForecastEnsemble",
    "BacktestReport",
    "walk_forward",
    "ResultStore",
    "SearchResult",
    "grid_search",
    "calibration_error",
    "crps_from_samples",
    "pinball_loss",
    "quantile_scores",
    "rolling_forecast",
    "metrics",
    "Trainer",
    "TrainingHistory",
    "PROFILES",
    "ExperimentResult",
    "ExperimentSettings",
    "active_profile",
    "available_models",
    "build_model",
    "make_loaders",
    "run_experiment",
]
