"""Experiment runner: dataset x model x horizon, paper-style table rows.

``run_experiment("etth1", "conformer", pred_len=96)`` builds the data
pipeline, instantiates the model from the registry, trains with the
paper's protocol, and returns test MSE/MAE — averaged over seeds the way
the paper averages over 5 runs.

Scale profiles keep the harness CPU-friendly: the default ``tiny``
profile shrinks model width, series length, and window counts while
preserving every architectural ratio; ``REPRO_SCALE=paper`` switches to
paper-shaped settings.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import baselines
from repro.ckpt import CheckpointManager
from repro.core import Conformer, ConformerConfig
from repro.data import DataLoader, WindowedDataset, load_dataset
from repro.data.datasets import TimeSeriesDataset
from repro.obs import RunLogger, run_logger
from repro.tensor.random import seed_everything
from repro.training.trainer import Trainer, TrainingHistory


@dataclass
class ExperimentSettings:
    """Everything that controls the scale of one experiment."""

    input_len: int = 32
    label_len: int = 16
    d_model: int = 16
    n_heads: int = 2
    e_layers: int = 2
    d_layers: int = 1
    d_ff: int = 32
    dropout: float = 0.05
    window: int = 2
    moving_avg: int = 13
    n_flows: int = 2
    lambda_weight: float = 0.8
    learning_rate: float = 1e-3
    batch_size: int = 16
    max_epochs: int = 5
    patience: int = 3
    n_points: Optional[int] = 1200  # dataset length override (None = paper size)
    window_stride: int = 8  # training-window stride (1 = paper)
    eval_stride: int = 8
    max_train_windows: int = 64
    max_eval_windows: int = 32
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)

    def scaled_pred_len(self, paper_pred_len: int) -> int:
        """Map a paper horizon (48..768) onto this profile's scale.

        The tiny profile shrinks horizons by 8x (48 -> 6, 768 -> 96) so the
        relative horizon ladder is preserved.
        """
        if self.n_points is None:
            return paper_pred_len
        return max(4, paper_pred_len // 8)


PROFILES: Dict[str, ExperimentSettings] = {
    "tiny": ExperimentSettings(),
    "small": ExperimentSettings(
        input_len=48,
        label_len=24,
        d_model=32,
        n_heads=4,
        d_ff=64,
        n_points=4000,
        max_epochs=4,
        max_train_windows=256,
        max_eval_windows=128,
    ),
    "paper": ExperimentSettings(
        input_len=96,
        label_len=48,
        d_model=512,
        n_heads=8,
        d_ff=2048,
        moving_avg=25,
        learning_rate=1e-4,
        batch_size=32,
        max_epochs=10,
        n_points=None,
        window_stride=1,
        eval_stride=1,
        max_train_windows=10**9,
        max_eval_windows=10**9,
    ),
}


def active_profile() -> ExperimentSettings:
    """Settings selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "tiny")
    try:
        return replace(PROFILES[name])
    except KeyError:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(PROFILES)}, got {name!r}") from None


# ----------------------------------------------------------------------
# model registry
# ----------------------------------------------------------------------
def _build_conformer(enc_in: int, c_out: int, pred_len: int, s: ExperimentSettings, seed: int, **overrides):
    kwargs = dict(
        enc_in=enc_in,
        dec_in=enc_in,
        c_out=c_out,
        input_len=s.input_len,
        label_len=s.label_len,
        pred_len=pred_len,
        d_model=s.d_model,
        n_heads=s.n_heads,
        e_layers=s.e_layers,
        d_layers=s.d_layers,
        d_ff=s.d_ff,
        window=s.window,
        moving_avg=s.moving_avg,
        dropout=s.dropout,
        n_flows=s.n_flows,
        lambda_weight=s.lambda_weight,
        d_time=4,
        seed=seed,
    )
    kwargs.update(overrides)  # ablation switches win over profile defaults
    return Conformer(ConformerConfig(**kwargs))


def _transformer_kwargs(enc_in: int, c_out: int, pred_len: int, s: ExperimentSettings, seed: int) -> dict:
    return dict(
        enc_in=enc_in,
        dec_in=enc_in,
        c_out=c_out,
        pred_len=pred_len,
        d_model=s.d_model,
        n_heads=s.n_heads,
        e_layers=s.e_layers,
        d_layers=s.d_layers,
        d_ff=s.d_ff,
        dropout=s.dropout,
        d_time=4,
        seed=seed,
    )


def _construct(cls, defaults: dict, overrides: dict):
    """Build a model with profile defaults, letting overrides win."""
    kwargs = dict(defaults)
    kwargs.update(overrides)
    return cls(**kwargs)


MODEL_REGISTRY: Dict[str, Callable] = {
    "conformer": _build_conformer,
    "transformer": lambda e, c, p, s, seed, **kw: _construct(
        baselines.VanillaTransformer, _transformer_kwargs(e, c, p, s, seed), kw
    ),
    "informer": lambda e, c, p, s, seed, **kw: _construct(
        baselines.Informer, _transformer_kwargs(e, c, p, s, seed), kw
    ),
    "reformer": lambda e, c, p, s, seed, **kw: _construct(
        baselines.Reformer,
        dict(_transformer_kwargs(e, c, p, s, seed), bucket_length=min(24, s.input_len // 2)),
        kw,
    ),
    "longformer": lambda e, c, p, s, seed, **kw: _construct(
        baselines.Longformer, _transformer_kwargs(e, c, p, s, seed), kw
    ),
    "logtrans": lambda e, c, p, s, seed, **kw: _construct(
        baselines.LogTrans, _transformer_kwargs(e, c, p, s, seed), kw
    ),
    "autoformer": lambda e, c, p, s, seed, **kw: _construct(
        baselines.Autoformer,
        dict(
            enc_in=e, dec_in=e, c_out=c, pred_len=p, d_model=s.d_model, n_heads=s.n_heads,
            e_layers=s.e_layers, d_layers=s.d_layers, d_ff=s.d_ff, moving_avg=s.moving_avg,
            dropout=s.dropout, d_time=4, seed=seed,
        ),
        kw,
    ),
    "gru": lambda e, c, p, s, seed, **kw: _construct(
        baselines.GRUForecaster,
        dict(enc_in=e, c_out=c, pred_len=p, hidden_size=s.d_model, d_time=4, dropout=s.dropout, seed=seed),
        kw,
    ),
    "lstnet": lambda e, c, p, s, seed, **kw: _construct(
        baselines.LSTNet,
        dict(enc_in=e, c_out=c, pred_len=p, hidden_size=s.d_model, conv_channels=s.d_model,
             d_time=4, dropout=s.dropout, seed=seed),
        kw,
    ),
    "nbeats": lambda e, c, p, s, seed, **kw: _construct(
        baselines.NBeats,
        dict(enc_in=e, c_out=c, input_len=s.input_len, pred_len=p, hidden_size=s.d_ff, seed=seed),
        kw,
    ),
    "ts2vec": lambda e, c, p, s, seed, **kw: _construct(
        baselines.TS2Vec, dict(enc_in=e, c_out=c, pred_len=p, d_repr=s.d_model, d_time=4, seed=seed), kw
    ),
    "deepar": lambda e, c, p, s, seed, **kw: _construct(
        baselines.DeepAR, dict(enc_in=e, c_out=c, pred_len=p, hidden_size=s.d_model, d_time=4, seed=seed), kw
    ),
    "dlinear": lambda e, c, p, s, seed, **kw: _construct(
        baselines.DLinear,
        dict(enc_in=e, c_out=c, input_len=s.input_len, pred_len=p, moving_avg=s.moving_avg, seed=seed),
        kw,
    ),
}


def available_models() -> list:
    """Names accepted by :func:`run_experiment`."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, enc_in: int, c_out: int, pred_len: int, settings: ExperimentSettings, seed: int = 0, **kw):
    """Instantiate a registered forecaster wired to dataset dimensions."""
    try:
        factory = MODEL_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {available_models()}") from None
    return factory(enc_in, c_out, pred_len, settings, seed, **kw)


# ----------------------------------------------------------------------
# data pipeline
# ----------------------------------------------------------------------
def make_loaders(
    dataset: TimeSeriesDataset,
    settings: ExperimentSettings,
    pred_len: int,
    seed: int = 0,
):
    """Build (train, val, test) loaders of rolling windows."""

    def _loader(part: str, stride: int, cap: int, shuffle: bool) -> DataLoader:
        values, stamps = dataset.split(part)
        marks = dataset.marks(stamps)
        windows = WindowedDataset(
            values, marks, settings.input_len, pred_len, label_len=settings.label_len, stride=stride
        )
        if len(windows) > cap:  # cap via a coarser stride (keeps chronology even)
            windows = WindowedDataset(
                values,
                marks,
                settings.input_len,
                pred_len,
                label_len=settings.label_len,
                stride=max(stride, (len(windows) * stride) // cap),
            )
        return DataLoader(windows, batch_size=settings.batch_size, shuffle=shuffle, rng=np.random.default_rng(seed))

    train = _loader("train", settings.window_stride, settings.max_train_windows, shuffle=True)
    val = _loader("val", settings.eval_stride, settings.max_eval_windows, shuffle=False)
    test = _loader("test", settings.eval_stride, settings.max_eval_windows, shuffle=False)
    return train, val, test


# ----------------------------------------------------------------------
# experiment driver
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """One (dataset, model, horizon) cell of a paper table."""

    dataset: str
    model: str
    pred_len: int
    mse: float
    mae: float
    per_seed: List[Dict[str, float]] = field(default_factory=list)
    history: Optional[TrainingHistory] = None

    def row(self) -> str:
        return f"{self.dataset:10s} {self.model:12s} {self.pred_len:5d} mse={self.mse:.4f} mae={self.mae:.4f}"


def run_experiment(
    dataset_name: str,
    model_name: str,
    pred_len: int,
    settings: Optional[ExperimentSettings] = None,
    univariate: bool = False,
    seeds: Sequence[int] = (0,),
    model_overrides: Optional[dict] = None,
    logger: Optional[RunLogger] = None,
    log_jsonl: Union[str, Path, None] = None,
    checkpoint_dir: Union[str, Path, None] = None,
    resume: bool = False,
    checkpoint_every_steps: Optional[int] = None,
) -> ExperimentResult:
    """Train and evaluate one model on one dataset at one horizon.

    Telemetry: pass an :class:`repro.obs.RunLogger` (``logger``) or a
    ``log_jsonl`` path to record a structured run log — a manifest event
    (seed list, model, settings, git rev, numpy version) followed by
    per-stage spans, per-epoch metrics, per-seed results, and any
    anomalies.  Render it with ``python -m repro.cli obs report``.

    Fault tolerance: pass ``checkpoint_dir`` to snapshot the full
    training state under ``<checkpoint_dir>/seed<seed>/`` (per-seed
    subdirectories, so multi-seed runs resume independently) and
    ``resume=True`` to continue an interrupted run from its latest
    verified checkpoint — the resumed run is bit-exact with the
    uninterrupted one.  ``checkpoint_every_steps`` additionally
    checkpoints mid-epoch every N trained batches.
    """
    settings = settings if settings is not None else active_profile()
    model_overrides = model_overrides or {}
    owns_logger = logger is None and log_jsonl is not None
    log = logger if logger is not None else run_logger(jsonl_path=log_jsonl)
    per_seed: List[Dict[str, float]] = []
    history = None
    try:
        log.log_manifest(
            dataset=dataset_name,
            model=model_name,
            pred_len=pred_len,
            univariate=univariate,
            seeds=list(seeds),
            model_overrides=model_overrides,
            settings=asdict(settings),
        )
        for seed in seeds:
            log.event("seed_start", seed=seed)
            seed_everything(seed)  # pin dropout masks etc. spawned off the global rng
            with log.span("data_gen"):
                dataset = load_dataset(
                    dataset_name, n_points=settings.n_points, seed=seed, **settings.dataset_kwargs
                )
                if univariate:
                    dataset = dataset.univariate()
            with log.span("window"):
                train, val, test = make_loaders(dataset, settings, pred_len, seed=seed)
            with log.span("build_model"):
                model = build_model(
                    model_name, dataset.n_dims, dataset.n_dims, pred_len, settings, seed=seed, **model_overrides
                )
            trainer = Trainer(
                model,
                learning_rate=settings.learning_rate,
                max_epochs=settings.max_epochs,
                patience=settings.patience,
                logger=log,
            )
            manager = None
            if checkpoint_dir is not None:
                manager = CheckpointManager(Path(checkpoint_dir) / f"seed{seed}", logger=log)
            history = trainer.fit(
                train, val,
                checkpoint=manager,
                checkpoint_every_steps=checkpoint_every_steps,
                resume=resume and manager is not None,
            )
            with log.span("evaluate"):
                metrics = trainer.evaluate(test)
            per_seed.append(metrics)
            log.event(
                "seed_result",
                seed=seed,
                epochs_run=history.epochs_run,
                stopped_early=history.stopped_early,
                skipped_steps=history.skipped_steps,
                wall_time=history.wall_time,
                **metrics,
            )
        result = ExperimentResult(
            dataset=dataset_name,
            model=model_name,
            pred_len=pred_len,
            mse=float(np.mean([m["mse"] for m in per_seed])),
            mae=float(np.mean([m["mae"] for m in per_seed])),
            per_seed=per_seed,
            history=history,
        )
        log.event("result", dataset=dataset_name, model=model_name, pred_len=pred_len,
                  mse=result.mse, mae=result.mae)
        return result
    finally:
        if owns_logger:
            log.close()
