"""Forecast ensembling: combine several trained forecasters.

Simple, robust combiners that routinely beat their members in the M
competitions: mean, median, and inverse-validation-loss weighting.
Works with any objects following the forecaster protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.tensor import Tensor, inference_mode


class ForecastEnsemble:
    """Combine point forecasts of several models.

    Parameters
    ----------
    models:
        Trained forecasters (each with ``forward``/``point_forecast``).
    weights:
        Optional per-model weights (normalized internally).  Use
        :meth:`fit_weights` to derive them from validation loss.
    method:
        'mean' (weighted) or 'median' (weights ignored).
    """

    def __init__(self, models: Sequence, weights: Optional[Sequence[float]] = None, method: str = "mean") -> None:
        if not models:
            raise ValueError("ensemble needs at least one model")
        if method not in {"mean", "median"}:
            raise ValueError(f"method must be 'mean' or 'median', got {method!r}")
        self.models = list(models)
        self.method = method
        if weights is None:
            weights = np.ones(len(self.models))
        self.weights = self._normalize(weights)

    @staticmethod
    def _normalize(weights: Sequence[float]) -> np.ndarray:
        w = np.asarray(list(weights), dtype=np.float64)
        if len(w) == 0 or np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        return w / w.sum()

    # ------------------------------------------------------------------
    def member_forecasts(self, x_enc, x_mark, x_dec, y_mark) -> np.ndarray:
        """(M, B, pred_len, C) stack of member point forecasts."""
        outputs = []
        for model in self.models:
            model.eval()
            with inference_mode():
                out = model(_t(x_enc), _t(x_mark), _t(x_dec), _t(y_mark))
            outputs.append(model.point_forecast(out))
        return np.stack(outputs, axis=0)

    def predict(self, x_enc, x_mark, x_dec, y_mark) -> np.ndarray:
        members = self.member_forecasts(x_enc, x_mark, x_dec, y_mark)
        if self.method == "median":
            return np.median(members, axis=0)
        return np.tensordot(self.weights, members, axes=(0, 0))

    # ------------------------------------------------------------------
    def fit_weights(self, val_loader, temperature: float = 1.0) -> np.ndarray:
        """Inverse-validation-MSE softmax weights.

        ``temperature`` > 1 flattens toward equal weights; < 1 sharpens
        toward the single best member.
        """
        losses = []
        for model in self.models:
            errors = []
            model.eval()
            with inference_mode():
                for x_enc, x_mark, x_dec, y_mark, y in val_loader:
                    out = model(_t(x_enc), _t(x_mark), _t(x_dec), _t(y_mark))
                    pred = model.point_forecast(out)
                    errors.append(np.mean((pred - y) ** 2))
            losses.append(float(np.mean(errors)))
        scores = -np.asarray(losses) / max(temperature, 1e-12)
        scores -= scores.max()
        exp = np.exp(scores)
        self.weights = exp / exp.sum()
        return self.weights


def _t(value):
    return value if isinstance(value, Tensor) else Tensor(value)
