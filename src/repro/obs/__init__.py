"""repro.obs — structured run telemetry.

Four layers, all zero-overhead when disabled:

- :mod:`repro.obs.tracer` — nestable named spans with hierarchical
  wall-clock aggregation (subsumes ``repro.perf.StageTimer``).
- :mod:`repro.obs.metrics` — counters, gauges, and streaming histograms
  (p50/p95/max, EWMA) for loss, grad-norm, clip events, tape nodes, and
  samples/sec.
- :mod:`repro.obs.sinks` — pluggable event consumers: in-memory ring
  buffer, JSONL writer with run manifest, console renderer, null sink.
- :mod:`repro.obs.runlog` — the :class:`RunLogger` handle the training
  stack emits into, plus the :class:`AnomalyMonitor` that flags
  non-finite losses/gradients and exploding grad norms.

Typical use::

    from repro.obs import run_logger
    from repro.training import run_experiment

    logger = run_logger(jsonl_path="run.jsonl")
    run_experiment("etth1", "conformer", pred_len=12, logger=logger)
    # then: python -m repro.cli obs report run.jsonl
"""

from repro.obs.metrics import Counter, Gauge, MetricRegistry, StreamingHistogram
from repro.obs.report import RunRecord, load_jsonl, load_run, render_report, report_dict
from repro.obs.trace import chrome_trace, render_flamegraph, write_chrome_trace
from repro.obs.runlog import (
    NULL_LOGGER,
    AnomalyMonitor,
    RunLogger,
    build_manifest,
    git_revision,
    run_logger,
)
from repro.obs.sinks import ConsoleSink, JSONLSink, MemorySink, NullSink, Sink
from repro.obs.tracer import SpanRecord, Tracer

__all__ = [
    "AnomalyMonitor",
    "ConsoleSink",
    "Counter",
    "Gauge",
    "JSONLSink",
    "MemorySink",
    "MetricRegistry",
    "NULL_LOGGER",
    "NullSink",
    "RunLogger",
    "RunRecord",
    "Sink",
    "SpanRecord",
    "StreamingHistogram",
    "Tracer",
    "build_manifest",
    "chrome_trace",
    "git_revision",
    "load_jsonl",
    "load_run",
    "render_flamegraph",
    "render_report",
    "report_dict",
    "run_logger",
    "write_chrome_trace",
]
