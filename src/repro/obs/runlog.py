"""The :class:`RunLogger` handle: one object the training stack emits into.

A ``RunLogger`` bundles a :class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.metrics.MetricRegistry`, an
:class:`AnomalyMonitor`, and any number of sinks.  Instrumented code
(``Trainer.fit``, ``run_experiment``, ``walk_forward``, ``grid_search``)
calls the same handful of methods whether telemetry is on or off:

- ``logger.span("forward")`` — nestable timing scope
- ``logger.event("epoch", epoch=3, train_loss=...)`` — structured event
- ``logger.observe("grad_norm", 2.4)`` / ``logger.count("clip_events")``
- ``logger.anomaly("nonfinite_loss", loss=float("nan"))``

When the logger is disabled (the module-level :data:`NULL_LOGGER`, or any
logger with only :class:`~repro.obs.sinks.NullSink` attached), every call
is a constant-time no-op and ``span`` returns a shared nullcontext — the
fused training-step hot path pays nothing.

``close()`` flushes two summary events (``spans`` and ``metrics``) so a
JSONL log contains the aggregate picture alongside the raw stream, then
closes the sinks.
"""

from __future__ import annotations

import contextlib
import math
import platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricRegistry
from repro.obs.sinks import ConsoleSink, JSONLSink, MemorySink, NullSink, Sink
from repro.obs.tracer import Tracer

_NULL_SPAN = contextlib.nullcontext()


# ----------------------------------------------------------------------
# run manifest
# ----------------------------------------------------------------------
def git_revision() -> Optional[str]:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def build_manifest(**extra) -> Dict:
    """Environment fingerprint merged with caller-supplied run facts.

    Records everything needed to audit a benchmark number later: git
    revision, numpy version, python/platform, and whatever the caller
    passes (seed, model name, ``ExperimentSettings`` as a dict, ...).
    """
    import numpy

    manifest: Dict = {
        "git_rev": git_revision(),
        "numpy_version": numpy.__version__,
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "unix_time": time.time(),
    }
    manifest.update(extra)
    return manifest


# ----------------------------------------------------------------------
# anomaly detection
# ----------------------------------------------------------------------
class AnomalyMonitor:
    """Flags training pathologies as structured facts.

    Two families of checks:

    - **non-finite values** — NaN/Inf loss or gradient norm (the silent
      killers: one bad batch poisons Adam's moment buffers forever);
    - **exploding gradients** — grad norm exceeding both an absolute
      threshold and ``ratio`` x its own EWMA, so a healthy warm-up ramp
      does not alarm but a sudden 10x spike does.
    """

    def __init__(
        self,
        grad_norm_threshold: float = 1e3,
        grad_norm_ratio: float = 10.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        self.grad_norm_threshold = grad_norm_threshold
        self.grad_norm_ratio = grad_norm_ratio
        self.ewma_alpha = ewma_alpha
        self._grad_ewma: Optional[float] = None
        self.flagged: int = 0

    def check_loss(self, value: float) -> Optional[Dict]:
        if not math.isfinite(value):
            self.flagged += 1
            return {"anomaly": "nonfinite_loss", "loss": value}
        return None

    def check_grad_norm(self, value: float) -> Optional[Dict]:
        if not math.isfinite(value):
            self.flagged += 1
            return {"anomaly": "nonfinite_grad_norm", "grad_norm": value}
        baseline = self._grad_ewma
        self._grad_ewma = value if baseline is None else (
            self.ewma_alpha * value + (1.0 - self.ewma_alpha) * baseline
        )
        if (
            baseline is not None
            and value > self.grad_norm_threshold
            and value > self.grad_norm_ratio * baseline
        ):
            self.flagged += 1
            return {
                "anomaly": "exploding_grad_norm",
                "grad_norm": value,
                "ewma": baseline,
                "ratio": value / baseline if baseline > 0 else float("inf"),
            }
        return None


# ----------------------------------------------------------------------
# the logger handle
# ----------------------------------------------------------------------
class RunLogger:
    """Telemetry handle threaded through the training stack."""

    def __init__(
        self,
        sinks: Iterable[Sink] = (),
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricRegistry] = None,
        anomaly_monitor: Optional[AnomalyMonitor] = None,
        clock=time.time,
    ) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.tracer = tracer if tracer is not None else Tracer()
        if self.tracer.on_close is None:
            # stream each closed span into the sinks so `obs trace` can
            # rebuild the timeline (aggregates still land in close())
            self.tracer.on_close = self._emit_span
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.anomaly_monitor = (
            anomaly_monitor if anomaly_monitor is not None else AnomalyMonitor()
        )
        self._clock = clock
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when at least one attached sink consumes events."""
        return any(s.enabled for s in self.sinks)

    @staticmethod
    def null() -> "RunLogger":
        """The shared disabled logger (all calls are no-ops)."""
        return NULL_LOGGER

    def add_sink(self, sink: Sink) -> "RunLogger":
        if self is NULL_LOGGER:
            raise ValueError("NULL_LOGGER is shared and immutable; build a RunLogger instead")
        self.sinks.append(sink)
        return self

    def ensure_console(self) -> "RunLogger":
        """Attach a :class:`ConsoleSink` unless one is already present."""
        if not any(isinstance(s, ConsoleSink) for s in self.sinks):
            self.add_sink(ConsoleSink())
        return self

    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> None:
        """Emit ``{"ts": ..., "kind": kind, **fields}`` to every sink."""
        if not self.enabled:
            return
        payload = {"ts": self._clock(), "kind": kind}
        payload.update(fields)
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(payload)

    def span(self, name: str):
        """Timing scope; a shared no-op context when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name)

    def _emit_span(self, record) -> None:
        """Tracer ``on_close`` target: one ``span`` event per closed span.

        Start/end are monotonic ``perf_counter`` seconds — consistent
        within a process, which is all the Chrome-trace export needs.
        """
        if not self.enabled:
            return
        self.event(
            "span",
            name=record.name,
            path=record.path,
            depth=record.depth,
            start=record.start,
            end=record.end,
        )

    # metric sugar ------------------------------------------------------
    def observe(self, name: str, value: Optional[float]) -> None:
        if not self.enabled or value is None:
            return
        self.metrics.histogram(name).observe(value)

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.metrics.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name).set(value)

    # anomaly sugar -----------------------------------------------------
    def anomaly(self, kind: str, **fields) -> None:
        """Emit an ``anomaly`` event and count it."""
        if not self.enabled:
            return
        self.count("anomalies")
        self.event("anomaly", anomaly=kind, **fields)

    def check_loss(self, value: float) -> bool:
        """True (and emits an anomaly event) when the loss is non-finite."""
        if not self.enabled:
            return not math.isfinite(value)
        finding = self.anomaly_monitor.check_loss(value)
        if finding is not None:
            self.count("anomalies")
            self.event("anomaly", **finding)
            return True
        return False

    def check_grad_norm(self, value: float) -> bool:
        """True when the grad norm is non-finite; exploding norms are
        reported but return False (the step is still usable)."""
        if not self.enabled:
            return not math.isfinite(value)
        finding = self.anomaly_monitor.check_grad_norm(value)
        if finding is not None:
            self.count("anomalies")
            self.event("anomaly", **finding)
            return finding["anomaly"] == "nonfinite_grad_norm"
        return False

    # structured helpers ------------------------------------------------
    def record_cache_stats(self) -> None:
        """Gauge the engine's BufferArena and PlanCache hit/miss/slot stats.

        Lazy-imports the engine so ``repro.obs`` stays importable without
        it; called automatically by :meth:`close` so every run log's
        ``metrics`` event (and hence ``obs report``) carries the numbers
        that previously only surfaced inside ``BENCH_inference.json``.
        """
        if not self.enabled:
            return
        from repro.tensor import get_arena, plan_cache

        for key, value in get_arena().stats().items():
            self.gauge(f"arena.{key}", value)
        for key, value in plan_cache().stats().items():
            self.gauge(f"plan_cache.{key}", value)

    def record_memory(self, profile) -> None:
        """Gauge an op-level profiler's byte accounting.

        Accepts anything with ``memory_stats()`` (duck-typed on
        :class:`repro.perf.OpLevelProfiler` so ``repro.obs`` never
        imports ``repro.perf``): live/peak tensor bytes, cumulative
        allocated bytes, and tape-node count/bytes.
        """
        if not self.enabled:
            return
        for key, value in profile.memory_stats().items():
            self.gauge(f"mem.{key}", value)

    def log_manifest(self, **fields) -> None:
        """Emit the run manifest (should be the first event of a run)."""
        if not self.enabled:
            return
        self.event("manifest", **build_manifest(**fields))

    def record_op_profile(self, profile) -> None:
        """Bridge a :class:`repro.perf.OpProfiler` into the registry.

        Accepts anything with ``total_nodes``/``as_dict()`` (duck-typed so
        ``repro.obs`` never imports ``repro.perf``).
        """
        if not self.enabled:
            return
        self.metrics.histogram("tape_nodes").observe(profile.total_nodes)
        self.event("op_profile", **profile.as_dict())

    # lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Flush span/metric summary events and close all sinks."""
        if self._closed or self is NULL_LOGGER:
            return
        if self.enabled:
            self.record_cache_stats()
            if self.tracer.seconds:
                self.event("spans", spans=self.tracer.as_dict())
            snapshot = self.metrics.snapshot()
            if snapshot:
                self.event("metrics", metrics=snapshot)
        for sink in self.sinks:
            sink.close()
        self._closed = True

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled logger — the default everywhere telemetry is optional.
NULL_LOGGER = RunLogger(sinks=(NullSink(),))


def run_logger(
    jsonl_path: Union[str, "Path", None] = None,
    console: bool = False,
    memory: Optional[int] = None,
    manifest: Optional[Dict] = None,
) -> RunLogger:
    """Build a :class:`RunLogger` from the common sink recipes.

    Parameters
    ----------
    jsonl_path: write a JSONL event log (manifest first when given).
    console: attach a :class:`ConsoleSink` (epoch/anomaly lines).
    memory: attach a :class:`MemorySink` with this capacity.
    manifest: extra manifest fields, emitted immediately.
    """
    sinks: List[Sink] = []
    if jsonl_path is not None:
        sinks.append(JSONLSink(jsonl_path))
    if console:
        sinks.append(ConsoleSink())
    if memory is not None:
        sinks.append(MemorySink(capacity=memory))
    if not sinks:
        return NULL_LOGGER
    logger = RunLogger(sinks=sinks)
    if manifest is not None:
        logger.log_manifest(**manifest)
    return logger
