"""Metric primitives: counters, gauges, and streaming histograms.

All metrics are cheap enough to update per batch.  A
:class:`StreamingHistogram` keeps O(1) aggregates (count/sum/min/max and
an exponentially-weighted moving average) plus a bounded ring of recent
observations from which it answers percentile queries (p50/p95 by
default) — so loss, grad-norm, and samples/sec distributions stay
queryable without unbounded memory.  A :class:`MetricRegistry` is a
get-or-create namespace whose :meth:`~MetricRegistry.snapshot` is
JSON-serialisable and feeds the ``metrics`` event in run logs.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, Optional


class Counter:
    """Monotonically increasing count (clip events, skipped steps, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (current learning rate, active epoch, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class StreamingHistogram:
    """Streaming distribution summary: quantiles over a recent window,
    exact count/sum/min/max over everything ever observed, and an EWMA.

    Parameters
    ----------
    window:
        Ring-buffer capacity backing the percentile estimates; quantiles
        describe the last ``window`` observations, the scalar aggregates
        describe the full stream.
    ewma_alpha:
        Smoothing factor of the exponentially-weighted moving average
        (higher = more reactive).
    """

    def __init__(self, name: str, window: int = 512, ewma_alpha: float = 0.1) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.ewma: Optional[float] = None
        self.ewma_alpha = ewma_alpha
        self.nonfinite = 0
        self._ring: deque = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # keep poison out of the aggregates but remember we saw it
            self.nonfinite += 1
            return
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.ewma = value if self.ewma is None else (
            self.ewma_alpha * value + (1.0 - self.ewma_alpha) * self.ewma
        )
        self._ring.append(value)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the recent window."""
        if not self._ring:
            return float("nan")
        ordered = sorted(self._ring)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def percentiles(self, qs: Iterable[float] = (0.5, 0.95)) -> Dict[str, float]:
        return {f"p{int(round(q * 100))}": self.quantile(q) for q in qs}

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean if self.count else None,
            "min": self.min,
            "max": self.max,
            "ewma": self.ewma,
            "p50": self.quantile(0.5) if self._ring else None,
            "p95": self.quantile(0.95) if self._ring else None,
            "nonfinite": self.nonfinite,
        }


class MetricRegistry:
    """Get-or-create namespace of named metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, window: int = 512, ewma_alpha: float = 0.1) -> StreamingHistogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = StreamingHistogram(name, window=window, ewma_alpha=ewma_alpha)
            self._metrics[name] = metric
        elif not isinstance(metric, StreamingHistogram):
            raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.items())

    def snapshot(self) -> Dict[str, dict]:
        """JSON-serialisable state of every registered metric."""
        return {name: metric.as_dict() for name, metric in sorted(self._metrics.items())}
