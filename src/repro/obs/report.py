"""Render a JSONL run log back into a human-readable summary.

``python -m repro.cli obs report run.jsonl`` loads the event stream
written by a :class:`~repro.obs.runlog.RunLogger` and prints:

- the run manifest (model, dataset, seed, git rev, numpy version, ...),
- a per-epoch table (train/val loss, grad norm, samples/sec),
- the per-stage wall-clock breakdown from the ``spans`` summary event,
- metric distributions (p50/p95/max/EWMA) from the ``metrics`` event,
- every anomaly, in order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class RunRecord:
    """Parsed view of one JSONL run log."""

    path: Optional[Path] = None
    manifest: Dict = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)
    epochs: List[Dict] = field(default_factory=list)
    anomalies: List[Dict] = field(default_factory=list)
    spans: Dict[str, Dict] = field(default_factory=dict)
    metrics: Dict[str, Dict] = field(default_factory=dict)
    op_profile: Dict = field(default_factory=dict)
    #: malformed/truncated JSONL lines skipped by the loader
    skipped_lines: int = 0

    def of_kind(self, kind: str) -> List[Dict]:
        return [e for e in self.events if e.get("kind") == kind]


def iter_jsonl(path: Union[str, Path]):
    """Yield dict records from a JSONL file; return the skip count.

    Tolerant line-by-line reader shared by run logs and the bench
    history: blank lines are ignored; lines that fail to parse or do not
    hold a JSON object are *counted and skipped*, never fatal (a crashed
    writer truncates its last line).  The skip count is the generator's
    return value — use :func:`load_jsonl` for the plain
    ``(records, skipped)`` pair.
    """
    skipped = 0
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            yield record
    return skipped


def load_jsonl(path: Union[str, Path]):
    """All good records of a JSONL file plus the malformed-line count."""
    records: List[Dict] = []
    generator = iter_jsonl(path)
    while True:
        try:
            records.append(next(generator))
        except StopIteration as stop:
            return records, int(stop.value or 0)


def load_run(path: Union[str, Path]) -> RunRecord:
    """Parse a JSONL run log into a :class:`RunRecord`.

    Tolerates truncated or corrupt lines (a crashed run may cut its last
    event mid-write) — each bad line is skipped and counted in
    ``RunRecord.skipped_lines``; the report surfaces the count as a
    warning instead of raising.
    """
    path = Path(path)
    run = RunRecord(path=path)
    events, run.skipped_lines = load_jsonl(path)
    for event in events:
        run.events.append(event)
        kind = event.get("kind")
        if kind == "manifest" and not run.manifest:
            run.manifest = event
        elif kind == "epoch":
            run.epochs.append(event)
        elif kind == "anomaly":
            run.anomalies.append(event)
        elif kind == "spans":
            spans = event.get("spans", {})
            run.spans = spans if isinstance(spans, dict) else {}
        elif kind == "metrics":
            metrics = event.get("metrics", {})
            run.metrics = metrics if isinstance(metrics, dict) else {}
        elif kind == "op_profile":
            run.op_profile = event
    return run


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value, width: int = 10, digits: int = 4) -> str:
    if value is None:
        return f"{'-':>{width}}"
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value:>{width}}"


_MANIFEST_KEYS = (
    "run_id",
    "dataset",
    "model",
    "pred_len",
    "seed",
    "seeds",
    "git_rev",
    "numpy_version",
    "python_version",
)


def _render_op_profile(profile: Dict, top: int = 15) -> List[str]:
    """Top-K per-op table with module attribution (``op_profile`` event).

    Handles both the v2 schema (``top`` rows with wall seconds and bytes
    from :class:`repro.perf.OpLevelProfiler`) and the legacy v1 layout
    (``per_op`` with tape_nodes/backward_seconds only).
    """
    lines: List[str] = []
    rows = profile.get("top")
    if isinstance(rows, list) and rows:
        lines.append(f"op profile (top {min(top, len(rows))} by wall time)")
        lines.append(
            f"  {'op':<18} {'module':<32} {'calls':>7} {'seconds':>10} {'MB':>8}"
        )
        lines.append("  " + "-" * 80)
        for row in rows[:top]:
            if not isinstance(row, dict):
                continue
            lines.append(
                f"  {str(row.get('op', '?')):<18} {str(row.get('module', '?')):<32.32} "
                f"{_fmt(row.get('calls'), 7)} {_fmt(row.get('seconds'), 10, 6)} "
                f"{_fmt((row.get('nbytes') or 0) / 1e6, 8, 2)}"
            )
        memory = profile.get("memory")
        if isinstance(memory, dict):
            lines.append(
                "  memory: "
                f"allocated {memory.get('allocated_bytes', 0) / 1e6:.2f} MB, "
                f"peak live {memory.get('peak_bytes', 0) / 1e6:.2f} MB, "
                f"taped {memory.get('taped_nodes', 0)} nodes / "
                f"{memory.get('taped_bytes', 0) / 1e6:.2f} MB"
            )
        return lines
    per_op = profile.get("per_op")
    if isinstance(per_op, dict) and per_op:
        lines.append("op profile (tape nodes / backward time)")
        lines.append(f"  {'op':<18} {'nodes':>8} {'backward s':>12}")
        lines.append("  " + "-" * 40)
        ranked = sorted(
            per_op.items(),
            key=lambda kv: -(kv[1].get("backward_seconds", 0.0) if isinstance(kv[1], dict) else 0.0),
        )
        for op, stats in ranked[:top]:
            if not isinstance(stats, dict):
                continue
            lines.append(
                f"  {op:<18} {_fmt(stats.get('tape_nodes'), 8)} "
                f"{_fmt(stats.get('backward_seconds'), 12, 6)}"
            )
    return lines


def render_report(run: RunRecord, top: int = 15) -> str:
    """Multi-section fixed-width report of one run log."""
    lines: List[str] = []
    title = str(run.path) if run.path is not None else "<run>"
    lines.append(f"run log: {title} ({len(run.events)} events)")
    if run.skipped_lines:
        lines.append(
            f"warning: skipped {run.skipped_lines} malformed line(s) "
            "(truncated or corrupt JSONL)"
        )

    if run.manifest:
        lines.append("")
        lines.append("manifest")
        lines.append("-" * 60)
        for key in _MANIFEST_KEYS:
            if key in run.manifest:
                lines.append(f"  {key:<16} {run.manifest[key]}")
        settings = run.manifest.get("settings")
        if isinstance(settings, dict):
            compact = ", ".join(f"{k}={v}" for k, v in list(settings.items())[:8])
            lines.append(f"  {'settings':<16} {compact}{', ...' if len(settings) > 8 else ''}")

    if run.epochs:
        lines.append("")
        lines.append("epochs")
        lines.append(
            f"  {'epoch':>5} {'train_loss':>12} {'val_loss':>12} {'grad_norm':>12} {'samples/s':>12}"
        )
        lines.append("  " + "-" * 58)
        for e in run.epochs:
            lines.append(
                "  "
                + _fmt(e.get("epoch"), 5)
                + " "
                + _fmt(e.get("train_loss"), 12)
                + " "
                + _fmt(e.get("val_loss"), 12)
                + " "
                + _fmt(e.get("grad_norm"), 12)
                + " "
                + _fmt(e.get("samples_per_sec"), 12, 1)
            )

    if run.spans:
        lines.append("")
        lines.append("stages (wall clock)")
        lines.append(f"  {'span':<36} {'calls':>8} {'seconds':>12} {'mean ms':>10}")
        lines.append("  " + "-" * 70)
        for path in sorted(run.spans, key=lambda p: -run.spans[p].get("seconds", 0.0)):
            stats = run.spans[path]
            calls = stats.get("calls", 0)
            seconds = stats.get("seconds", 0.0)
            mean_ms = (seconds / calls) * 1e3 if calls else 0.0
            lines.append(f"  {path:<36} {calls:>8} {seconds:>12.6f} {mean_ms:>10.3f}")

    if run.spans:
        from repro.obs.trace import render_flamegraph

        lines.append("")
        lines.append("span tree")
        lines.append("  " + render_flamegraph(run.spans).replace("\n", "\n  "))

    if run.op_profile:
        lines.append("")
        lines.extend(_render_op_profile(run.op_profile, top=top))

    if run.metrics:
        lines.append("")
        lines.append("metrics")
        lines.append(f"  {'metric':<24} {'count':>8} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10} {'ewma':>10}")
        lines.append("  " + "-" * 88)
        for name in sorted(run.metrics):
            m = run.metrics[name]
            if m.get("type") == "histogram":
                lines.append(
                    f"  {name:<24} {_fmt(m.get('count'), 8)} {_fmt(m.get('mean'))} "
                    f"{_fmt(m.get('p50'))} {_fmt(m.get('p95'))} {_fmt(m.get('max'))} {_fmt(m.get('ewma'))}"
                )
            else:
                lines.append(f"  {name:<24} {_fmt(m.get('value'), 8)}  ({m.get('type')})")

    lines.append("")
    if run.anomalies:
        # sanitizer findings (repro.analysis) get their own section: they
        # carry op/stack attribution and drown out the training anomalies
        sanitizer = [a for a in run.anomalies if str(a.get("anomaly", "")).startswith("sanitizer_")]
        training = [a for a in run.anomalies if a not in sanitizer]
        if training:
            lines.append(f"anomalies ({len(training)})")
            for a in training:
                detail = {k: v for k, v in a.items() if k not in ("ts", "kind", "anomaly")}
                lines.append(f"  {a.get('anomaly')}: {detail}")
        else:
            lines.append("anomalies: none")
        if sanitizer:
            lines.append(f"sanitizer findings ({len(sanitizer)})")
            for a in sanitizer:
                kind = str(a.get("anomaly", "")).replace("sanitizer_", "", 1)
                lines.append(f"  [{kind}] op={a.get('op')}: {a.get('message')}")
    else:
        lines.append("anomalies: none")
    return "\n".join(lines)


def report_dict(run: RunRecord) -> Dict:
    """Machine-readable summary (``obs report --json``)."""
    return {
        "path": str(run.path) if run.path is not None else None,
        "n_events": len(run.events),
        "skipped_lines": run.skipped_lines,
        "manifest": run.manifest,
        "epochs": run.epochs,
        "spans": run.spans,
        "metrics": run.metrics,
        "op_profile": run.op_profile,
        "anomalies": run.anomalies,
    }
