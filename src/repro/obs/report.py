"""Render a JSONL run log back into a human-readable summary.

``python -m repro.cli obs report run.jsonl`` loads the event stream
written by a :class:`~repro.obs.runlog.RunLogger` and prints:

- the run manifest (model, dataset, seed, git rev, numpy version, ...),
- a per-epoch table (train/val loss, grad norm, samples/sec),
- the per-stage wall-clock breakdown from the ``spans`` summary event,
- metric distributions (p50/p95/max/EWMA) from the ``metrics`` event,
- every anomaly, in order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class RunRecord:
    """Parsed view of one JSONL run log."""

    path: Optional[Path] = None
    manifest: Dict = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)
    epochs: List[Dict] = field(default_factory=list)
    anomalies: List[Dict] = field(default_factory=list)
    spans: Dict[str, Dict] = field(default_factory=dict)
    metrics: Dict[str, Dict] = field(default_factory=dict)

    def of_kind(self, kind: str) -> List[Dict]:
        return [e for e in self.events if e.get("kind") == kind]


def load_run(path: Union[str, Path]) -> RunRecord:
    """Parse a JSONL run log into a :class:`RunRecord`.

    Tolerates trailing garbage lines (a crashed run may truncate its last
    event) — malformed lines are skipped, not fatal.
    """
    path = Path(path)
    run = RunRecord(path=path)
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict):
                continue
            run.events.append(event)
            kind = event.get("kind")
            if kind == "manifest" and not run.manifest:
                run.manifest = event
            elif kind == "epoch":
                run.epochs.append(event)
            elif kind == "anomaly":
                run.anomalies.append(event)
            elif kind == "spans":
                run.spans = event.get("spans", {})
            elif kind == "metrics":
                run.metrics = event.get("metrics", {})
    return run


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value, width: int = 10, digits: int = 4) -> str:
    if value is None:
        return f"{'-':>{width}}"
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value:>{width}}"


_MANIFEST_KEYS = (
    "run_id",
    "dataset",
    "model",
    "pred_len",
    "seed",
    "seeds",
    "git_rev",
    "numpy_version",
    "python_version",
)


def render_report(run: RunRecord) -> str:
    """Multi-section fixed-width report of one run log."""
    lines: List[str] = []
    title = str(run.path) if run.path is not None else "<run>"
    lines.append(f"run log: {title} ({len(run.events)} events)")

    if run.manifest:
        lines.append("")
        lines.append("manifest")
        lines.append("-" * 60)
        for key in _MANIFEST_KEYS:
            if key in run.manifest:
                lines.append(f"  {key:<16} {run.manifest[key]}")
        settings = run.manifest.get("settings")
        if isinstance(settings, dict):
            compact = ", ".join(f"{k}={v}" for k, v in list(settings.items())[:8])
            lines.append(f"  {'settings':<16} {compact}{', ...' if len(settings) > 8 else ''}")

    if run.epochs:
        lines.append("")
        lines.append("epochs")
        lines.append(
            f"  {'epoch':>5} {'train_loss':>12} {'val_loss':>12} {'grad_norm':>12} {'samples/s':>12}"
        )
        lines.append("  " + "-" * 58)
        for e in run.epochs:
            lines.append(
                "  "
                + _fmt(e.get("epoch"), 5)
                + " "
                + _fmt(e.get("train_loss"), 12)
                + " "
                + _fmt(e.get("val_loss"), 12)
                + " "
                + _fmt(e.get("grad_norm"), 12)
                + " "
                + _fmt(e.get("samples_per_sec"), 12, 1)
            )

    if run.spans:
        lines.append("")
        lines.append("stages (wall clock)")
        lines.append(f"  {'span':<36} {'calls':>8} {'seconds':>12} {'mean ms':>10}")
        lines.append("  " + "-" * 70)
        for path in sorted(run.spans, key=lambda p: -run.spans[p].get("seconds", 0.0)):
            stats = run.spans[path]
            calls = stats.get("calls", 0)
            seconds = stats.get("seconds", 0.0)
            mean_ms = (seconds / calls) * 1e3 if calls else 0.0
            lines.append(f"  {path:<36} {calls:>8} {seconds:>12.6f} {mean_ms:>10.3f}")

    if run.metrics:
        lines.append("")
        lines.append("metrics")
        lines.append(f"  {'metric':<24} {'count':>8} {'mean':>10} {'p50':>10} {'p95':>10} {'max':>10} {'ewma':>10}")
        lines.append("  " + "-" * 88)
        for name in sorted(run.metrics):
            m = run.metrics[name]
            if m.get("type") == "histogram":
                lines.append(
                    f"  {name:<24} {_fmt(m.get('count'), 8)} {_fmt(m.get('mean'))} "
                    f"{_fmt(m.get('p50'))} {_fmt(m.get('p95'))} {_fmt(m.get('max'))} {_fmt(m.get('ewma'))}"
                )
            else:
                lines.append(f"  {name:<24} {_fmt(m.get('value'), 8)}  ({m.get('type')})")

    lines.append("")
    if run.anomalies:
        # sanitizer findings (repro.analysis) get their own section: they
        # carry op/stack attribution and drown out the training anomalies
        sanitizer = [a for a in run.anomalies if str(a.get("anomaly", "")).startswith("sanitizer_")]
        training = [a for a in run.anomalies if a not in sanitizer]
        if training:
            lines.append(f"anomalies ({len(training)})")
            for a in training:
                detail = {k: v for k, v in a.items() if k not in ("ts", "kind", "anomaly")}
                lines.append(f"  {a.get('anomaly')}: {detail}")
        else:
            lines.append("anomalies: none")
        if sanitizer:
            lines.append(f"sanitizer findings ({len(sanitizer)})")
            for a in sanitizer:
                kind = str(a.get("anomaly", "")).replace("sanitizer_", "", 1)
                lines.append(f"  [{kind}] op={a.get('op')}: {a.get('message')}")
    else:
        lines.append("anomalies: none")
    return "\n".join(lines)


def report_dict(run: RunRecord) -> Dict:
    """Machine-readable summary (``obs report --json``)."""
    return {
        "path": str(run.path) if run.path is not None else None,
        "n_events": len(run.events),
        "manifest": run.manifest,
        "epochs": run.epochs,
        "spans": run.spans,
        "metrics": run.metrics,
        "anomalies": run.anomalies,
    }
