"""Nestable named tracing spans with hierarchical wall-clock aggregation.

A :class:`Tracer` times ``with tracer.span("epoch"): ...`` blocks.  Spans
nest: a span opened inside another is keyed by its slash-joined path
(``fit/epoch/batch/forward``), so the report can attribute time per stage
of the data-gen → window → epoch → batch → forward/backward/step
pipeline.  Aggregation is streaming — only per-path totals and a bounded
ring of recent raw :class:`SpanRecord` rows are retained, so a tracer can
run for millions of batches without growing.

``Tracer(flat=True)`` keys by leaf name only, which is exactly the old
``repro.perf.StageTimer`` behaviour (that class is now a thin subclass).
"""

from __future__ import annotations

import contextlib
from collections import Counter, deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: its path, depth, and wall-clock extent."""

    name: str
    path: str
    depth: int
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


class Tracer:
    """Aggregate wall-clock time of named, nestable spans.

    Parameters
    ----------
    flat:
        Key aggregates by leaf name instead of the full nested path
        (``StageTimer`` compatibility).
    max_records:
        Bound on retained raw :class:`SpanRecord` rows (aggregates are
        unaffected; the ring simply forgets the oldest spans).
    on_close:
        Optional callback invoked with each :class:`SpanRecord` as the
        span closes — the :class:`~repro.obs.runlog.RunLogger` uses this
        to stream span events into sinks.
    """

    def __init__(
        self,
        flat: bool = False,
        max_records: int = 1024,
        on_close: Optional[Callable[[SpanRecord], None]] = None,
        clock: Callable[[], float] = perf_counter,
    ) -> None:
        self.flat = flat
        self.seconds: Dict[str, float] = {}
        self.calls: Counter = Counter()
        self.records: deque = deque(maxlen=max_records)
        self.on_close = on_close
        self._clock = clock
        self._stack: List[str] = []

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def current_path(self) -> str:
        """Slash-joined path of the innermost open span ('' when idle)."""
        return "/".join(self._stack)

    @contextlib.contextmanager
    def span(self, name: str) -> Iterator[SpanRecord]:
        """Time the enclosed block under ``name`` (nested under open spans)."""
        self._stack.append(name)
        path = name if self.flat else "/".join(self._stack)
        depth = len(self._stack) - 1
        start = self._clock()
        try:
            yield SpanRecord(name=name, path=path, depth=depth, start=start, end=start)
        finally:
            end = self._clock()
            self._stack.pop()
            self.seconds[path] = self.seconds.get(path, 0.0) + (end - start)
            self.calls[path] += 1
            record = SpanRecord(name=name, path=path, depth=depth, start=start, end=end)
            self.records.append(record)
            if self.on_close is not None:
                self.on_close(record)

    # ``StageTimer`` spelling, kept so the two APIs stay interchangeable.
    section = span

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """``{path: {"seconds": float, "calls": int}}`` aggregates."""
        return {
            path: {"seconds": self.seconds[path], "calls": self.calls[path]}
            for path in self.seconds
        }

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's aggregates into this one."""
        for path, seconds in other.seconds.items():
            self.seconds[path] = self.seconds.get(path, 0.0) + seconds
        self.calls.update(other.calls)

    def summary(self) -> str:
        """Fixed-width table of aggregated span times, heaviest first."""
        lines = [f"{'span':<32} {'calls':>8} {'seconds':>12} {'mean ms':>10}", "-" * 66]
        for path in sorted(self.seconds, key=lambda p: -self.seconds[p]):
            calls = self.calls[path]
            seconds = self.seconds[path]
            mean_ms = (seconds / calls) * 1e3 if calls else 0.0
            lines.append(f"{path:<32} {calls:>8d} {seconds:>12.6f} {mean_ms:>10.3f}")
        return "\n".join(lines)
