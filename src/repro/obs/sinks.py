"""Event sinks: where structured run events go.

Every sink consumes plain-dict events (``{"ts": ..., "kind": ..., ...}``)
via :meth:`Sink.emit`.  Four implementations:

- :class:`NullSink` — ``enabled = False``; the :class:`RunLogger` skips
  all work when only null sinks are attached, keeping telemetry
  zero-overhead when disabled.
- :class:`MemorySink` — bounded ring buffer, handy for tests and
  in-process inspection.
- :class:`JSONLSink` — one JSON object per line; the first line is the
  run manifest, making every log self-describing and replayable by
  ``python -m repro.cli obs report``.
- :class:`ConsoleSink` — renders ``epoch`` events exactly like the old
  ``Trainer(verbose=True)`` print lines, plus anomaly warnings.
"""

from __future__ import annotations

import io
import json
import sys
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union


class Sink:
    """Event consumer interface."""

    enabled: bool = True

    def emit(self, event: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Discards everything; its ``enabled = False`` flag lets callers
    short-circuit event construction entirely."""

    enabled = False

    def emit(self, event: Dict) -> None:
        pass


class MemorySink(Sink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._ring: deque = deque(maxlen=capacity)

    def emit(self, event: Dict) -> None:
        self._ring.append(event)

    @property
    def events(self) -> List[Dict]:
        return list(self._ring)

    def of_kind(self, kind: str) -> List[Dict]:
        return [e for e in self._ring if e.get("kind") == kind]

    def clear(self) -> None:
        self._ring.clear()


class JSONLSink(Sink):
    """Append events as JSON lines to ``path`` (or a provided stream)."""

    def __init__(self, path: Union[str, Path, None], stream: Optional[TextIO] = None) -> None:
        if (path is None) == (stream is None):
            raise ValueError("provide exactly one of path or stream")
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO = open(self.path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = stream
            self._owns_stream = False
        self.events_written = 0

    def emit(self, event: Dict) -> None:
        self._stream.write(json.dumps(event, default=_jsonable) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


def _jsonable(value):
    """Fallback serialiser: numpy scalars/arrays and arbitrary objects."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


class ConsoleSink(Sink):
    """Human-readable rendering of selected event kinds.

    ``epoch`` events reproduce the historical ``Trainer(verbose=True)``
    output byte-for-byte; ``anomaly`` events get a loud one-liner; other
    kinds are ignored unless listed in ``kinds``.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        kinds: Sequence[str] = ("epoch", "anomaly"),
    ) -> None:
        # None = resolve sys.stdout at emit time, so redirection works
        self._stream = stream
        self.kinds = tuple(kinds)

    def emit(self, event: Dict) -> None:
        kind = event.get("kind")
        if kind not in self.kinds:
            return
        if kind == "epoch":
            line = f"epoch {event.get('epoch')}: train={event.get('train_loss'):.4f}"
            if event.get("val_loss") is not None:
                line += f" val={event.get('val_loss'):.4f}"
        elif kind == "anomaly":
            detail = {
                k: v for k, v in event.items() if k not in ("ts", "kind", "anomaly")
            }
            line = f"[anomaly] {event.get('anomaly')}: {detail}"
        else:
            payload = {k: v for k, v in event.items() if k not in ("ts", "kind")}
            line = f"[{kind}] {payload}"
        stream = self._stream if self._stream is not None else sys.stdout
        stream.write(line + "\n")


def console_to_string() -> "tuple[ConsoleSink, io.StringIO]":
    """A console sink writing into a StringIO (test/introspection helper)."""
    buffer = io.StringIO()
    return ConsoleSink(stream=buffer), buffer
