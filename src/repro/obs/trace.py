"""Chrome-trace (Perfetto) timeline export from JSONL run logs.

``python -m repro.cli obs trace run.jsonl -o trace.json`` converts the
event stream written by a :class:`~repro.obs.runlog.RunLogger` into the
Chrome Trace Event JSON format — loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

- every streamed ``span`` event becomes a complete ("X") slice on the
  *spans* track, nested by its recorded start/end times;
- the ``timeline`` rows of an ``op_profile`` event (recorded via
  :func:`repro.perf.op_profile`) become slices on the *ops* track, with
  module, bytes, and taped-ness in ``args``.

All timestamps are microseconds relative to the earliest slice, from the
same monotonic ``perf_counter`` clock, so span and op tracks align.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.report import RunRecord, load_run

#: process/thread ids used in the exported trace
TRACE_PID = 1
SPAN_TID = 1
OP_TID = 2


def _metadata_events() -> List[Dict]:
    return [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": SPAN_TID,
            "args": {"name": "spans"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": OP_TID,
            "args": {"name": "ops"},
        },
    ]


def chrome_trace(run: Union[RunRecord, str, Path], include_ops: bool = True) -> Dict:
    """Build a Chrome-trace dict from a run log (path or parsed record)."""
    if not isinstance(run, RunRecord):
        run = load_run(run)

    spans = [
        e
        for e in run.of_kind("span")
        if isinstance(e.get("start"), (int, float)) and isinstance(e.get("end"), (int, float))
    ]
    ops: List[Dict] = []
    if include_ops and run.op_profile:
        ops = [
            row
            for row in run.op_profile.get("timeline", ())
            if isinstance(row, dict)
            and isinstance(row.get("start"), (int, float))
            and isinstance(row.get("end"), (int, float))
        ]

    starts = [e["start"] for e in spans] + [r["start"] for r in ops]
    base = min(starts) if starts else 0.0

    events: List[Dict] = _metadata_events()
    for e in spans:
        events.append(
            {
                "name": str(e.get("name", e.get("path", "span"))),
                "cat": "span",
                "ph": "X",
                "ts": (e["start"] - base) * 1e6,
                "dur": max(e["end"] - e["start"], 0.0) * 1e6,
                "pid": TRACE_PID,
                "tid": SPAN_TID,
                "args": {"path": e.get("path"), "depth": e.get("depth")},
            }
        )
    for row in ops:
        events.append(
            {
                "name": str(row.get("op", "op")),
                "cat": "op",
                "ph": "X",
                "ts": (row["start"] - base) * 1e6,
                "dur": max(row["end"] - row["start"], 0.0) * 1e6,
                "pid": TRACE_PID,
                "tid": OP_TID,
                "args": {
                    "module": row.get("module"),
                    "nbytes": row.get("nbytes"),
                    "taped": row.get("taped"),
                },
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": str(run.path) if run.path is not None else "<run>",
            "n_spans": len(spans),
            "n_ops": len(ops),
        },
    }


def write_chrome_trace(
    run: Union[RunRecord, str, Path],
    path: Union[str, Path],
    include_ops: bool = True,
) -> Path:
    """Export a run log's timeline to ``path`` as Chrome-trace JSON."""
    trace = chrome_trace(run, include_ops=include_ops)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace) + "\n", encoding="utf-8")
    return path


def render_flamegraph(
    spans: Dict[str, Dict],
    width: int = 40,
    max_depth: Optional[int] = None,
) -> str:
    """Text flamegraph of slash-joined span aggregates.

    ``spans`` is the ``{path: {"seconds", "calls"}}`` mapping from a
    run log's ``spans`` summary event (or ``Tracer.as_dict()``).  Each
    path is indented under its parent with a bar scaled to the root
    total, so hot subtrees are visible at a glance in a terminal.
    """
    if not spans:
        return "(no spans)"
    roots_total = sum(
        stats.get("seconds", 0.0) for path, stats in spans.items() if "/" not in path
    ) or max(stats.get("seconds", 0.0) for stats in spans.values())
    lines = [f"{'span':<44} {'seconds':>10} {'%':>6}  profile"]
    for path in sorted(spans):
        depth = path.count("/")
        if max_depth is not None and depth > max_depth:
            continue
        stats = spans[path]
        seconds = stats.get("seconds", 0.0)
        share = seconds / roots_total if roots_total > 0 else 0.0
        bar = "#" * max(int(round(share * width)), 1 if seconds > 0 else 0)
        label = ("  " * depth) + path.rsplit("/", 1)[-1]
        lines.append(f"{label:<44.44} {seconds:>10.4f} {share * 100:>5.1f}%  {bar}")
    return "\n".join(lines)
