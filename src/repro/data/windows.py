"""Rolling-window forecasting samples (input-Lx / predict-Ly, stride 1).

Each sample follows the Informer-family convention the paper adopts:

- ``x_enc``    (Lx, D)            encoder input
- ``x_mark``   (Lx, T)            encoder calendar marks
- ``x_dec``    (label + Ly, D)    decoder input: the last ``label_len``
                                  steps of the encoder window followed by
                                  zero-padded target placeholders
- ``y_mark``   (label + Ly, T)    decoder calendar marks
- ``y``        (Ly, D)            ground-truth future
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class WindowSample:
    """One forecasting example."""

    x_enc: np.ndarray
    x_mark: np.ndarray
    x_dec: np.ndarray
    y_mark: np.ndarray
    y: np.ndarray


class WindowedDataset:
    """Index a (values, marks) series into rolling forecasting windows."""

    def __init__(
        self,
        values: np.ndarray,
        marks: np.ndarray,
        input_len: int,
        pred_len: int,
        label_len: int | None = None,
        stride: int = 1,
    ) -> None:
        if input_len < 1 or pred_len < 1:
            raise ValueError("input_len and pred_len must be positive")
        if label_len is None:
            label_len = input_len // 2
        if label_len > input_len:
            raise ValueError("label_len cannot exceed input_len")
        self.values = np.asarray(values, dtype=np.float64)
        self.marks = np.asarray(marks, dtype=np.float64)
        if len(self.values) != len(self.marks):
            raise ValueError("values and marks must have the same length")
        self.input_len = input_len
        self.pred_len = pred_len
        self.label_len = label_len
        self.stride = stride
        usable = len(self.values) - input_len - pred_len + 1
        self.n_samples = max(0, (usable + stride - 1) // stride)

    def __len__(self) -> int:
        return self.n_samples

    def __getitem__(self, index: int) -> WindowSample:
        if not 0 <= index < self.n_samples:
            raise IndexError(index)
        start = index * self.stride
        mid = start + self.input_len
        end = mid + self.pred_len
        x_enc = self.values[start:mid]
        x_mark = self.marks[start:mid]
        y = self.values[mid:end]
        label = self.values[mid - self.label_len : mid]
        zeros = np.zeros((self.pred_len, self.values.shape[1]))
        x_dec = np.concatenate([label, zeros], axis=0)
        y_mark = self.marks[mid - self.label_len : end]
        return WindowSample(x_enc=x_enc, x_mark=x_mark, x_dec=x_dec, y_mark=y_mark, y=y)

    def __iter__(self) -> Iterator[WindowSample]:
        for i in range(self.n_samples):
            yield self[i]


class DataLoader:
    """Batch windows into stacked arrays, optionally shuffled per epoch."""

    def __init__(
        self,
        dataset: WindowedDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        for batch_start in range(0, len(order), self.batch_size):
            idx = order[batch_start : batch_start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            samples = [self.dataset[i] for i in idx]
            yield (
                np.stack([s.x_enc for s in samples]),
                np.stack([s.x_mark for s in samples]),
                np.stack([s.x_dec for s in samples]),
                np.stack([s.y_mark for s in samples]),
                np.stack([s.y for s in samples]),
            )
