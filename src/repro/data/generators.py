"""Seeded synthetic generators standing in for the paper's seven datasets.

The paper evaluates on five public benchmarks (ECL, Weather, Exchange,
ETTh1, ETTm1) plus two collected datasets (Wind, AirDelay).  This sandbox
has no network access, so each generator synthesizes a series with the
same shape (Table I: #dims, interval, length) and the same *qualitative
structure* the paper leans on:

- ECL / Weather / ETT: strong daily + weekly periodicity, inter-series
  correlation through shared latent factors, slow trends.
- Exchange: non-periodic correlated random walks (the paper highlights
  Conformer's robustness on non-periodic data).
- Wind: bursty regime-switching power output, bounded below by zero —
  the hard dataset where the SIRN/NF ablations are run.
- AirDelay: irregular time intervals, heavy-tailed delays.

All generators are deterministic given a seed, so experiment "runs"
average over seeds exactly like the paper averages over 5 runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.data.timefeatures import make_timestamps

#: steps per day for each sampling frequency
_STEPS_PER_DAY = {"10min": 144, "15min": 96, "h": 24, "d": 1}


@dataclass
class GeneratedSeries:
    """Raw output of a generator: values, timestamps, metadata."""

    name: str
    values: np.ndarray  # (N, D)
    timestamps: np.ndarray  # (N,) datetime64
    target_index: int
    freq: str
    description: str = ""


def _latent_factors(rng: np.random.Generator, n: int, n_factors: int, steps_per_day: float) -> np.ndarray:
    """Shared smooth latent drivers: daily & weekly harmonics + AR(1) drift."""
    t = np.arange(n)
    factors = np.empty((n, n_factors))
    for j in range(n_factors):
        daily_phase = rng.uniform(0, 2 * math.pi)
        weekly_phase = rng.uniform(0, 2 * math.pi)
        daily = np.sin(2 * math.pi * t / steps_per_day + daily_phase)
        half_daily = 0.4 * np.sin(4 * math.pi * t / steps_per_day + rng.uniform(0, 2 * math.pi))
        weekly = 0.6 * np.sin(2 * math.pi * t / (7 * steps_per_day) + weekly_phase)
        drift = _ar1(rng, n, rho=0.999, sigma=0.02)
        factors[:, j] = daily + half_daily + weekly + drift
    return factors


def _ar1(rng: np.random.Generator, n: int, rho: float, sigma: float) -> np.ndarray:
    noise = rng.normal(0.0, sigma, size=n)
    out = np.empty(n)
    out[0] = noise[0]
    for i in range(1, n):
        out[i] = rho * out[i - 1] + noise[i]
    return out


def _periodic_multivariate(
    rng: np.random.Generator,
    n_points: int,
    n_dims: int,
    steps_per_day: float,
    noise: float,
    n_factors: int = 4,
) -> np.ndarray:
    """Generic periodic multivariate generator used by ECL/Weather/ETT."""
    factors = _latent_factors(rng, n_points, n_factors, steps_per_day)
    loadings = rng.normal(0.0, 1.0, size=(n_factors, n_dims))
    scales = rng.uniform(0.5, 2.0, size=n_dims)
    offsets = rng.normal(0.0, 1.0, size=n_dims)
    values = factors @ loadings * scales + offsets
    values += rng.normal(0.0, noise, size=values.shape)
    return values


def generate_ett(
    n_points: int = 17420,
    freq: str = "h",
    seed: int = 0,
    name: str = "ETTh1",
) -> GeneratedSeries:
    """Electricity-transformer temperature: 6 load features + OT target.

    The oil temperature (OT) responds to a lagged, smoothed combination of
    the load features — giving the cross-variable dependency Conformer's
    input-representation block is designed to exploit.
    """
    rng = np.random.default_rng(seed)
    steps_per_day = _STEPS_PER_DAY[freq]
    loads = _periodic_multivariate(rng, n_points, 6, steps_per_day, noise=0.3)
    # OT: thermal inertia — exponential moving average of the mean load + seasonality
    mean_load = loads.mean(axis=1)
    ot = np.empty(n_points)
    ot[0] = mean_load[0]
    alpha = 2.0 / (steps_per_day / 2 + 1)
    for i in range(1, n_points):
        ot[i] = (1 - alpha) * ot[i - 1] + alpha * mean_load[i]
    ot += 0.5 * np.sin(2 * math.pi * np.arange(n_points) / (365.0 * steps_per_day))
    ot += rng.normal(0.0, 0.1, size=n_points)
    values = np.column_stack([loads, ot])
    return GeneratedSeries(
        name=name,
        values=values,
        timestamps=make_timestamps(n_points, freq, start="2016-07-01"),
        target_index=6,
        freq=freq,
        description="synthetic electricity transformer temperature (6 loads + OT)",
    )


def generate_ecl(n_points: int = 26304, n_dims: int = 321, seed: int = 0) -> GeneratedSeries:
    """Hourly electricity consumption of ``n_dims`` clients (target MT_321)."""
    rng = np.random.default_rng(seed)
    values = _periodic_multivariate(rng, n_points, n_dims, _STEPS_PER_DAY["h"], noise=0.25, n_factors=6)
    values = np.exp(0.4 * values)  # consumption is positive and right-skewed
    return GeneratedSeries(
        name="ECL",
        values=values,
        timestamps=make_timestamps(n_points, "h", start="2012-01-01"),
        target_index=n_dims - 1,
        freq="h",
        description="synthetic hourly electricity consumption",
    )


def generate_weather(n_points: int = 36761, n_dims: int = 21, seed: int = 0) -> GeneratedSeries:
    """10-minute weather indicators; target is temperature (column 0)."""
    rng = np.random.default_rng(seed)
    steps_per_day = _STEPS_PER_DAY["10min"]
    t = np.arange(n_points)
    annual = np.sin(2 * math.pi * t / (365.0 * steps_per_day) - math.pi / 2)
    diurnal = np.sin(2 * math.pi * t / steps_per_day - math.pi / 2)
    temperature = 10.0 + 12.0 * annual + 5.0 * diurnal + _ar1(rng, n_points, 0.995, 0.15)
    others = _periodic_multivariate(rng, n_points, n_dims - 1, steps_per_day, noise=0.2, n_factors=5)
    # couple the other indicators to temperature with per-dim sensitivity
    sensitivity = rng.normal(0.0, 0.3, size=n_dims - 1)
    others += temperature[:, None] * sensitivity[None, :] / 10.0
    values = np.column_stack([temperature, others])
    return GeneratedSeries(
        name="Weather",
        values=values,
        timestamps=make_timestamps(n_points, "10min", start="2020-07-01"),
        target_index=0,
        freq="10min",
        description="synthetic 10-minute meteorological indicators",
    )


def generate_exchange(n_points: int = 7588, n_dims: int = 8, seed: int = 0) -> GeneratedSeries:
    """Daily exchange rates: correlated geometric random walks, no periodicity."""
    rng = np.random.default_rng(seed)
    correlation = 0.4 * np.ones((n_dims, n_dims)) + 0.6 * np.eye(n_dims)
    chol = np.linalg.cholesky(correlation)
    shocks = rng.normal(0.0, 0.006, size=(n_points, n_dims)) @ chol.T
    log_rates = np.cumsum(shocks, axis=0)
    values = np.exp(log_rates) * rng.uniform(0.5, 2.0, size=n_dims)
    return GeneratedSeries(
        name="Exchange",
        values=values,
        timestamps=make_timestamps(n_points, "d", start="1990-01-01"),
        target_index=n_dims - 1,
        freq="d",
        description="synthetic correlated exchange-rate random walks",
    )


def generate_wind(n_points: int = 45550, n_dims: int = 7, seed: int = 0) -> GeneratedSeries:
    """15-minute wind-farm output: regime-switching, bursty, floored at 0.

    Wind speed follows a slowly-mixing two-regime (calm/storm) process;
    power is a saturating cubic of speed; auxiliary channels are lagged /
    noisy transforms (direction, temperature, pressure, per-turbine groups).
    """
    rng = np.random.default_rng(seed)
    regime = np.empty(n_points, dtype=np.int64)
    regime[0] = 0
    switch_up, switch_down = 0.002, 0.004  # storms are rarer and shorter
    draws = rng.random(n_points)
    for i in range(1, n_points):
        if regime[i - 1] == 0:
            regime[i] = 1 if draws[i] < switch_up else 0
        else:
            regime[i] = 0 if draws[i] < switch_down else 1
    base_speed = np.where(regime == 0, 5.0, 13.0)
    speed = base_speed + _ar1(rng, n_points, 0.98, 0.7)
    speed += 1.5 * np.sin(2 * math.pi * np.arange(n_points) / _STEPS_PER_DAY["15min"])
    speed = np.clip(speed, 0.0, None)
    # power curve: cubic between cut-in (3) and rated (12), flat to cut-out (25)
    power = np.clip((speed - 3.0) / 9.0, 0.0, 1.0) ** 3 * 100.0
    power[speed > 25.0] = 0.0  # cut-out protection
    power += rng.normal(0.0, 1.5, size=n_points)
    power = np.clip(power, 0.0, None)

    direction = np.cumsum(rng.normal(0, 2.0, n_points)) % 360.0 / 180.0 - 1.0
    temperature = 10.0 + 8.0 * np.sin(2 * math.pi * np.arange(n_points) / (365.0 * 96)) + _ar1(rng, n_points, 0.99, 0.1)
    pressure = 1013.0 + _ar1(rng, n_points, 0.995, 0.2) - 0.3 * speed
    group_a = np.clip(power * rng.uniform(0.45, 0.55) + rng.normal(0, 1.0, n_points), 0, None)
    group_b = np.clip(power - group_a + rng.normal(0, 1.0, n_points), 0, None)
    values = np.column_stack([speed, direction, temperature, pressure, group_a, group_b, power])
    return GeneratedSeries(
        name="Wind",
        values=values,
        timestamps=make_timestamps(n_points, "15min", start="2020-01-01"),
        target_index=6,
        freq="15min",
        description="synthetic regime-switching wind-farm power",
    )


def generate_airdelay(n_points: int = 54451, n_dims: int = 6, seed: int = 0) -> GeneratedSeries:
    """Flight arrival delays with *irregular* timestamps (Texas, Jan 2022).

    Arrivals cluster in daytime banks; delays are heavy-tailed and
    propagate within congestion waves.
    """
    rng = np.random.default_rng(seed)
    # irregular arrival process: gaps drawn from a day-time-modulated exponential
    month_seconds = 31 * 24 * 3600
    mean_gap = month_seconds / n_points
    raw_gaps = rng.exponential(mean_gap, size=n_points)
    offsets = np.cumsum(raw_gaps)
    offsets = offsets / offsets[-1] * (month_seconds - 1)
    timestamps = np.datetime64("2022-01-01") + offsets.astype("timedelta64[s]")

    hours = offsets / 3600.0 % 24.0
    congestion = np.clip(np.sin(math.pi * (hours - 6.0) / 14.0), 0.0, None)  # banks between 06:00-20:00
    wave = _ar1(rng, n_points, 0.97, 1.0)
    base_delay = 8.0 * congestion + 4.0 * np.clip(wave, 0, None)
    heavy_tail = rng.pareto(2.5, size=n_points) * 10.0 * (rng.random(n_points) < 0.08)
    arr_delay = base_delay + heavy_tail + rng.normal(0.0, 3.0, size=n_points) - 2.0

    dep_delay = arr_delay * 0.8 + rng.normal(0, 2.0, n_points)
    taxi_in = np.clip(rng.normal(8, 2, n_points) + 2.0 * congestion, 1, None)
    taxi_out = np.clip(rng.normal(15, 4, n_points) + 4.0 * congestion, 2, None)
    distance = rng.choice([190.0, 240.0, 430.0, 880.0, 1100.0], size=n_points)
    air_time = distance / 7.5 + rng.normal(0, 4, n_points)
    values = np.column_stack([dep_delay, taxi_out, taxi_in, air_time, distance / 100.0, arr_delay])
    return GeneratedSeries(
        name="AirDelay",
        values=values,
        timestamps=timestamps,
        target_index=5,
        freq="irregular",
        description="synthetic irregular-interval flight arrival delays",
    )


def generate_ettm1(n_points: int = 69680, seed: int = 0) -> GeneratedSeries:
    """ETTm1: the 15-minute-resolution variant of the ETT generator."""
    return generate_ett(n_points=n_points, freq="15min", seed=seed, name="ETTm1")


def generate_etth1(n_points: int = 17420, seed: int = 0) -> GeneratedSeries:
    """ETTh1: the hourly variant of the ETT generator."""
    return generate_ett(n_points=n_points, freq="h", seed=seed, name="ETTh1")
