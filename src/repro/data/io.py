"""Dataset persistence and external-CSV ingestion.

The synthetic generators stand in for the paper's datasets in this
sandbox, but a downstream user has the real CSVs (ETTh1.csv, ECL, ...).
This module makes the two worlds interchangeable:

- :func:`save_dataset` / :func:`load_saved_dataset` — .npz round-trip of
  a :class:`~repro.data.datasets.TimeSeriesDataset` (values, timestamps,
  metadata).
- :func:`export_csv` / :func:`load_csv` — Informer-convention CSV
  (``date`` column + one column per variable), so the official benchmark
  files drop straight in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.data.datasets import TimeSeriesDataset


def save_dataset(dataset: TimeSeriesDataset, path: str) -> None:
    """Persist a dataset (values, timestamps, metadata) to ``.npz``."""
    meta = {
        "name": dataset.name,
        "target_index": dataset.target_index,
        "freq": dataset.freq,
        "split_ratios": list(dataset.split_ratios),
        "description": dataset.description,
    }
    np.savez(
        path,
        values=dataset.values,
        timestamps=dataset.timestamps.astype("datetime64[s]").astype(np.int64),
        meta=json.dumps(meta),
    )


def load_saved_dataset(path: str) -> TimeSeriesDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        values = archive["values"]
        timestamps = archive["timestamps"].astype("datetime64[s]")
    return TimeSeriesDataset(
        name=meta["name"],
        values=values,
        timestamps=timestamps,
        target_index=int(meta["target_index"]),
        freq=meta["freq"],
        split_ratios=tuple(meta["split_ratios"]),
        description=meta["description"],
    )


def export_csv(dataset: TimeSeriesDataset, path: str, column_names: Optional[list] = None) -> None:
    """Write the Informer-style CSV: ``date,<var0>,<var1>,...``."""
    n_dims = dataset.n_dims
    if column_names is None:
        column_names = [f"var{i}" for i in range(n_dims)]
    if len(column_names) != n_dims:
        raise ValueError(f"need {n_dims} column names, got {len(column_names)}")
    stamps = dataset.timestamps.astype("datetime64[s]").astype(str)
    with open(path, "w") as handle:
        handle.write("date," + ",".join(column_names) + "\n")
        for stamp, row in zip(stamps, dataset.values):
            cells = ",".join(f"{v:.10g}" for v in row)
            handle.write(f"{stamp.replace('T', ' ')},{cells}\n")


def load_csv(
    path: str,
    name: Optional[str] = None,
    target: Optional[str] = None,
    freq: str = "h",
    split_ratios: Tuple[float, float, float] = (0.7, 0.1, 0.2),
) -> TimeSeriesDataset:
    """Load an Informer-convention CSV (first column ``date``).

    Parameters
    ----------
    target:
        Name of the target column (default: the last column, matching the
        ETT/ECL convention of putting 'OT'/target last).
    """
    path = Path(path)
    with open(path) as handle:
        header = handle.readline().strip().split(",")
        if not header or header[0].lower() != "date":
            raise ValueError(f"{path}: expected a leading 'date' column, got {header[:1]}")
        columns = header[1:]
        stamps = []
        rows = []
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            cells = line.split(",")
            if len(cells) != len(columns) + 1:
                raise ValueError(f"{path}:{line_no}: expected {len(columns) + 1} cells, got {len(cells)}")
            stamps.append(np.datetime64(cells[0].replace(" ", "T")))
            rows.append([float(c) for c in cells[1:]])
    if not rows:
        raise ValueError(f"{path}: no data rows")
    values = np.asarray(rows, dtype=np.float64)
    if target is None:
        target_index = len(columns) - 1
    else:
        try:
            target_index = columns.index(target)
        except ValueError:
            raise ValueError(f"target column {target!r} not in {columns}") from None
    return TimeSeriesDataset(
        name=name or path.stem,
        values=values,
        timestamps=np.asarray(stamps, dtype="datetime64[s]"),
        target_index=target_index,
        freq=freq,
        split_ratios=split_ratios,
        description=f"loaded from {path.name}",
    )
