"""Missing-data handling for real-world series.

The paper's pipeline assumes complete series (it drops ECL's zero-heavy
2011 and cancelled AirDelay flights, §V-A1).  Real deployments meet NaN
gaps; this module provides the standard imputers so external CSVs with
holes can enter the same pipeline:

- :func:`forward_fill` — last observation carried forward.
- :func:`linear_interpolate` — straight-line gap filling.
- :func:`seasonal_interpolate` — fill from the same phase of neighbouring
  periods (right for strongly periodic data like ECL).
- :func:`mask_missing` — inject NaN gaps for robustness experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _validate(values: np.ndarray) -> np.ndarray:
    out = np.asarray(values, dtype=np.float64)
    if out.ndim != 2:
        raise ValueError(f"expected (N, C) values, got shape {out.shape}")
    return out


def missing_rate(values: np.ndarray) -> float:
    """Fraction of NaN cells."""
    values = _validate(values)
    return float(np.isnan(values).mean())


def forward_fill(values: np.ndarray, backfill_leading: bool = True) -> np.ndarray:
    """Carry the last observation forward along time, per channel."""
    values = _validate(values).copy()
    n = len(values)
    for c in range(values.shape[1]):
        column = values[:, c]
        mask = np.isnan(column)
        if not mask.any():
            continue
        idx = np.where(~mask, np.arange(n), -1)
        np.maximum.accumulate(idx, out=idx)
        filled = np.where(idx >= 0, column[np.clip(idx, 0, None)], np.nan)
        if backfill_leading and np.isnan(filled).any():
            first_valid = np.argmax(~np.isnan(filled))
            if np.isnan(filled[first_valid]):
                raise ValueError(f"channel {c} is entirely missing")
            filled[:first_valid] = filled[first_valid]
        values[:, c] = filled
    return values


def linear_interpolate(values: np.ndarray) -> np.ndarray:
    """Linear interpolation over gaps; edges are held constant."""
    values = _validate(values).copy()
    n = len(values)
    grid = np.arange(n, dtype=np.float64)
    for c in range(values.shape[1]):
        column = values[:, c]
        mask = np.isnan(column)
        if not mask.any():
            continue
        if mask.all():
            raise ValueError(f"channel {c} is entirely missing")
        values[:, c] = np.interp(grid, grid[~mask], column[~mask])
    return values


def seasonal_interpolate(values: np.ndarray, period: int) -> np.ndarray:
    """Fill each gap from the mean of the same phase in other periods,
    falling back to linear interpolation for phases never observed."""
    if period < 1:
        raise ValueError("period must be >= 1")
    values = _validate(values).copy()
    n = len(values)
    phases = np.arange(n) % period
    for c in range(values.shape[1]):
        column = values[:, c]
        mask = np.isnan(column)
        if not mask.any():
            continue
        for p in np.unique(phases[mask]):
            members = phases == p
            observed = column[members & ~mask]
            if observed.size:
                fill = observed.mean()
                column[members & mask] = fill
        values[:, c] = column
    if np.isnan(values).any():
        values = linear_interpolate(values)
    return values


def mask_missing(
    values: np.ndarray,
    rng: np.random.Generator,
    rate: float = 0.1,
    gap_length: int = 1,
) -> np.ndarray:
    """Inject NaN gaps (contiguous runs of ``gap_length``) at ~``rate``."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    values = _validate(values).copy()
    n, channels = values.shape
    n_gaps = int(n * rate / max(gap_length, 1))
    for c in range(channels):
        starts = rng.integers(0, max(1, n - gap_length), size=n_gaps)
        for s in starts:
            values[s : s + gap_length, c] = np.nan
    return values
