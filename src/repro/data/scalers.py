"""Feature scalers fit on training data only (no test leakage)."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-channel zero-mean/unit-variance scaling."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        self.mean_ = values.mean(axis=0)
        self.std_ = values.std(axis=0)
        self.std_ = np.where(self.std_ < 1e-12, 1.0, self.std_)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean_) / self.std_

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self.mean_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler used before fit()")


class MinMaxScaler:
    """Per-channel scaling to [0, 1] on the training range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        self.min_ = values.min(axis=0)
        spread = values.max(axis=0) - self.min_
        self.range_ = np.where(spread < 1e-12, 1.0, spread)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(values, dtype=np.float64) - self.min_) / self.range_

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(values, dtype=np.float64) * self.range_ + self.min_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
