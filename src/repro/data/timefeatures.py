"""Calendar time features and multiscale resolution sampling.

The paper embeds timestamps at multiple temporal resolutions
(second/minute/hour/day/week/month/year — §IV-A2).  We encode each
resolution as a value normalized to [-0.5, 0.5], matching the
Informer-family "time feature" convention; the multiscale-dynamics block
consumes the per-resolution columns separately.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

RESOLUTIONS = ("second", "minute", "hour", "day", "week", "month", "year")

# sensible temporal-resolution sets per sampling interval
DEFAULT_RESOLUTION_SETS = {
    "10min": ("minute", "hour", "day", "week"),
    "15min": ("minute", "hour", "day", "week"),
    "h": ("hour", "day", "week", "month"),
    "d": ("day", "week", "month", "year"),
    "irregular": ("minute", "hour", "day", "week"),
}


def _components(timestamps: np.ndarray) -> dict:
    """Decompose datetime64 timestamps into calendar components."""
    ts = timestamps.astype("datetime64[s]")
    days = ts.astype("datetime64[D]")
    years = ts.astype("datetime64[Y]")
    months = ts.astype("datetime64[M]")
    seconds_of_day = (ts - days).astype("timedelta64[s]").astype(np.int64)
    return {
        "second": seconds_of_day % 60,
        "minute": (seconds_of_day // 60) % 60,
        "hour": seconds_of_day // 3600,
        # numpy epoch (1970-01-01) was a Thursday -> +3 makes Monday == 0
        "week": (days.astype(np.int64) + 3) % 7,
        "day": (days - months).astype("timedelta64[D]").astype(np.int64),
        "month": (months - years).astype("timedelta64[M]").astype(np.int64),
        "year": years.astype(np.int64) + 1970,
    }


_SPANS = {
    "second": 59.0,
    "minute": 59.0,
    "hour": 23.0,
    "week": 6.0,
    "day": 30.0,
    "month": 11.0,
}


def time_features(timestamps: np.ndarray, resolutions: Sequence[str] = ("hour", "day", "week", "month")) -> np.ndarray:
    """Encode timestamps into an (N, len(resolutions)) float matrix in [-0.5, 0.5].

    The ``year`` resolution is centred on the sample's own span so that a
    multi-year series gets a slowly increasing feature.
    """
    comps = _components(np.asarray(timestamps))
    columns: List[np.ndarray] = []
    for res in resolutions:
        if res not in RESOLUTIONS:
            raise ValueError(f"unknown resolution {res!r}; choose from {RESOLUTIONS}")
        values = comps[res].astype(np.float64)
        if res == "year":
            span = values.max() - values.min()
            col = (values - values.min()) / span - 0.5 if span > 0 else np.zeros_like(values)
        else:
            col = values / _SPANS[res] - 0.5
        columns.append(col)
    return np.stack(columns, axis=-1)


def resolution_set_for_freq(freq: str) -> tuple:
    """Pick a default temporal-resolution set S for a sampling frequency."""
    return DEFAULT_RESOLUTION_SETS.get(freq, ("hour", "day", "week", "month"))


def make_timestamps(n: int, freq: str, start: str = "2020-01-01") -> np.ndarray:
    """Build a regular datetime64 grid of ``n`` points at ``freq``."""
    start64 = np.datetime64(start)
    steps = {
        "10min": np.timedelta64(10, "m"),
        "15min": np.timedelta64(15, "m"),
        "h": np.timedelta64(1, "h"),
        "d": np.timedelta64(1, "D"),
    }
    try:
        step = steps[freq]
    except KeyError:
        raise ValueError(f"unknown freq {freq!r}; choose from {sorted(steps)}") from None
    return start64 + step * np.arange(n)
