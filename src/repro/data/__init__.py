"""Data substrate: synthetic datasets, splits, windows, scalers, marks."""

from repro.data import augment
from repro.data.datasets import TimeSeriesDataset, available_datasets, load_dataset
from repro.data.scalers import MinMaxScaler, StandardScaler
from repro.data.timefeatures import (
    RESOLUTIONS,
    make_timestamps,
    resolution_set_for_freq,
    time_features,
)
from repro.data.windows import DataLoader, WindowSample, WindowedDataset

__all__ = [
    "augment",
    "TimeSeriesDataset",
    "available_datasets",
    "load_dataset",
    "StandardScaler",
    "MinMaxScaler",
    "RESOLUTIONS",
    "time_features",
    "make_timestamps",
    "resolution_set_for_freq",
    "DataLoader",
    "WindowSample",
    "WindowedDataset",
]
