"""Statistical diagnostics for time series.

Used to *validate the synthetic substitution*: the paper's datasets have
documented structure (periodicity, non-stationarity, burstiness); these
tests quantify whether the generators reproduce it, and are generally
useful when users bring their own data.

- :func:`ljung_box` — portmanteau test for autocorrelation.
- :func:`seasonal_strength` — STL-style variance-ratio seasonality measure.
- :func:`unit_root_score` — Dickey-Fuller-style regression statistic
  (negative and large ⇒ mean-reverting; near 0 ⇒ random walk).
- :func:`burstiness` — Goh-Barabási inter-event/volatility burstiness.
- :func:`diagnose` — one summary dict per series.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import stats as sp_stats


def autocorrelation(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelations r_1..r_max_lag of a 1-D series."""
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if max_lag >= n:
        raise ValueError(f"max_lag {max_lag} must be < series length {n}")
    centered = x - x.mean()
    denom = float(centered @ centered)
    if denom < 1e-300:
        return np.zeros(max_lag)
    return np.array([float(centered[: n - k] @ centered[k:]) / denom for k in range(1, max_lag + 1)])


def ljung_box(x: np.ndarray, lags: int = 20) -> Dict[str, float]:
    """Ljung-Box Q test: H0 = no autocorrelation up to ``lags``.

    Returns the Q statistic and its chi-squared p-value.  Small p-value
    ⇒ the series has real temporal structure (every dataset except white
    noise should reject H0 decisively).
    """
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    r = autocorrelation(x, lags)
    q = n * (n + 2) * np.sum(r**2 / (n - np.arange(1, lags + 1)))
    p_value = float(sp_stats.chi2.sf(q, df=lags))
    return {"statistic": float(q), "p_value": p_value}


def seasonal_strength(x: np.ndarray, period: int) -> float:
    """STL-style seasonality: 1 - Var(residual)/Var(detrended).

    The series is detrended with a centred moving average, the seasonal
    component is the per-phase mean of the detrended series, and strength
    = max(0, 1 - Var(remainder)/Var(seasonal + remainder)).  0 = no
    seasonality, → 1 = perfectly seasonal.
    """
    x = np.asarray(x, dtype=np.float64)
    if period < 2 or period * 2 > len(x):
        raise ValueError("need at least two full periods")
    kernel = period if period % 2 == 1 else period + 1
    pad = kernel // 2
    padded = np.pad(x, (pad, pad), mode="edge")
    trend = np.convolve(padded, np.ones(kernel) / kernel, mode="valid")
    detrended = x - trend
    phases = np.arange(len(x)) % period
    seasonal = np.array([detrended[phases == p].mean() for p in range(period)])[phases]
    remainder = detrended - seasonal
    denom = np.var(seasonal + remainder)
    if denom < 1e-300:
        return 0.0
    return float(max(0.0, 1.0 - np.var(remainder) / denom))


def unit_root_score(x: np.ndarray) -> float:
    """Dickey-Fuller regression t-statistic for ``Δx_t = ρ x_{t-1} + ε``.

    Strongly negative (≲ -3) ⇒ mean-reverting/stationary; near 0 ⇒ the
    unit-root behaviour of a random walk (Exchange-like data).
    """
    x = np.asarray(x, dtype=np.float64)
    if len(x) < 10:
        raise ValueError("series too short for a unit-root score")
    lagged = x[:-1] - x[:-1].mean()
    delta = np.diff(x)
    denom = float(lagged @ lagged)
    if denom < 1e-300:
        return 0.0
    rho = float(lagged @ delta) / denom
    residuals = delta - rho * lagged
    dof = max(1, len(delta) - 1)
    sigma2 = float(residuals @ residuals) / dof
    se = np.sqrt(sigma2 / denom)
    return float(rho / se) if se > 0 else 0.0


def burstiness(x: np.ndarray) -> float:
    """Goh-Barabási burstiness of |Δx|: (σ - μ)/(σ + μ) ∈ (-1, 1).

    ~0 for Poisson-like variability, → 1 for heavy-tailed bursts (Wind
    storms, AirDelay congestion waves), → -1 for near-periodic signals.
    """
    magnitudes = np.abs(np.diff(np.asarray(x, dtype=np.float64)))
    mu, sigma = magnitudes.mean(), magnitudes.std()
    if mu + sigma < 1e-300:
        return 0.0
    return float((sigma - mu) / (sigma + mu))


def diagnose(x: np.ndarray, period: Optional[int] = None, lags: int = 20) -> Dict[str, float]:
    """One-call summary of a univariate series."""
    out: Dict[str, float] = {
        "ljung_box_p": ljung_box(x, lags=lags)["p_value"],
        "unit_root_score": unit_root_score(x),
        "burstiness": burstiness(x),
    }
    if period is not None:
        out["seasonal_strength"] = seasonal_strength(x, period)
    return out
