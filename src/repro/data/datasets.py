"""Dataset registry, chronological splits, and the TimeSeriesDataset type.

``load_dataset("etth1")`` returns a :class:`TimeSeriesDataset` with
train/val/test boundaries following the paper's per-dataset ratios
(Table I and §V-A1).  Pass ``n_points`` to get a shorter series for
CPU-scale experiments — the split *ratios* are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.data import generators
from repro.data.scalers import StandardScaler
from repro.data.timefeatures import resolution_set_for_freq, time_features


@dataclass
class TimeSeriesDataset:
    """A multivariate series with chronological train/val/test boundaries."""

    name: str
    values: np.ndarray  # (N, D) raw values
    timestamps: np.ndarray  # (N,) datetime64
    target_index: int
    freq: str
    split_ratios: Tuple[float, float, float]
    description: str = ""
    scaler: StandardScaler = field(default_factory=StandardScaler)

    def __post_init__(self) -> None:
        if abs(sum(self.split_ratios) - 1.0) > 1e-9:
            raise ValueError(f"split ratios must sum to 1, got {self.split_ratios}")
        n = len(self.values)
        n_train = int(n * self.split_ratios[0])
        n_val = int(n * self.split_ratios[1])
        self._bounds = (0, n_train, n_train + n_val, n)
        self.scaler.fit(self.values[:n_train])

    # -- basic views ------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.values)

    @property
    def n_dims(self) -> int:
        return self.values.shape[1]

    def split(self, part: str) -> Tuple[np.ndarray, np.ndarray]:
        """Return (scaled values, timestamps) for 'train'/'val'/'test'.

        Scaling uses train-set statistics everywhere (standard protocol).
        """
        index = {"train": 0, "val": 1, "test": 2}
        try:
            i = index[part]
        except KeyError:
            raise ValueError(f"part must be train/val/test, got {part!r}") from None
        lo, hi = self._bounds[i], self._bounds[i + 1]
        return self.scaler.transform(self.values[lo:hi]), self.timestamps[lo:hi]

    def marks(self, timestamps: np.ndarray) -> np.ndarray:
        """Calendar features for the dataset's default resolution set."""
        return time_features(timestamps, resolution_set_for_freq(self.freq))

    def univariate(self) -> "TimeSeriesDataset":
        """Project onto the target variable only (paper's univariate setting)."""
        return TimeSeriesDataset(
            name=f"{self.name}-uni",
            values=self.values[:, [self.target_index]],
            timestamps=self.timestamps,
            target_index=0,
            freq=self.freq,
            split_ratios=self.split_ratios,
            description=self.description + " (univariate target projection)",
        )

    def summary(self) -> Dict[str, object]:
        """Table I-style row: dims, span, points, target, interval."""
        return {
            "name": self.name,
            "n_dims": self.n_dims,
            "n_points": self.n_points,
            "start": str(self.timestamps[0])[:10],
            "end": str(self.timestamps[-1])[:10],
            "target_index": self.target_index,
            "interval": self.freq,
        }


# -- registry --------------------------------------------------------------
# paper split ratios: ETTh1/ECL 12/2/2 months, ETTm1/Weather/Wind 12/1/1 or
# 10/1/1 months, Exchange 16/2/2 years, AirDelay 7:1:2.
def _ratio(train: float, val: float, test: float) -> Tuple[float, float, float]:
    total = train + val + test
    return (train / total, val / total, test / total)


_REGISTRY: Dict[str, Tuple[Callable[..., generators.GeneratedSeries], Tuple[float, float, float]]] = {
    "etth1": (generators.generate_etth1, _ratio(12, 2, 2)),
    "ettm1": (generators.generate_ettm1, _ratio(12, 1, 1)),
    "ecl": (generators.generate_ecl, _ratio(12, 2, 2)),
    "weather": (generators.generate_weather, _ratio(10, 1, 1)),
    "exchange": (generators.generate_exchange, _ratio(16, 2, 2)),
    "wind": (generators.generate_wind, _ratio(12, 1, 1)),
    "airdelay": (generators.generate_airdelay, _ratio(7, 1, 2)),
}


def available_datasets() -> list:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def load_dataset(
    name: str,
    n_points: Optional[int] = None,
    seed: int = 0,
    **generator_kwargs,
) -> TimeSeriesDataset:
    """Instantiate a synthetic dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    n_points:
        Override the paper's length for fast CPU experiments.
    seed:
        Generator seed; different seeds give independent "runs".
    generator_kwargs:
        Forwarded to the generator (e.g. ``n_dims`` for ECL).
    """
    key = name.lower()
    try:
        generator, ratios = _REGISTRY[key]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {available_datasets()}") from None
    if n_points is not None:
        generator_kwargs["n_points"] = n_points
    series = generator(seed=seed, **generator_kwargs)
    return TimeSeriesDataset(
        name=series.name,
        values=series.values,
        timestamps=series.timestamps,
        target_index=series.target_index,
        freq=series.freq,
        split_ratios=ratios,
        description=series.description,
    )
