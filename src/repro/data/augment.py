"""Time-series augmentations for representation learning.

Used by contrastive methods (TS2Vec-style) and available for training
robustness experiments: jitter, scaling, magnitude warp, random crops,
time masking, and window slicing.  All functions take (B, L, C) arrays
and a seeded Generator so experiments stay reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def jitter(x: np.ndarray, rng: np.random.Generator, sigma: float = 0.05) -> np.ndarray:
    """Additive Gaussian noise."""
    return x + rng.normal(0.0, sigma, size=x.shape)


def scaling(x: np.ndarray, rng: np.random.Generator, sigma: float = 0.1) -> np.ndarray:
    """Per-channel multiplicative scaling drawn around 1."""
    factors = rng.normal(1.0, sigma, size=(x.shape[0], 1, x.shape[2]))
    return x * factors


def magnitude_warp(x: np.ndarray, rng: np.random.Generator, sigma: float = 0.2, n_knots: int = 4) -> np.ndarray:
    """Smooth time-varying amplitude modulation via a random spline."""
    batch, length, channels = x.shape
    knot_positions = np.linspace(0, length - 1, n_knots)
    grid = np.arange(length)
    warps = np.empty((batch, length, channels))
    for b in range(batch):
        for c in range(channels):
            knots = rng.normal(1.0, sigma, size=n_knots)
            warps[b, :, c] = np.interp(grid, knot_positions, knots)
    return x * warps


def time_mask(x: np.ndarray, rng: np.random.Generator, mask_frac: float = 0.15) -> np.ndarray:
    """Zero out a contiguous time span (per batch element)."""
    if not 0.0 <= mask_frac < 1.0:
        raise ValueError("mask_frac must be in [0, 1)")
    out = x.copy()
    length = x.shape[1]
    span = max(1, int(length * mask_frac))
    for b in range(x.shape[0]):
        start = int(rng.integers(0, length - span + 1))
        out[b, start : start + span, :] = 0.0
    return out


def random_crop_pair(
    x: np.ndarray, rng: np.random.Generator, crop_len: int
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int], Tuple[int, int]]:
    """Two overlapping random crops (the TS2Vec contrastive view pair).

    Returns (view_a, view_b, (start_a, end_a), (start_b, end_b)) with a
    guaranteed non-empty overlap.
    """
    length = x.shape[1]
    if crop_len > length:
        raise ValueError(f"crop_len {crop_len} exceeds series length {length}")
    if crop_len == length:
        return x, x, (0, length), (0, length)
    max_start = length - crop_len
    start_a = int(rng.integers(0, max_start + 1))
    # force overlap: b starts within a's span
    low = max(0, start_a - crop_len + 1)
    high = min(max_start, start_a + crop_len - 1)
    start_b = int(rng.integers(low, high + 1))
    view_a = x[:, start_a : start_a + crop_len, :]
    view_b = x[:, start_b : start_b + crop_len, :]
    return view_a, view_b, (start_a, start_a + crop_len), (start_b, start_b + crop_len)


def overlap_slices(span_a: Tuple[int, int], span_b: Tuple[int, int]) -> Tuple[slice, slice]:
    """Index slices selecting the shared region inside each crop."""
    lo = max(span_a[0], span_b[0])
    hi = min(span_a[1], span_b[1])
    if hi <= lo:
        raise ValueError(f"crops {span_a} and {span_b} do not overlap")
    return slice(lo - span_a[0], hi - span_a[0]), slice(lo - span_b[0], hi - span_b[0])
