"""Conformer's input-representation block (Eqs. 1-6, §IV-A).

Two ingredients are fused:

- **Multivariate correlation** ``W^R`` (Eqs. 1-2): FFT auto-correlation of
  the series highlights which variables carry informative rhythm; a
  softmax over variables turns this into per-timestep variable weights.
  As in the attention zoo, the FFT score computation is treated as
  data-derived weighting (the gradient flows through the weighted series
  ``W^R * X``, not through the FFT itself).
- **Multiscale dynamics** ``Gamma_bar^S`` (Eqs. 3-4): calendar features at
  K temporal resolutions are embedded into d_model and combined by
  per-scale learned time-mixing matrices ``W_k^S`` (L x L).

Eq. (5) then embeds the correlation-weighted series with a convolution
and Eq. (6) adds the multiscale term.  All six ablation variants of
Table V and the four alternative fusion methods of Table VIII are
implemented behind config switches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Conv1d, Linear, Module, ModuleList, Parameter, init
from repro.tensor import Tensor, functional as F, get_arena, is_inference_mode

VARIANTS = ("full", "-gamma", "-r", "-r-gamma", "-x", "-x-gamma")


def multivariate_correlation_weights(x: np.ndarray) -> np.ndarray:
    """Eqs. (1)-(2): softmax over variables of the FFT auto-correlation.

    Under :func:`repro.tensor.inference_mode` the correlation/softmax
    chain runs in place on one recycled arena buffer (the result stays in
    the buffer too — callers consume it within the same forward).

    Parameters
    ----------
    x: (B, L, D) raw series values.

    Returns
    -------
    (B, L, D) non-negative weights summing to 1 over the variable axis.
    """
    spectrum = np.fft.rfft(x, axis=1)
    corr = np.fft.irfft(spectrum * np.conj(spectrum), n=x.shape[1], axis=1)
    if is_inference_mode():
        w = get_arena().get("input_repr.corr", corr.shape, corr.dtype)
        np.divide(corr, max(x.shape[1], 1), out=w)
        w -= w.max(axis=-1, keepdims=True)
        np.exp(w, out=w)
        w /= w.sum(axis=-1, keepdims=True)
        # deliberate ownership exception (documented above): the caller
        # consumes these weights inside the same forward, before the next
        # checkout of this slot can recycle the buffer
        return w  # repro: noqa[dataflow-arena-escape]
    corr = corr / max(x.shape[1], 1)
    shifted = corr - corr.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MultiscaleDynamics(Module):
    """Eqs. (3)-(4): per-resolution embedding + learned L x L time mixing."""

    def __init__(self, n_scales: int, seq_len: int, d_model: int, rng=None) -> None:
        super().__init__()
        self.n_scales = n_scales
        self.seq_len = seq_len
        self.embeddings = ModuleList([Linear(1, d_model, rng=rng) for _ in range(n_scales)])
        # W^S in R^{L x L x K}: one time-mixing matrix per scale, near-identity init
        mixers = []
        for _ in range(n_scales):
            mixers.append(Parameter(np.eye(seq_len) / n_scales + init.normal(seq_len, seq_len, std=0.01, rng=rng)))
        self.mixers = mixers
        for i, m in enumerate(mixers):
            self.register_parameter(f"mixer_{i}", m)
        self.bias = Parameter(init.zeros(seq_len, d_model))

    def forward(self, marks: Tensor) -> Tensor:
        """marks: (B, L, K) calendar features -> (B, L, d_model)."""
        if marks.shape[1] != self.seq_len:
            raise ValueError(f"expected sequence length {self.seq_len}, got {marks.shape[1]}")
        if marks.shape[2] < self.n_scales:
            raise ValueError(f"need at least {self.n_scales} mark columns, got {marks.shape[2]}")
        out: Optional[Tensor] = None
        for k in range(self.n_scales):
            column = marks[:, :, k : k + 1]  # (B, L, 1)
            embedded = self.embeddings[k](column)  # (B, L, d)
            mixed = self.mixers[k] @ embedded  # (L, L) @ (B, L, d) -> (B, L, d)
            out = mixed if out is None else out + mixed
        return out + self.bias


class InputRepresentation(Module):
    """The full Eq. (6) block with Table V variants and Table VIII fusions.

    variant:
        ``full``     X^v + Gamma;  X^v = Conv(W^R X + X)
        ``-gamma``   X^v only
        ``-r``       Conv(X) + Gamma
        ``-r-gamma`` Conv(X)
        ``-x``       Conv(W^R X) + Gamma
        ``-x-gamma`` Conv(W^R X)
    fusion_method (overrides variant when nonzero, Table VIII;
    ``W^Gamma = Softmax(Gamma_bar^S)`` projected back onto variables):
        1  Conv(W^Gamma W^R X + X)
        2  Conv(W^R X + W^Gamma X)
        3  Conv(W^R X + W^Gamma X + X)
        4  Conv(W^R X + X) * W^Gamma
    """

    def __init__(
        self,
        d_x: int,
        d_model: int,
        seq_len: int,
        n_scales: int = 4,
        variant: str = "full",
        fusion_method: int = 0,
        rng=None,
    ) -> None:
        super().__init__()
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
        if fusion_method not in {0, 1, 2, 3, 4}:
            raise ValueError("fusion_method must be 0..4")
        self.variant = variant
        self.fusion_method = fusion_method
        self.conv = Conv1d(d_x, d_model, kernel_size=3, padding="same", padding_mode="circular", rng=rng)
        self.needs_gamma = fusion_method != 0 or variant in ("full", "-r", "-x")
        if self.needs_gamma:
            self.multiscale = MultiscaleDynamics(n_scales, seq_len, d_model, rng=rng)
        if fusion_method != 0:
            # project Gamma weights back onto the variable space for W^Gamma X
            self.gamma_proj = Linear(d_model, d_x, rng=rng)

    def _gamma_weights(self, gamma: Tensor) -> Tensor:
        """W^Gamma: softmax over variables of the projected multiscale term."""
        return F.softmax(self.gamma_proj(gamma), axis=-1)

    def forward(self, x: Tensor, marks: Tensor) -> Tensor:
        """x: (B, L, d_x) scaled values; marks: (B, L, K) calendar features."""
        w_r = Tensor(multivariate_correlation_weights(x.data))
        gamma = self.multiscale(marks) if self.needs_gamma else None

        if self.fusion_method:
            w_gamma = self._gamma_weights(gamma)
            if self.fusion_method == 1:
                mixed = w_gamma * (w_r * x) + x
                return self.conv(mixed)
            if self.fusion_method == 2:
                return self.conv(w_r * x + w_gamma * x)
            if self.fusion_method == 3:
                return self.conv(w_r * x + w_gamma * x + x)
            # method 4: scale the embedded output by softmax(Gamma) channelwise
            embedded = self.conv(w_r * x + x)
            return embedded * F.softmax(gamma, axis=-1)

        if self.variant == "full":
            return self.conv(w_r * x + x) + gamma
        if self.variant == "-gamma":
            return self.conv(w_r * x + x)
        if self.variant == "-r":
            return self.conv(x) + gamma
        if self.variant == "-r-gamma":
            return self.conv(x)
        if self.variant == "-x":
            return self.conv(w_r * x) + gamma
        # "-x-gamma"
        return self.conv(w_r * x)
