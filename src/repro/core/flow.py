"""Normalizing-flow block for LTTF (§IV-C, Fig. 3b, Eqs. 15-17).

The flow absorbs the encoder's and decoder's GRU hidden states:

- Eq. (15):  z_e = mu_e(h_e) + sigma_e(h_e) * eps,     eps ~ N(0, I)
- Eq. (16):  z_0 = mu_d(h_d) + sigma_d(h_d) * z_e
- Eq. (17):  z_t = mu_t([h_d, z_{t-1}]) + sigma_t([h_d, z_{t-1}]) * z_{t-1}

The final latent z_T is projected to the target series, so the future is
generated *directly* from latent states (the paper trains this with MSE,
Eq. 18, instead of log-likelihood).  Drawing several eps produces the
uncertainty bands of Figs. 6-7; sigma networks use softplus so scales
stay positive.

``mode`` implements the Table VII ablations: ``z_e``/``z_d``/``z_0``
short-circuit the chain at the corresponding latent; ``none`` is handled
by the caller (flow skipped entirely).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn import Linear, Module, ModuleList
from repro.tensor import Tensor, functional as F
from repro.tensor.random import spawn_rng

FLOW_MODES = ("flow", "z_e", "z_d", "z_0")

# Observability hook: called with (anomaly_kind, payload_dict) when the
# flow loss goes non-finite.  None (the default) costs nothing — the
# telemetry layer (repro.obs) installs a callback during instrumented
# runs; core never imports obs, the dependency points one way.
_ANOMALY_HOOK: Optional[Callable[[str, dict], None]] = None


def set_flow_anomaly_hook(
    hook: Optional[Callable[[str, dict], None]],
) -> Optional[Callable[[str, dict], None]]:
    """Install (or clear, with None) the flow anomaly hook; returns the
    previous hook so callers can restore it."""
    global _ANOMALY_HOOK
    previous = _ANOMALY_HOOK
    _ANOMALY_HOOK = hook
    return previous


class _GaussianHead(Module):
    """mu/sigma networks over a hidden state: FCN_mu(h), softplus FCN_sigma(h)."""

    def __init__(self, in_dim: int, latent_dim: int, rng=None) -> None:
        super().__init__()
        self.mu = Linear(in_dim, latent_dim, rng=rng)
        self.sigma = Linear(in_dim, latent_dim, rng=rng)

    def forward(self, h: Tensor) -> Tuple[Tensor, Tensor]:
        return self.mu(h), F.softplus(self.sigma(h)) + 1e-6


class NormalizingFlow(Module):
    """The conditioned affine flow chain of Eqs. (15)-(17).

    Parameters
    ----------
    d_hidden:
        Dimension of the encoder/decoder hidden states h_e, h_d.
    latent_dim:
        Dimension of the latent variables z.
    pred_len, c_out:
        Output series shape; z_T is projected to (pred_len, c_out).
    n_flows:
        T — the number of chained transformations (paper default 2).
    mode:
        'flow' (full chain) or a Table VII ablation ('z_e'/'z_d'/'z_0').
    """

    def __init__(
        self,
        d_hidden: int,
        latent_dim: int,
        pred_len: int,
        c_out: int,
        n_flows: int = 2,
        mode: str = "flow",
        seed: Optional[int] = None,
        rng=None,
    ) -> None:
        super().__init__()
        if mode not in FLOW_MODES:
            raise ValueError(f"mode must be one of {FLOW_MODES}, got {mode!r}")
        if n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        self.mode = mode
        self.latent_dim = latent_dim
        self.pred_len = pred_len
        self.c_out = c_out
        self.n_flows = n_flows
        self.encoder_head = _GaussianHead(d_hidden, latent_dim, rng=rng)  # Eq. (15)
        self.decoder_head = _GaussianHead(d_hidden, latent_dim, rng=rng)  # Eq. (16)
        self.transforms = ModuleList(  # Eq. (17), conditioned on h_d
            [_GaussianHead(d_hidden + latent_dim, latent_dim, rng=rng) for _ in range(n_flows)]
        )
        self.projection = Linear(latent_dim, pred_len * c_out, rng=rng)
        # scale head for the optional NLL objective (library extension: the
        # paper substitutes MSE for the log-likelihood, §IV-D)
        self.scale_projection = Linear(latent_dim, pred_len * c_out, rng=rng)
        self._rng = spawn_rng(seed)

    # ------------------------------------------------------------------
    def _sample_eps(self, batch: int, deterministic: bool) -> Tensor:
        if deterministic:
            return Tensor(np.zeros((batch, self.latent_dim)))
        return Tensor(self._rng.normal(size=(batch, self.latent_dim)))

    def latent_chain(self, h_enc: Tensor, h_dec: Tensor, deterministic: bool = False) -> List[Tensor]:
        """Return [z_e, z_0, z_1, ..., z_T] for inspection/ablation."""
        eps = self._sample_eps(h_enc.shape[0], deterministic)
        mu_e, sigma_e = self.encoder_head(h_enc)
        z_e = mu_e + sigma_e * eps  # Eq. (15)
        mu_d, sigma_d = self.decoder_head(h_dec)
        z = mu_d + sigma_d * z_e  # Eq. (16)
        chain = [z_e, z]
        for transform in self.transforms:  # Eq. (17)
            conditioned = F.concat([h_dec, z], axis=-1)
            mu_t, sigma_t = transform(conditioned)
            z = mu_t + sigma_t * z
            chain.append(z)
        return chain

    def forward(self, h_enc: Tensor, h_dec: Tensor, deterministic: bool = False) -> Tensor:
        """Generate the target series (B, pred_len, c_out) from hidden states."""
        chain = self.latent_chain(h_enc, h_dec, deterministic=deterministic)
        if self.mode == "flow":
            z = chain[-1]
        elif self.mode == "z_e":
            z = chain[0]
        elif self.mode == "z_0":
            z = chain[1]
        else:  # 'z_d': Gaussian re-parameterization of the decoder state alone
            eps = self._sample_eps(h_dec.shape[0], deterministic)
            mu_d, sigma_d = self.decoder_head(h_dec)
            z = mu_d + sigma_d * eps
        batch = z.shape[0]
        return self.projection(z).reshape(batch, self.pred_len, self.c_out)

    def sample(
        self, h_enc: Tensor, h_dec: Tensor, n_samples: int = 100, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Draw ``n_samples`` stochastic forecasts: (S, B, pred_len, c_out).

        ``out`` (same shape) receives the draws in place — callers doing
        repeated Monte-Carlo passes preallocate once instead of paying a
        fresh (S, B, L, C) stack per call.
        """
        if out is None:
            first = self.forward(h_enc, h_dec, deterministic=False).data
            out = np.empty((n_samples,) + first.shape, dtype=first.dtype)
            out[0] = first
            start = 1
        else:
            start = 0
        for s in range(start, n_samples):
            out[s] = self.forward(h_enc, h_dec, deterministic=False).data
        return out

    # ------------------------------------------------------------------
    # NLL extension: an explicit Gaussian output distribution
    # ------------------------------------------------------------------
    def _terminal_latent(self, h_enc: Tensor, h_dec: Tensor, deterministic: bool) -> Tensor:
        chain = self.latent_chain(h_enc, h_dec, deterministic=deterministic)
        return chain[-1]

    def output_distribution(
        self, h_enc: Tensor, h_dec: Tensor, deterministic: bool = True
    ) -> Tuple[Tensor, Tensor]:
        """(mu, sigma) of the target series, each (B, pred_len, c_out).

        MSE training (Eq. 18) provably shrinks the sampled variance; this
        head lets the flow be trained by maximum likelihood instead, so the
        predicted sigma stays meaningful for uncertainty bands.
        """
        z = self._terminal_latent(h_enc, h_dec, deterministic)
        batch = z.shape[0]
        mu = self.projection(z).reshape(batch, self.pred_len, self.c_out)
        sigma = F.softplus(self.scale_projection(z)).reshape(batch, self.pred_len, self.c_out) + 1e-4
        return mu, sigma

    def nll(self, h_enc: Tensor, h_dec: Tensor, target: Tensor, deterministic: bool = False) -> Tensor:
        """Gaussian negative log-likelihood of the target series."""
        mu, sigma = self.output_distribution(h_enc, h_dec, deterministic=deterministic)
        diff = target.detach() - mu
        loss = (F.log(sigma) + 0.5 * (diff * diff) / (sigma * sigma)).mean() + 0.5 * float(np.log(2 * np.pi))
        if _ANOMALY_HOOK is not None and not np.isfinite(loss.data).all():
            _ANOMALY_HOOK(
                "flow_nll_nonfinite",
                {
                    "loss": float(np.asarray(loss.data).reshape(-1)[0]),
                    "sigma_min": float(sigma.data.min()),
                    "mu_nonfinite": int((~np.isfinite(mu.data)).sum()),
                },
            )
        return loss

    def sample_distribution(
        self, h_enc: Tensor, h_dec: Tensor, n_samples: int = 100, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Draws from the explicit output distribution (S, B, pred_len, c_out).

        ``out`` works as in :meth:`sample`: a preallocated (S, B, L, C)
        buffer receives every draw in place.
        """
        for s in range(n_samples):
            mu, sigma = self.output_distribution(h_enc, h_dec, deterministic=False)
            eps = self._rng.normal(size=mu.shape)
            if out is None:
                out = np.empty((n_samples,) + tuple(mu.shape), dtype=mu.data.dtype)
            np.multiply(sigma.data, eps, out=out[s])
            out[s] += mu.data
        return out
