"""Configuration for the Conformer model.

Defaults follow §V-A3 of the paper: 2-layer encoder, 1-layer decoder,
2-step normalizing flow, sliding-window size 2, lambda = 0.8, Adam with
lr 1e-4, batch 32.  The paper uses d_model = 512 on an A100; the default
here is CPU-sized and every experiment config can scale it back up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class ConformerConfig:
    """Hyper-parameters of Conformer and its ablation switches."""

    # data dimensions
    enc_in: int = 7  # input variables d_x
    dec_in: int = 7
    c_out: int = 7  # predicted variables
    input_len: int = 96  # L_x
    label_len: int = 48  # decoder context length
    pred_len: int = 96  # L_y
    d_time: int = 4  # number of calendar-feature resolutions K

    # architecture
    d_model: int = 32
    n_heads: int = 8
    e_layers: int = 2
    d_layers: int = 1
    d_ff: int = 64
    window: int = 2  # sliding-window attention size w
    moving_avg: int = 25  # series-decomposition kernel
    decomp_kind: str = "ma"  # "ma" (Eq. 9 moving average) | "stl" (loess trend)
    stl_span: float = 0.3  # loess span when decomp_kind == "stl"
    decomp_iterations: int = 1  # eta in Eq. (10)
    enc_rnn_layers: int = 1  # GRU depth (paper: 1-layer enc, 2-layer dec)
    dec_rnn_layers: int = 2
    dropout: float = 0.05
    activation: str = "gelu"

    # normalizing flow
    n_flows: int = 2  # T, number of transformations
    flow_latent: Optional[int] = None  # defaults to d_model
    lambda_weight: float = 0.8  # lambda in Eq. (18)

    # ablation switches (papers' Tables V, VII, VIII, IX)
    input_variant: str = "full"  # full|-gamma|-r|-r-gamma|-x|-x-gamma
    fusion_method: int = 0  # 0 = Eq. (6); 1..4 = Table VIII methods
    attention_type: str = "sliding_window"  # Table VI swaps
    flow_mode: str = "flow"  # flow|z_e|z_d|z_0|none (Table VII)
    flow_loss: str = "mse"  # mse (paper, Eq. 18) | nll (likelihood extension)
    flow_hidden_source: Tuple[str, str] = ("first", "first")  # Table IX: (enc, dec) in {first,last}

    # training
    learning_rate: float = 1e-4
    batch_size: int = 32
    max_epochs: int = 10
    patience: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.flow_latent is None:
            self.flow_latent = self.d_model
        if self.label_len > self.input_len:
            raise ValueError("label_len cannot exceed input_len")
        if not 0.0 <= self.lambda_weight <= 1.0:
            raise ValueError("lambda_weight must be in [0, 1]")
        if self.input_variant not in {"full", "-gamma", "-r", "-r-gamma", "-x", "-x-gamma"}:
            raise ValueError(f"unknown input_variant {self.input_variant!r}")
        if self.fusion_method not in {0, 1, 2, 3, 4}:
            raise ValueError("fusion_method must be 0..4")
        if self.flow_mode not in {"flow", "z_e", "z_d", "z_0", "none"}:
            raise ValueError(f"unknown flow_mode {self.flow_mode!r}")
        if self.flow_loss not in {"mse", "nll"}:
            raise ValueError(f"flow_loss must be 'mse' or 'nll', got {self.flow_loss!r}")
        if self.decomp_kind not in {"ma", "stl"}:
            raise ValueError(f"decomp_kind must be 'ma' or 'stl', got {self.decomp_kind!r}")
        for src in self.flow_hidden_source:
            if src not in {"first", "last"}:
                raise ValueError("flow_hidden_source entries must be 'first' or 'last'")

    @property
    def dec_len(self) -> int:
        """Decoder sequence length (label context + prediction horizon)."""
        return self.label_len + self.pred_len
