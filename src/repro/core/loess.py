"""Loess smoothing and STL-style decomposition.

The paper's series decomposition cites STL (Cleveland et al. [45]) but
implements the moving-average variant (Eq. 9, like Autoformer).  This
module provides the loess-based alternative as a drop-in:

- :class:`LoessSmoother` — local linear regression with tricube weights.
  For a fixed length and bandwidth the smoother is a *linear operator*,
  so we precompute its L x L matrix once and apply it with a matmul —
  fully differentiable through the autodiff engine and fast.
- :class:`STLDecomposition` — loess trend + per-phase seasonal means,
  with the same ``(trend, seasonal_plus_residual)`` contract as
  :class:`~repro.core.decomp.SeriesDecomposition` so SIRN can swap it in
  (``ConformerConfig.decomp_kind = "stl"``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import Module
from repro.tensor import Tensor, get_default_dtype, plan_cache


def loess_matrix(length: int, span: float) -> np.ndarray:
    """The L x L linear operator of local-linear loess with tricube weights.

    ``span`` is the fraction of points in each local window (0 < span <= 1).
    Row i of the matrix gives the weights producing the smoothed value at
    position i.
    """
    if not 0.0 < span <= 1.0:
        raise ValueError(f"span must be in (0, 1], got {span}")
    window = max(3, int(np.ceil(span * length)))
    window = min(window, length)
    # built in the engine's active compute dtype so a float32 inference
    # pass gets a float32 operator instead of a hard-coded float64 one
    dt = get_default_dtype()
    positions = np.arange(length, dtype=dt)
    matrix = np.zeros((length, length), dtype=dt)
    for i in range(length):
        distances = np.abs(positions - i)
        # the `window` nearest points
        cutoff = np.partition(distances, window - 1)[window - 1]
        mask = distances <= cutoff
        local_x = positions[mask]
        u = distances[mask] / max(cutoff, 1e-12)
        weights = (1.0 - u**3) ** 3
        weights = np.clip(weights, 1e-12, None)
        # weighted local linear fit evaluated at x = i:
        # value = e1^T (X^T W X)^-1 X^T W y  with X = [1, x - i]
        design = np.column_stack([np.ones(local_x.size), local_x - i])
        wx = design * weights[:, None]
        gram = design.T @ wx
        gram += 1e-10 * np.eye(2)
        solve = np.linalg.solve(gram, wx.T)  # (2, n_local)
        matrix[i, mask] = solve[0]
    return matrix


class LoessSmoother(Module):
    """Differentiable loess smoothing over the time axis of (B, L, C).

    The smoothing matrix depends only on (L, span, dtype), so it lives in
    the process-wide plan cache and is shared across instances.
    """

    def __init__(self, span: float = 0.3) -> None:
        super().__init__()
        self.span = span

    def _matrix(self, length: int) -> np.ndarray:
        dt = get_default_dtype()

        def build() -> np.ndarray:
            matrix = loess_matrix(length, self.span)
            matrix.setflags(write=False)
            return matrix

        return plan_cache().get(("loess_matrix", length, self.span, str(dt)), build)

    def forward(self, x: Tensor) -> Tensor:
        matrix = self._matrix(x.shape[1])
        return Tensor(matrix) @ x  # (L, L) @ (B, L, C) -> (B, L, C)


class STLDecomposition(Module):
    """STL-style decomposition: loess trend, per-phase seasonal, residual.

    Matches the SeriesDecomposition contract: returns ``(trend,
    seasonal)`` with ``trend + seasonal == input`` — the "seasonal" part
    here is seasonal + remainder, exactly as Eq. (9) lumps them.
    When ``period`` is set, the seasonal component is additionally
    available via :meth:`components`.
    """

    def __init__(self, span: float = 0.3, period: int | None = None) -> None:
        super().__init__()
        self.smoother = LoessSmoother(span)
        self.period = period

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        trend = self.smoother(x)
        return trend, x - trend

    def components(self, x: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Full (trend, seasonal, remainder) split; needs ``period``."""
        if self.period is None:
            raise ValueError("components() requires a period")
        trend, detrended = self.forward(x)
        length = x.shape[1]
        phases = np.arange(length) % self.period
        # per-phase averaging is a constant linear operator -> differentiable
        phase_matrix = np.zeros((length, length))
        for p in range(self.period):
            members = np.where(phases == p)[0]
            if members.size:
                phase_matrix[np.ix_(members, members)] = 1.0 / members.size
        seasonal = Tensor(phase_matrix) @ detrended
        remainder = detrended - seasonal
        return trend, seasonal, remainder
