"""Series decomposition: trend = moving average, seasonal = residual (Eq. 9)."""

from __future__ import annotations

from typing import Tuple

from repro.nn import Module, MovingAverage
from repro.tensor import Tensor


class SeriesDecomposition(Module):
    """Split a (B, L, C) series into (trend, seasonal) with trend+seasonal == input."""

    def __init__(self, kernel_size: int = 25) -> None:
        super().__init__()
        self.moving_average = MovingAverage(kernel_size)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        trend = self.moving_average(x)
        seasonal = x - trend
        return trend, seasonal
