"""The Conformer model (Fig. 1): input representation -> SIRN
encoder/decoder with sliding-window attention -> normalizing flow.

``forward`` returns the decoder prediction ``y_out`` and the flow
prediction ``z_out`` (Eq. 18 trains both against the target).  ``predict``
blends them with the lambda trade-off, and ``predict_with_uncertainty``
draws flow samples for the quantile bands of Figs. 6-7.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.contracts.spec import shape_contract
from repro.core.config import ConformerConfig
from repro.core.flow import NormalizingFlow
from repro.core.input_repr import InputRepresentation
from repro.core.sirn import SIRNDecoder, SIRNEncoder
from repro.nn import Module
from repro.tensor import Tensor, functional as F, get_arena, inference_mode
from repro.tensor.random import spawn_rng


class Conformer(Module):
    """End-to-end Conformer for long-term time-series forecasting."""

    def __init__(self, config: ConformerConfig) -> None:
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed)

        self.enc_repr = InputRepresentation(
            d_x=config.enc_in,
            d_model=config.d_model,
            seq_len=config.input_len,
            n_scales=config.d_time,
            variant=config.input_variant,
            fusion_method=config.fusion_method,
            rng=rng,
        )
        self.dec_repr = InputRepresentation(
            d_x=config.dec_in,
            d_model=config.d_model,
            seq_len=config.dec_len,
            n_scales=config.d_time,
            variant=config.input_variant,
            fusion_method=config.fusion_method,
            rng=rng,
        )
        sirn_kwargs = dict(
            d_model=config.d_model,
            n_heads=config.n_heads,
            window=config.window,
            moving_avg=config.moving_avg,
            decomp_iterations=config.decomp_iterations,
            dropout=config.dropout,
            attention_type=config.attention_type,
            decomp_kind=config.decomp_kind,
            stl_span=config.stl_span,
            rng=rng,
        )
        self.encoder = SIRNEncoder(config.e_layers, rnn_layers=config.enc_rnn_layers, **sirn_kwargs)
        self.decoder = SIRNDecoder(
            config.d_layers,
            c_out=config.c_out,
            rnn_layers=config.dec_rnn_layers,
            **sirn_kwargs,
        )
        self._flow_inputs: Optional[Tuple[Tensor, Tensor]] = None
        self.flow: Optional[NormalizingFlow] = None
        if config.flow_mode != "none":
            self.flow = NormalizingFlow(
                d_hidden=config.d_model,
                latent_dim=config.flow_latent,
                pred_len=config.pred_len,
                c_out=config.c_out,
                n_flows=config.n_flows,
                mode=config.flow_mode,
                seed=config.seed + 1,
                rng=rng,
            )

    # ------------------------------------------------------------------
    def _pick_hidden(self, states, which: str) -> Tensor:
        return states[0] if which == "first" else states[-1]

    @shape_contract(
        inputs={
            "x_enc": "B L D",
            "x_mark_enc": "B L M",
            "x_dec": "B Ldec D",
            "y_mark_dec": "B Ldec M",
        },
        output=("B H C", None),  # z_out is absent when flows are disabled
    )
    def forward(
        self,
        x_enc: Tensor,
        x_mark_enc: Tensor,
        x_dec: Tensor,
        y_mark_dec: Tensor,
        deterministic: bool = False,
    ) -> Tuple[Tensor, Optional[Tensor]]:
        """Return (y_out (B, pred_len, c_out), z_out or None)."""
        enc_in = self.enc_repr(x_enc, x_mark_enc)
        memory = self.encoder(enc_in)
        dec_in = self.dec_repr(x_dec, y_mark_dec)
        dec_out, _ = self.decoder(dec_in, memory)
        y_out = dec_out[:, -self.config.pred_len :, :]

        z_out = None
        if self.flow is not None:
            h_enc = self._pick_hidden(self.encoder.hidden_states(), self.config.flow_hidden_source[0])
            h_dec = self._pick_hidden(self.decoder.hidden_states(), self.config.flow_hidden_source[1])
            # stashed for compute_loss (flow NLL needs the hidden pair);
            # overwritten by every forward, read only by the training-loss
            # path — inference never consumes it
            self._flow_inputs = (h_enc, h_dec)  # repro: noqa[dataflow-impure-predict]
            if self.config.flow_loss == "nll":
                z_out, _ = self.flow.output_distribution(h_enc, h_dec, deterministic=deterministic)
            else:
                z_out = self.flow(h_enc, h_dec, deterministic=deterministic)
        return y_out, z_out

    # ------------------------------------------------------------------
    def loss(self, y_out: Tensor, z_out: Optional[Tensor], target: Tensor) -> Tensor:
        """Eq. (18): lambda * MSE(y_out, Y) + (1 - lambda) * MSE(z_out, Y).

        With ``flow_loss='nll'`` the flow term is the Gaussian negative
        log-likelihood instead — the objective the paper *substituted away*
        (§IV-D); keeping it available preserves calibrated variances.
        """
        lam = self.config.lambda_weight
        base = F.mse_loss(y_out, target)
        if z_out is None:
            return base
        if self.config.flow_loss == "nll":
            h_enc, h_dec = self._flow_inputs
            return lam * base + (1.0 - lam) * self.flow.nll(h_enc, h_dec, target)
        return lam * base + (1.0 - lam) * F.mse_loss(z_out, target)

    def compute_loss(self, outputs, target: Tensor) -> Tensor:
        """Trainer protocol: unpack the (y_out, z_out) tuple into Eq. (18)."""
        y_out, z_out = outputs
        return self.loss(y_out, z_out, target)

    def point_forecast(self, outputs) -> np.ndarray:
        """Trainer protocol: lambda-weighted blend of the two heads."""
        y_out, z_out = outputs
        if z_out is None:
            return y_out.data
        lam = self.config.lambda_weight
        return lam * y_out.data + (1.0 - lam) * z_out.data

    def predict(self, x_enc, x_mark_enc, x_dec, y_mark_dec) -> np.ndarray:
        """Point forecast: lambda-weighted blend of decoder and flow heads."""
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                y_out, z_out = self.forward(
                    _t(x_enc), _t(x_mark_enc), _t(x_dec), _t(y_mark_dec), deterministic=True
                )
            if z_out is None:
                return y_out.data
            lam = self.config.lambda_weight
            return lam * y_out.data + (1.0 - lam) * z_out.data
        finally:
            self.train(was_training)

    def predict_with_uncertainty(
        self,
        x_enc,
        x_mark_enc,
        x_dec,
        y_mark_dec,
        n_samples: int = 100,
        quantiles: Tuple[float, ...] = (0.05, 0.25, 0.75, 0.95),
    ) -> Dict[str, np.ndarray]:
        """Sample the flow head for uncertainty bands (Figs. 6-7).

        Returns a dict with the deterministic 'point' forecast, the sample
        'mean', and one array per requested quantile keyed ``"q0.05"`` etc.
        Samples blend decoder and flow heads with the lambda trade-off.
        """
        if self.flow is None:
            raise RuntimeError("uncertainty requires flow_mode != 'none'")
        was_training = self.training
        self.eval()
        try:
            with inference_mode():
                y_out, _ = self.forward(_t(x_enc), _t(x_mark_enc), _t(x_dec), _t(y_mark_dec), deterministic=True)
                h_enc, h_dec = self._flow_inputs
                # one recycled (S, B, L, C) buffer receives every Monte-Carlo
                # draw; only the blended result below is freshly allocated
                # (it escapes via result["samples"])
                shape = (n_samples,) + tuple(y_out.shape)
                z_samples = get_arena().get("model.mc_samples", shape, y_out.data.dtype)
                if self.config.flow_loss == "nll":
                    self.flow.sample_distribution(h_enc, h_dec, n_samples=n_samples, out=z_samples)
                else:
                    self.flow.sample(h_enc, h_dec, n_samples=n_samples, out=z_samples)
                # blend INSIDE the inference block: exiting inference_mode
                # releases the arena checkout, so reading z_samples after
                # the block would be a use-after-release (the exact hazard
                # a concurrent request reusing the slot turns into corrupt
                # forecasts — the alias sanitizer flags it)
                lam = self.config.lambda_weight
                blended = np.empty_like(z_samples)
                np.multiply(z_samples, 1.0 - lam, out=blended)
                blended += lam * y_out.data[None]
            result = {"point": blended.mean(axis=0), "mean": blended.mean(axis=0), "samples": blended}
            for q in quantiles:
                result[f"q{q}"] = np.quantile(blended, q, axis=0)
            return result
        finally:
            self.train(was_training)


def _t(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)
