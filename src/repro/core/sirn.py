"""Stationary and Instant Recurrent Network (SIRN, §IV-B2, Fig. 3a).

One SIRN layer does three things:

1. **Global + local mixing** (Eq. 8): a GRU scans the whole sequence and
   its softmaxed output gates the input (global stationary signal), a
   sliding-window MHA adds the local signal, and a residual keeps the
   original representation.
2. **Recurrent decomposition distillation** (Eqs. 9-10): the seasonal part
   is repeatedly refined by Conv + windowed-attention injections through
   ``eta`` decomposition rounds; trends from every round are accumulated.
3. **Fusion** (Eq. 11): the final seasonal part plus a second GRU run over
   the summed trends, linearly projected.

The hidden state of the *first* GRU is exposed (``last_hidden``) — it is
what the normalizing-flow block absorbs (Fig. 3b).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.decomp import SeriesDecomposition
from repro.nn import (
    GRU,
    Conv1d,
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    get_attention,
)
from repro.tensor import Tensor, functional as F


def _make_decomposition(decomp_kind: str, moving_avg: int, stl_span: float):
    """Eq. 9 moving-average decomposition, or the STL/loess alternative."""
    if decomp_kind == "stl":
        from repro.core.loess import STLDecomposition

        return STLDecomposition(span=stl_span)
    return SeriesDecomposition(moving_avg)


def _make_windowed_mha(d_model: int, n_heads: int, attention_type: str, window: int, dropout: float, rng=None):
    """Build the MHA_W block; ``attention_type`` supports the Table VI swaps."""
    kwargs = {}
    if attention_type == "sliding_window":
        kwargs["window"] = window
    mechanism = get_attention(attention_type, dropout=dropout, **kwargs)
    return MultiHeadAttention(d_model, n_heads, mechanism=mechanism, dropout=dropout, rng=rng)


class SIRNLayer(Module):
    """One SIRN block operating on (B, L, d_model)."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        window: int = 2,
        moving_avg: int = 25,
        decomp_iterations: int = 1,
        rnn_layers: int = 1,
        dropout: float = 0.05,
        attention_type: str = "sliding_window",
        decomp_kind: str = "ma",
        stl_span: float = 0.3,
        rng=None,
    ) -> None:
        super().__init__()
        if decomp_iterations < 1:
            raise ValueError("decomp_iterations (eta) must be >= 1")
        self.decomp_iterations = decomp_iterations
        self.global_rnn = GRU(d_model, d_model, num_layers=rnn_layers, rng=rng)
        self.local_attention = _make_windowed_mha(d_model, n_heads, attention_type, window, dropout, rng=rng)
        self.initial_decomp = _make_decomposition(decomp_kind, moving_avg, stl_span)
        self.decomps = ModuleList(
            [_make_decomposition(decomp_kind, moving_avg, stl_span) for _ in range(decomp_iterations)]
        )
        self.convs = ModuleList(
            [Conv1d(d_model, d_model, kernel_size=3, padding="same", rng=rng) for _ in range(decomp_iterations)]
        )
        self.trend_rnn = GRU(d_model, d_model, num_layers=rnn_layers, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.norm = LayerNorm(d_model)
        self.dropout = Dropout(dropout)
        self.last_hidden: Optional[Tensor] = None  # (B, d_model) for the flow

    def forward(self, x: Tensor) -> Tensor:
        # ---- Eq. (8): global gate + local attention + residual ----
        rnn_out, rnn_states = self.global_rnn(x)
        self.last_hidden = rnn_states[-1]
        gate = F.softmax(rnn_out, axis=-1)
        local = self.local_attention(x)
        mixed = gate * x + local + x

        # ---- Eqs. (9)-(10): recurrent decomposition distillation ----
        trend, seasonal = self.initial_decomp(mixed)
        trend_sum = trend
        for conv, decomp in zip(self.convs, self.decomps):
            refined = conv(seasonal) + self.local_attention(mixed)
            trend, seasonal = decomp(refined)
            trend_sum = trend_sum + trend

        # ---- Eq. (11): fuse instant + stationary ----
        trend_feat, _ = self.trend_rnn(trend_sum)
        out = self.out_proj(seasonal + trend_feat)
        return self.norm(self.dropout(out) + x)


class SIRNEncoder(Module):
    """Stack of SIRN layers; collects per-layer hidden states for the flow."""

    def __init__(self, n_layers: int, **layer_kwargs) -> None:
        super().__init__()
        self.layers = ModuleList([SIRNLayer(**layer_kwargs) for _ in range(n_layers)])

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def hidden_states(self) -> List[Tensor]:
        """First-GRU hidden state of each layer, in layer order."""
        return [layer.last_hidden for layer in self.layers]


class SIRNDecoderLayer(Module):
    """SIRN layer plus cross-attention to the encoder memory."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        window: int = 2,
        moving_avg: int = 25,
        decomp_iterations: int = 1,
        rnn_layers: int = 2,
        dropout: float = 0.05,
        attention_type: str = "sliding_window",
        decomp_kind: str = "ma",
        stl_span: float = 0.3,
        rng=None,
    ) -> None:
        super().__init__()
        self.sirn = SIRNLayer(
            d_model,
            n_heads,
            window=window,
            moving_avg=moving_avg,
            decomp_iterations=decomp_iterations,
            rnn_layers=rnn_layers,
            dropout=dropout,
            attention_type=attention_type,
            decomp_kind=decomp_kind,
            stl_span=stl_span,
            rng=rng,
        )
        self.cross_attention = MultiHeadAttention(d_model, n_heads, dropout=dropout, rng=rng)
        self.norm = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    @property
    def last_hidden(self) -> Optional[Tensor]:
        return self.sirn.last_hidden

    def forward(self, x: Tensor, memory: Tensor) -> Tensor:
        x = self.sirn(x)
        attended = self.cross_attention(x, memory, memory)
        return self.norm(x + self.dropout(attended))


class SIRNDecoder(Module):
    """Stack of decoder layers followed by the output projection."""

    def __init__(self, n_layers: int, d_model: int, c_out: int, rng=None, **layer_kwargs) -> None:
        super().__init__()
        self.layers = ModuleList(
            [SIRNDecoderLayer(d_model=d_model, rng=rng, **layer_kwargs) for _ in range(n_layers)]
        )
        self.projection = Linear(d_model, c_out, rng=rng)

    def forward(self, x: Tensor, memory: Tensor) -> Tuple[Tensor, Tensor]:
        """Return (projected output (B, L_dec, c_out), last features)."""
        for layer in self.layers:
            x = layer(x, memory)
        return self.projection(x), x

    def hidden_states(self) -> List[Tensor]:
        return [layer.last_hidden for layer in self.layers]
