"""Conformer core: the paper's primary contribution."""

from repro.core.config import ConformerConfig
from repro.core.decomp import SeriesDecomposition
from repro.core.loess import LoessSmoother, STLDecomposition
from repro.core.flow import NormalizingFlow, set_flow_anomaly_hook
from repro.core.input_repr import (
    InputRepresentation,
    MultiscaleDynamics,
    multivariate_correlation_weights,
)
from repro.core.model import Conformer
from repro.core.sirn import SIRNDecoder, SIRNDecoderLayer, SIRNEncoder, SIRNLayer

__all__ = [
    "Conformer",
    "ConformerConfig",
    "SeriesDecomposition",
    "LoessSmoother",
    "STLDecomposition",
    "NormalizingFlow",
    "set_flow_anomaly_hook",
    "InputRepresentation",
    "MultiscaleDynamics",
    "multivariate_correlation_weights",
    "SIRNEncoder",
    "SIRNDecoder",
    "SIRNLayer",
    "SIRNDecoderLayer",
]
