"""Gradient verification against central finite differences.

Public equivalent of ``torch.autograd.gradcheck`` for this engine —
used by the test suite and available to users extending the op set.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn()`` w.r.t. ``wrt``.

    ``fn`` must be a closure re-evaluating the computation from ``wrt.data``
    (mutated in place element by element).
    """
    grad = np.zeros_like(wrt.data)
    for idx in np.ndindex(wrt.data.shape):
        original = wrt.data[idx]
        wrt.data[idx] = original + eps
        upper = fn().item()
        wrt.data[idx] = original - eps
        lower = fn().item()
        wrt.data[idx] = original
        grad[idx] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    raise_on_fail: bool = True,
) -> bool:
    """Check autodiff gradients of the scalar ``fn()`` against finite
    differences for every tensor in ``params``.

    Returns True when all gradients match; raises (or returns False with
    ``raise_on_fail=False``) otherwise.
    """
    for p in params:
        p.zero_grad()
    out = fn()
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for i, p in enumerate(params):
        if p.grad is None:
            if raise_on_fail:
                raise AssertionError(f"parameter #{i} received no gradient")
            return False
        expected = numerical_gradient(fn, p, eps=eps)
        if not np.allclose(p.grad, expected, atol=atol, rtol=rtol):
            if raise_on_fail:
                worst = np.abs(p.grad - expected).max()
                raise AssertionError(
                    f"gradient mismatch for parameter #{i}: max abs error {worst:.3e}"
                )
            return False
    return True
