"""Scratch-buffer arena for the tape-free inference fast path.

The fused scan kernels allocate a handful of per-timestep work buffers
(gate pre-activations, candidate states, the running hidden state).  In
training those must be fresh — the backward pass reads them — but inside
``inference_mode()`` nothing outlives the loop iteration, so the kernels
check buffers out of this arena instead and numpy's allocator drops out
of the hot path entirely.

Rules of engagement (enforced by convention, asserted by tests):

- Only *work* buffers that die inside the kernel may come from the arena.
  Anything that escapes — the scan output, a returned hidden state — must
  be freshly allocated, otherwise the next call corrupts it.
- A slot is keyed by (tag, shape, dtype), so an encoder and a decoder
  sharing a tag but not a geometry each keep their own buffer instead of
  evicting one another every call.  Stale geometries (an old batch size,
  the float64 buffers after switching to float32) are flushed with
  :meth:`clear`.
- Buffer contents are NOT zeroed on checkout.  Callers must fully
  overwrite (``out=`` kernels, full-slice assignment) before reading.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class BufferArena:
    """Reusable scratch buffers keyed by (tag, shape, dtype)."""

    def __init__(self) -> None:
        self._slots: Dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self._nbytes = 0
        #: most bytes ever pinned at once (survives clear(); memory gauges
        #: report it as the arena's high-water mark)
        self.high_water_bytes = 0

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Check out an uninitialised (shape, dtype) buffer for ``tag``.

        The first request for a geometry allocates; every later request
        with the same (tag, shape, dtype) returns the same buffer.
        """
        dtype = np.dtype(dtype)
        key = (tag, tuple(shape), dtype)
        buf = self._slots.get(key)
        if buf is not None:
            self.hits += 1
            return buf
        self.misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._slots[key] = buf
        self._nbytes += buf.nbytes
        if self._nbytes > self.high_water_bytes:
            self.high_water_bytes = self._nbytes
        return buf

    def clear(self) -> None:
        """Drop every slot (frees the memory; counters are kept)."""
        self._slots.clear()
        self._nbytes = 0

    def stats(self) -> Dict[str, int]:
        return {
            "slots": len(self._slots),
            "hits": self.hits,
            "misses": self.misses,
            "bytes": self._nbytes,
            "high_water_bytes": self.high_water_bytes,
        }

    def nbytes(self) -> int:
        """Total bytes currently pinned by live slots."""
        return self._nbytes


#: process-wide arena used by the fused inference kernels (the engine is
#: single-threaded; a per-thread arena would be needed before that changes)
_ARENA = BufferArena()


def get_arena() -> BufferArena:
    """The process-wide scratch arena."""
    return _ARENA
