"""Scratch-buffer arena for the tape-free inference fast path.

The fused scan kernels allocate a handful of per-timestep work buffers
(gate pre-activations, candidate states, the running hidden state).  In
training those must be fresh — the backward pass reads them — but inside
``inference_mode()`` nothing outlives the loop iteration, so the kernels
check buffers out of this arena instead and numpy's allocator drops out
of the hot path entirely.

Rules of engagement (enforced by convention, asserted by tests, and —
under :func:`repro.analysis.alias.alias_guard` — checked at runtime):

- Only *work* buffers that die inside the kernel may come from the arena.
  Anything that escapes — the scan output, a returned hidden state — must
  be freshly allocated, otherwise the next call corrupts it.
- A slot is keyed by (tag, shape, dtype), so an encoder and a decoder
  sharing a tag but not a geometry each keep their own buffer instead of
  evicting one another every call.  Stale geometries (an old batch size,
  the float64 buffers after switching to float32) are flushed with
  :meth:`clear`.
- Buffer contents are NOT zeroed on checkout.  Callers must fully
  overwrite (``out=`` kernels, full-slice assignment) before reading.
- A checkout is valid until the slot is *released* — by the owning kernel
  (:meth:`release` with its tag prefix), by the outermost
  ``inference_mode()`` exit, or by :meth:`clear`.  Holding an array past
  its release and reading it again is a use-after-release; the alias
  sanitizer stamps each checkout with a generation and reports exactly
  that, with a poison fill making even unchecked reads loud.

The ownership hooks follow the engine-sanitizer pattern: a single
``_alias_hook`` slot that is ``None`` in production, so the hot path pays
one ``is not None`` test per checkout and nothing else.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np


class BufferArena:
    """Reusable scratch buffers keyed by (tag, shape, dtype)."""

    def __init__(self) -> None:
        self._slots: Dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        #: re-keys caused by a dtype change on an existing (tag, shape)
        #: geometry — e.g. the float32 re-key after ``compute_dtype``
        #: flips.  Tracked apart from ``misses`` (a collision is *not*
        #: counted as a miss) so hit-rate gauges aren't inflated by a
        #: compute-dtype switch masquerading as a cold cache.
        self.dtype_collisions = 0
        self._nbytes = 0
        #: dtypes ever seen per (tag, shape) — feeds dtype_collisions
        self._geometry_dtypes: Dict[tuple, Set[np.dtype]] = {}
        #: most bytes ever pinned at once (survives clear(); memory gauges
        #: report it as the arena's high-water mark)
        self.high_water_bytes = 0
        #: ownership sanitizer (repro.analysis.alias); None = zero-overhead
        self._alias_hook = None

    def set_alias_hook(self, hook):
        """Install (or clear, with None) the ownership sanitizer hook.

        Returns the previous hook so nested guards can restore it (same
        contract as the engine's ``set_sanitizer``).
        """
        previous = self._alias_hook
        self._alias_hook = hook
        return previous

    def get(self, tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Check out an uninitialised (shape, dtype) buffer for ``tag``.

        The first request for a geometry allocates; every later request
        with the same (tag, shape, dtype) returns the same buffer.
        """
        dtype = np.dtype(dtype)
        key = (tag, tuple(shape), dtype)
        buf = self._slots.get(key)
        if buf is not None:
            self.hits += 1
            if self._alias_hook is not None:
                self._alias_hook.on_arena_checkout(key, buf)
            return buf
        geometry = key[:2]
        seen = self._geometry_dtypes.setdefault(geometry, set())
        if seen and dtype not in seen:
            # a dtype re-key on a known (tag, shape) geometry — e.g. the
            # float32 wave after ``compute_dtype`` flips.  Counted apart
            # from true cold misses so hit-rate gauges (hits / (hits +
            # misses)) aren't deflated by a mode switch.
            self.dtype_collisions += 1
        else:
            self.misses += 1
        seen.add(dtype)
        buf = np.empty(shape, dtype=dtype)
        self._slots[key] = buf
        self._nbytes += buf.nbytes
        if self._nbytes > self.high_water_bytes:
            self.high_water_bytes = self._nbytes
        if self._alias_hook is not None:
            self._alias_hook.on_arena_checkout(key, buf)
        return buf

    def release(self, prefix: Optional[str] = None) -> int:
        """End the current checkouts for every slot tagged ``prefix``.

        The buffers stay allocated (the next :meth:`get` re-checks them
        out — that *is* the designed reuse), but any array handle held
        from before the release is now stale.  With no sanitizer attached
        this is free: ownership is a debug-mode contract, not a hot-path
        cost.  Under :func:`repro.analysis.alias.alias_guard` each
        released buffer is poison-filled and registered so a later read
        through the engine is reported as a use-after-release.

        Returns the number of slots released (0 when no sanitizer is on).
        """
        hook = self._alias_hook
        if hook is None:
            return 0
        count = 0
        for key, buf in self._slots.items():
            if prefix is None or key[0].startswith(prefix):
                hook.on_arena_release(key, buf)
                count += 1
        return count

    def clear(self) -> None:
        """Drop every slot (frees the memory; counters are kept)."""
        self.release()
        self._slots.clear()
        self._geometry_dtypes.clear()
        self._nbytes = 0

    def stats(self) -> Dict[str, int]:
        return {
            "slots": len(self._slots),
            "hits": self.hits,
            "misses": self.misses,
            "dtype_collisions": self.dtype_collisions,
            "bytes": self._nbytes,
            "high_water_bytes": self.high_water_bytes,
        }

    def nbytes(self) -> int:
        """Total bytes currently pinned by live slots."""
        return self._nbytes


#: process-wide arena used by the fused inference kernels (the engine is
#: single-threaded; a per-thread arena would be needed before that changes)
_ARENA = BufferArena()


def get_arena() -> BufferArena:
    """The process-wide scratch arena."""
    return _ARENA
