"""Plan/table cache: memoized shape-derived constants for the model zoo.

Attention masks, neighbour-gather index maps, cumulative-average mixing
matrices, and positional-encoding table slices depend only on *geometry*
(sequence length, window, dtype) — yet the seed code rebuilt them on
every forward.  This cache keys each plan by its full geometry tuple so a
shape change can never reuse a stale plan (the new key simply misses and
the builder runs again), and keeps hit/miss counters so the perf suite
can assert reuse actually happens.

Unlike ``functools.lru_cache`` this layer is introspectable
(:meth:`PlanCache.stats`), explicitly invalidatable (:meth:`invalidate`),
and bounds memory with FIFO eviction rather than growing per-decorated
function.  numpy's pocketfft already memoizes FFT twiddle factors by
transform length internally; what this layer adds for the FFT-adjacent
paths is the surrounding geometry (index maps, scatter matrices) and one
place to flush everything between experiments.

Cached arrays are shared across calls, so the cache itself marks every
ndarray in a freshly built plan read-only (``setflags(write=False)``) at
insertion time — a builder cannot forget, and an in-place write anywhere
downstream raises immediately instead of silently corrupting every later
forward that shares the plan.  Writes that sneak past the flag (a
``setflags(write=True)`` re-arm, a mutation through a writeable base) are
caught by the ownership sanitizer's fingerprint check
(:mod:`repro.analysis.alias`), which verifies every cached array on each
access and again when the guard exits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterator, Optional

import numpy as np


def iter_plan_arrays(value) -> Iterator[np.ndarray]:
    """Yield every ndarray reachable inside a cached plan value.

    Plans are arrays or (nested) tuples/lists/dicts of arrays — the same
    shapes builders actually return; anything else is left untouched.
    """
    if isinstance(value, np.ndarray):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from iter_plan_arrays(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_plan_arrays(item)


def _freeze_plan(value) -> None:
    """Mark every ndarray in ``value`` read-only (always allowed by numpy)."""
    for array in iter_plan_arrays(value):
        array.setflags(write=False)


class PlanCache:
    """Bounded memo from geometry keys to prebuilt plan objects."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: ownership sanitizer (repro.analysis.alias); None = zero-overhead
        self._alias_hook = None

    def set_alias_hook(self, hook):
        """Install (or clear, with None) the ownership sanitizer hook.

        Returns the previous hook so nested guards can restore it.
        """
        previous = self._alias_hook
        self._alias_hook = hook
        return previous

    def get(self, key: Hashable, builder: Callable[[], object]):
        """Return the cached plan for ``key``, building it on first use.

        ``key`` must capture every input the builder reads (lengths,
        windows, flags, dtype): a changed shape therefore misses and
        rebuilds instead of serving a stale plan.  Every ndarray in the
        built plan is frozen read-only before it is shared.
        """
        try:
            value = self._entries[key]
        except KeyError:
            pass
        else:
            self.hits += 1
            if self._alias_hook is not None:
                self._alias_hook.on_plan_access(key, value)
            return value
        self.misses += 1
        value = builder()
        _freeze_plan(value)
        if len(self._entries) >= self.maxsize:
            evicted_key, evicted = self._entries.popitem(last=False)  # FIFO
            if self._alias_hook is not None:
                self._alias_hook.on_plan_evict(evicted_key, evicted)
        self._entries[key] = value
        if self._alias_hook is not None:
            self._alias_hook.on_plan_insert(key, value)
        return value

    def invalidate(self, prefix: Optional[str] = None) -> int:
        """Drop all plans (or those whose key tuple starts with ``prefix``).

        Returns the number of entries removed.
        """
        if prefix is None:
            doomed = list(self._entries)
        else:
            doomed = [
                key for key in self._entries
                if isinstance(key, tuple) and key and key[0] == prefix
            ]
        for key in doomed:
            value = self._entries.pop(key)
            if self._alias_hook is not None:
                self._alias_hook.on_plan_evict(key, value)
        return len(doomed)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._entries)


#: process-wide plan cache used by nn/ and core/ geometry builders
_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan/table cache."""
    return _PLAN_CACHE
