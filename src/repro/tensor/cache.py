"""Plan/table cache: memoized shape-derived constants for the model zoo.

Attention masks, neighbour-gather index maps, cumulative-average mixing
matrices, and positional-encoding table slices depend only on *geometry*
(sequence length, window, dtype) — yet the seed code rebuilt them on
every forward.  This cache keys each plan by its full geometry tuple so a
shape change can never reuse a stale plan (the new key simply misses and
the builder runs again), and keeps hit/miss counters so the perf suite
can assert reuse actually happens.

Unlike ``functools.lru_cache`` this layer is introspectable
(:meth:`PlanCache.stats`), explicitly invalidatable (:meth:`invalidate`),
and bounds memory with FIFO eviction rather than growing per-decorated
function.  numpy's pocketfft already memoizes FFT twiddle factors by
transform length internally; what this layer adds for the FFT-adjacent
paths is the surrounding geometry (index maps, scatter matrices) and one
place to flush everything between experiments.

Cached arrays are shared across calls — builders mark them read-only
(``setflags(write=False)``) where aliasing bugs would be silent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional


class PlanCache:
    """Bounded memo from geometry keys to prebuilt plan objects."""

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], object]):
        """Return the cached plan for ``key``, building it on first use.

        ``key`` must capture every input the builder reads (lengths,
        windows, flags, dtype): a changed shape therefore misses and
        rebuilds instead of serving a stale plan.
        """
        try:
            value = self._entries[key]
        except KeyError:
            pass
        else:
            self.hits += 1
            return value
        self.misses += 1
        value = builder()
        if len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)  # FIFO: oldest plan goes first
        self._entries[key] = value
        return value

    def invalidate(self, prefix: Optional[str] = None) -> int:
        """Drop all plans (or those whose key tuple starts with ``prefix``).

        Returns the number of entries removed.
        """
        if prefix is None:
            count = len(self._entries)
            self._entries.clear()
            return count
        doomed = [
            key for key in self._entries
            if isinstance(key, tuple) and key and key[0] == prefix
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        return len(self._entries)


#: process-wide plan cache used by nn/ and core/ geometry builders
_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan/table cache."""
    return _PLAN_CACHE
