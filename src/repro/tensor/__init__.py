"""Reverse-mode autodiff engine on numpy.

This package is the substrate that replaces PyTorch for the Conformer
reproduction: a :class:`Tensor` wrapping a numpy array, a tape-based
``backward()``, and a functional namespace with the operations the model
zoo needs (matmul, softmax, convolution, FFT-based correlation, ...).

Inference runs through a dedicated fast path (see docs/performance.md):
:func:`inference_mode` disables tape bookkeeping entirely (stronger than
:func:`no_grad` — the fused kernels also stop saving activations and
recycle scratch via :mod:`repro.tensor.arena`), and
:func:`compute_dtype` switches the engine to float32 end-to-end.
"""

from repro.tensor.tensor import (
    Tensor,
    compute_dtype,
    get_default_dtype,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    no_grad,
    set_op_hook,
    set_profile_hooks,
    tape_node_count,
)
from repro.tensor import functional
from repro.tensor.arena import BufferArena, get_arena
from repro.tensor.cache import PlanCache, plan_cache
from repro.tensor.functional import fused_ops, fused_ops_enabled
from repro.tensor.gradcheck import gradcheck
from repro.tensor.profiler import EngineProfiler

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_inference_mode",
    "is_grad_enabled",
    "compute_dtype",
    "get_default_dtype",
    "tape_node_count",
    "functional",
    "fused_ops",
    "fused_ops_enabled",
    "gradcheck",
    "set_op_hook",
    "set_profile_hooks",
    "EngineProfiler",
    "BufferArena",
    "get_arena",
    "PlanCache",
    "plan_cache",
]
