"""Reverse-mode autodiff engine on numpy.

This package is the substrate that replaces PyTorch for the Conformer
reproduction: a :class:`Tensor` wrapping a numpy array, a tape-based
``backward()``, and a functional namespace with the operations the model
zoo needs (matmul, softmax, convolution, FFT-based correlation, ...).
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, set_profile_hooks
from repro.tensor import functional
from repro.tensor.functional import fused_ops, fused_ops_enabled
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "fused_ops",
    "fused_ops_enabled",
    "gradcheck",
    "set_profile_hooks",
]
