"""Reverse-mode autodiff engine on numpy.

This package is the substrate that replaces PyTorch for the Conformer
reproduction: a :class:`Tensor` wrapping a numpy array, a tape-based
``backward()``, and a functional namespace with the operations the model
zoo needs (matmul, softmax, convolution, FFT-based correlation, ...).
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
