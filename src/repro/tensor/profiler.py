"""Engine-level op profiler: wall time, call counts, and bytes per op.

The :class:`EngineProfiler` is the low-level recorder behind
``repro.perf.op_profile()``.  Its :meth:`on_op` method is installed as the
engine op hook (:func:`repro.tensor.tensor.set_op_hook`) and fires on
every :meth:`Tensor._make` call — taped *or* tape-free, so inference-mode
forwards are fully attributable.  It is strictly zero-overhead when not
installed: the hook slot is ``None`` and ``Tensor._make`` skips it with a
single identity check (the same pattern as the sanitizer).

Attribution model
-----------------
The numpy engine is serial: an op's numpy work happens immediately before
its ``Tensor._make`` call.  ``on_op`` therefore attributes the wall-clock
interval since the *previous* op event (or the last explicit
:meth:`mark`) to the op just completed.  Pure-Python glue between ops is
charged to the following op — an approximation, but one that sums to the
true wall time of the profiled region and ranks ops correctly on any
numpy-dominated workload.

Module attribution reuses ``Module.named_modules`` naming: the high-level
profiler pushes dotted module paths via :meth:`module_scope` while each
submodule's ``forward`` runs, and every op event is labelled with the
innermost open module.

Memory accounting
-----------------
- ``op_bytes`` / per-event ``nbytes`` — bytes allocated for each op
  output (``out.nbytes``).
- ``taped_nodes`` / ``taped_bytes`` — nodes and output bytes pinned by
  the autodiff tape; the inference fast path must show zero of both.
- ``live_bytes`` / ``peak_bytes`` — bytes of profiled op outputs still
  reachable, tracked with ``weakref.finalize`` on the output arrays.
  Leaf tensors constructed directly from user data are not routed
  through ``_make`` and are therefore out of scope by design.

This file reads the wall clock once per profiler (``time.time``) to
anchor the monotonic ``perf_counter`` timeline to calendar time for
Chrome-trace export; the ``no-wallclock`` lint rule allowlists exactly
this file (see pyproject.toml).
"""

from __future__ import annotations

import contextlib
import weakref
from collections import deque
from time import perf_counter, time
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

#: module label attached to ops recorded outside any ``module_scope``
ROOT_MODULE = "(root)"


class EngineProfiler:
    """Streaming per-(module, op) wall-time / call / byte aggregates.

    Parameters
    ----------
    timeline_capacity:
        Bound on retained raw op events for timeline export (aggregates
        are unaffected; the ring forgets the oldest events and counts
        them in ``dropped_events``).
    track_live:
        Register a ``weakref.finalize`` per op output to maintain
        ``live_bytes``/``peak_bytes``.  Costs one weakref per op while
        profiling; disable for pure-latency runs.
    """

    def __init__(self, timeline_capacity: int = 8192, track_live: bool = True) -> None:
        # fundamental store: (module, op) -> [calls, seconds, nbytes]
        self._cells: Dict[Tuple[str, str], List] = {}
        self.taped_nodes = 0
        self.taped_bytes = 0
        self.live_bytes = 0
        self.peak_bytes = 0
        self.dropped_events = 0
        self.track_live = track_live
        self.events: deque = deque(maxlen=timeline_capacity)
        self._module_stack: List[str] = []
        self._mark: Optional[float] = None
        #: wall-clock seconds at ``perf_counter() == 0`` — anchors the
        #: monotonic timeline to calendar time for trace export
        self.wall_anchor = time() - perf_counter()

    # ------------------------------------------------------------------
    # hook targets
    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Reset the attribution clock at a scope boundary.

        Call when entering a profiled region so setup time before the
        first op is not charged to it.
        """
        self._mark = perf_counter()

    def on_op(self, op: str, data: np.ndarray, taped: bool) -> None:
        """Engine op-hook target: record one op output."""
        now = perf_counter()
        start = self._mark if self._mark is not None else now
        self._mark = now
        seconds = now - start if now > start else 0.0
        nbytes = int(data.nbytes)
        module = self._module_stack[-1] if self._module_stack else ROOT_MODULE

        cell = self._cells.get((module, op))
        if cell is None:
            self._cells[(module, op)] = [1, seconds, nbytes]
        else:
            cell[0] += 1
            cell[1] += seconds
            cell[2] += nbytes

        if taped:
            self.taped_nodes += 1
            self.taped_bytes += nbytes
        if self.track_live:
            self.live_bytes += nbytes
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes
            weakref.finalize(data, self._on_free, nbytes)
        if len(self.events) == self.events.maxlen:
            self.dropped_events += 1
        self.events.append((op, module, start, now, nbytes, taped))

    def _on_free(self, nbytes: int) -> None:
        self.live_bytes -= nbytes

    # ------------------------------------------------------------------
    # module attribution
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def module_scope(self, name: str) -> Iterator[None]:
        """Label ops recorded inside the block with module ``name``."""
        self._module_stack.append(name)
        try:
            yield
        finally:
            self._module_stack.pop()

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total_calls(self) -> int:
        return sum(cell[0] for cell in self._cells.values())

    @property
    def total_seconds(self) -> float:
        return sum(cell[1] for cell in self._cells.values())

    @property
    def total_bytes(self) -> int:
        return sum(cell[2] for cell in self._cells.values())

    def rows(self) -> List[dict]:
        """Per-(module, op) aggregate rows, heaviest first."""
        out = [
            {
                "module": module,
                "op": op,
                "calls": cell[0],
                "seconds": cell[1],
                "nbytes": cell[2],
            }
            for (module, op), cell in self._cells.items()
        ]
        out.sort(key=lambda r: (-r["seconds"], -r["nbytes"], r["op"]))
        return out

    def per_op(self) -> Dict[str, dict]:
        """Aggregates folded over modules, keyed by op name."""
        folded: Dict[str, dict] = {}
        for (module, op), cell in self._cells.items():
            agg = folded.setdefault(op, {"calls": 0, "seconds": 0.0, "nbytes": 0})
            agg["calls"] += cell[0]
            agg["seconds"] += cell[1]
            agg["nbytes"] += cell[2]
        return folded

    def per_module(self) -> Dict[str, dict]:
        """Aggregates folded over ops, keyed by dotted module path."""
        folded: Dict[str, dict] = {}
        for (module, op), cell in self._cells.items():
            agg = folded.setdefault(module, {"calls": 0, "seconds": 0.0, "nbytes": 0})
            agg["calls"] += cell[0]
            agg["seconds"] += cell[1]
            agg["nbytes"] += cell[2]
        return folded

    def timeline(self) -> List[dict]:
        """Retained raw op events (oldest first) for trace export."""
        return [
            {
                "op": op,
                "module": module,
                "start": start,
                "end": end,
                "nbytes": nbytes,
                "taped": taped,
            }
            for op, module, start, end, nbytes, taped in self.events
        ]

    def memory_stats(self) -> Dict[str, int]:
        """Byte-level accounting snapshot (all integers, gauge-ready)."""
        return {
            "allocated_bytes": self.total_bytes,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "taped_nodes": self.taped_nodes,
            "taped_bytes": self.taped_bytes,
        }
