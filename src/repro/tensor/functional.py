"""Functional operations on :class:`~repro.tensor.Tensor`.

Everything the model zoo needs that is not a dunder on ``Tensor`` lives
here: reductions, activations, softmax, concatenation, padding, 1-D
convolution/pooling, and losses.  Each op wires its own backward closure.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special as sp_special

from repro.tensor.tensor import Tensor, ensure_tensor

Axis = Union[None, int, Tuple[int, ...]]


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def _restore_reduced(grad: np.ndarray, shape: Tuple[int, ...], axis: Axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(shape) for a in axes)
        for a in sorted(axes):
            grad = np.expand_dims(grad, a)
    return np.broadcast_to(grad, shape)


def sum(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    out_data = x.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(_restore_reduced(grad, x.data.shape, axis, keepdims))

    return Tensor._make(np.asarray(out_data), (x,), "sum", backward)


def mean(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out_data = x.data.mean(axis=axis, keepdims=keepdims)
    count = x.data.size / np.asarray(out_data).size

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(_restore_reduced(grad, x.data.shape, axis, keepdims) / count)

    return Tensor._make(np.asarray(out_data), (x,), "mean", backward)


def var(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased (population) variance, differentiable."""
    mu = mean(x, axis=axis, keepdims=True)
    centered = x - mu
    return mean(centered * centered, axis=axis, keepdims=keepdims)


def _extreme(x: Tensor, axis: Axis, keepdims: bool, fn, name: str) -> Tensor:
    out_data = fn(x.data, axis=axis, keepdims=keepdims)
    expanded = fn(x.data, axis=axis, keepdims=True)
    mask = (x.data == expanded).astype(x.data.dtype)
    mask = mask / mask.sum(axis=axis, keepdims=True)  # split ties evenly

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = _restore_reduced(grad, x.data.shape, axis, keepdims)
            x._accumulate(g * mask)

    return Tensor._make(np.asarray(out_data), (x,), name, backward)


def max(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extreme(x, axis, keepdims, np.max, "max")


def min(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extreme(x, axis, keepdims, np.min, "min")


# ----------------------------------------------------------------------
# elementwise
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), "exp", backward)


def log(x: Tensor) -> Tensor:
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), "log", backward)


def sqrt(x: Tensor) -> Tensor:
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (x,), "sqrt", backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001
    out_data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.sign(x.data))

    return Tensor._make(out_data, (x,), "abs", backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    out_data = np.clip(x.data, low, high)
    mask = ((x.data >= low) & (x.data <= high)).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), "clip", backward)


def tanh(x: Tensor) -> Tensor:
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), "tanh", backward)


def sigmoid(x: Tensor) -> Tensor:
    out_data = sp_special.expit(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), "sigmoid", backward)


def relu(x: Tensor) -> Tensor:
    out_data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), "relu", backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    slope = np.where(x.data > 0, 1.0, negative_slope)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * slope)

    return Tensor._make(x.data * slope, (x,), "leaky_relu", backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, neg)
    deriv = np.where(x.data > 0, 1.0, neg + alpha)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "elu", backward)


def softplus(x: Tensor) -> Tensor:
    out_data = np.logaddexp(0.0, x.data)
    sig = sp_special.expit(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), "softplus", backward)


def erf(x: Tensor) -> Tensor:
    out_data = sp_special.erf(x.data)
    deriv = 2.0 / math.sqrt(math.pi) * np.exp(-x.data ** 2)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "erf", backward)


def gelu(x: Tensor) -> Tensor:
    """Exact GELU: x * Phi(x) with Phi the standard normal CDF."""
    phi = 0.5 * (1.0 + sp_special.erf(x.data / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * x.data ** 2) / math.sqrt(2.0 * math.pi)
    out_data = x.data * phi
    deriv = phi + x.data * pdf

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "gelu", backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = (a.data >= b.data).astype(out_data.dtype)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * a_wins)
        if b.requires_grad:
            b._accumulate(grad * (1.0 - a_wins))

    return Tensor._make(out_data, (a, b), "maximum", backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(cond, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(cond, 0.0, grad))

    return Tensor._make(out_data, (a, b), "where", backward)


# ----------------------------------------------------------------------
# softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), "softmax", backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), "log_softmax", backward)


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), "concat", backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), "stack", backward)


def _pad_axis(x: Tensor, axis: int, before: int, after: int, mode: str) -> Tensor:
    """Pad a single axis; backward folds padded gradients onto sources."""
    width = [(0, 0)] * x.ndim
    width[axis] = (before, after)
    out_data = np.pad(x.data, width, mode=mode)
    length = x.shape[axis]

    def _sel(start, stop):
        index = [slice(None)] * x.ndim
        index[axis] = slice(start, stop)
        return tuple(index)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        core = grad[_sel(before, before + length)].copy()
        if mode == "constant" or (before == 0 and after == 0):
            x._accumulate(core)
            return
        if mode == "edge":
            if before:
                core[_sel(0, 1)] += grad[_sel(0, before)].sum(axis=axis, keepdims=True)
            if after:
                core[_sel(length - 1, length)] += grad[_sel(before + length, before + length + after)].sum(
                    axis=axis, keepdims=True
                )
        elif mode == "wrap":
            if before:
                core[_sel(length - before, length)] += grad[_sel(0, before)]
            if after:
                core[_sel(0, after)] += grad[_sel(before + length, before + length + after)]
        else:
            raise NotImplementedError(f"pad backward not implemented for mode={mode!r}")
        x._accumulate(core)

    return Tensor._make(out_data, (x,), f"pad[{mode}]", backward)


def pad(x: Tensor, pad_width: Sequence[Tuple[int, int]], mode: str = "constant") -> Tensor:
    """Differentiable numpy-style pad. Supports constant/edge/wrap modes."""
    out = x
    for axis, (before, after) in enumerate(pad_width):
        if before or after:
            out = _pad_axis(out, axis, before, after, mode)
    return out


def split(x: Tensor, sections: int, axis: int = 0) -> list:
    """Split into equal sections along ``axis`` (np.split semantics)."""
    size = x.shape[axis]
    if size % sections:
        raise ValueError(f"cannot split axis of size {size} into {sections} equal parts")
    step = size // sections
    pieces = []
    for i in range(sections):
        index = [slice(None)] * x.ndim
        index[axis] = slice(i * step, (i + 1) * step)
        pieces.append(x[tuple(index)])
    return pieces


# ----------------------------------------------------------------------
# convolution & pooling (1-D, batch-first: (B, L, C) layout)
# ----------------------------------------------------------------------
def _sliding_windows(data: np.ndarray, kernel: int) -> np.ndarray:
    """Return a (B, L_out, kernel, C) view of (B, L, C) data."""
    return np.lib.stride_tricks.sliding_window_view(data, kernel, axis=1).transpose(0, 1, 3, 2)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    padding: int = 0,
    padding_mode: str = "constant",
) -> Tensor:
    """1-D convolution over (B, L, C_in) with weight (K, C_in, C_out)."""
    kernel = weight.shape[0]
    if padding:
        x_padded = pad(x, ((0, 0), (padding, padding), (0, 0)), mode=padding_mode)
    else:
        x_padded = x
    windows = _sliding_windows(x_padded.data, kernel)  # (B, L_out, K, C_in)
    out_data = np.einsum("blkc,kco->blo", windows, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data

    b_out, l_out = out_data.shape[0], out_data.shape[1]
    l_in = x_padded.shape[1]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(np.einsum("blkc,blo->kco", windows, grad, optimize=True))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if x_padded.requires_grad:
            grad_x = np.zeros((b_out, l_in, x_padded.shape[2]), dtype=grad.dtype)
            contrib = np.einsum("blo,kco->blkc", grad, weight.data, optimize=True)
            for k in range(kernel):
                grad_x[:, k : k + l_out, :] += contrib[:, :, k, :]
            x_padded._accumulate(grad_x)

    return Tensor._make(out_data, (x_padded, weight) + ((bias,) if bias is not None else ()), "conv1d", backward)


def avg_pool1d(x: Tensor, kernel: int, stride: int = 1, pad_edges: bool = True) -> Tensor:
    """Moving-average pooling over the time axis of (B, L, C).

    With ``pad_edges`` the series is edge-padded so the output keeps length
    L — exactly the moving-average trend extractor of Autoformer/Conformer
    (Eq. 9 in the paper).
    """
    if pad_edges:
        left = (kernel - 1) // 2
        right = kernel - 1 - left
        x = pad(x, ((0, 0), (left, right), (0, 0)), mode="edge")
    windows = _sliding_windows(x.data, kernel)  # (B, L_out, K, C)
    windows = windows[:, ::stride]
    out_data = windows.mean(axis=2)
    l_in = x.shape[1]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_x = np.zeros((grad.shape[0], l_in, grad.shape[2]), dtype=grad.dtype)
            scaled = grad / kernel
            for j in range(grad.shape[1]):
                start = j * stride
                grad_x[:, start : start + kernel, :] += scaled[:, j : j + 1, :]
            x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), "avg_pool1d", backward)


def max_pool1d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Max pooling over the time axis of (B, L, C)."""
    windows = _sliding_windows(x.data, kernel)[:, ::stride]  # (B, L_out, K, C)
    out_data = windows.max(axis=2)
    argmax = windows.argmax(axis=2)  # (B, L_out, C)
    l_in = x.shape[1]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_x = np.zeros((grad.shape[0], l_in, grad.shape[2]), dtype=grad.dtype)
            b_idx, j_idx, c_idx = np.indices(argmax.shape)
            np.add.at(grad_x, (b_idx, j_idx * stride + argmax, c_idx), grad)
            x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), "max_pool1d", backward)


# ----------------------------------------------------------------------
# losses
# ----------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    target = ensure_tensor(target)
    diff = prediction - target.detach()
    return mean(diff * diff)


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    target = ensure_tensor(target)
    return mean(abs(prediction - target.detach()))


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    target = ensure_tensor(target)
    diff = prediction - target.detach()
    absdiff = abs(diff)
    quadratic = 0.5 * diff * diff
    linear = delta * absdiff - 0.5 * delta * delta
    return mean(where(absdiff.data <= delta, quadratic, linear))


# ----------------------------------------------------------------------
# dropout
# ----------------------------------------------------------------------
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), "dropout", backward)
