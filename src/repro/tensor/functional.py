"""Functional operations on :class:`~repro.tensor.Tensor`.

Everything the model zoo needs that is not a dunder on ``Tensor`` lives
here: reductions, activations, softmax, concatenation, padding, 1-D
convolution/pooling, and losses.  Each op wires its own backward closure.
"""

from __future__ import annotations

import contextlib
import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special as sp_special

from repro.tensor import tensor as _engine
from repro.tensor.arena import get_arena
from repro.tensor.tensor import Tensor, ensure_tensor

Axis = Union[None, int, Tuple[int, ...]]

# ----------------------------------------------------------------------
# fused-kernel switch
# ----------------------------------------------------------------------
# The recurrent/attention hot paths dispatch on this flag: True routes
# through the fused ops below (one tape node for whole subgraphs), False
# falls back to the original op-by-op composition.  The fallback is kept
# both as a numerical reference and as the baseline the perf benchmark
# (`python -m repro.perf`) measures speedups against.
_FUSED_ENABLED = True


def fused_ops_enabled() -> bool:
    """Whether the model zoo routes hot paths through the fused kernels."""
    return _FUSED_ENABLED


@contextlib.contextmanager
def fused_ops(enabled: bool = True):
    """Context manager toggling the fused-kernel dispatch (for benchmarks/tests)."""
    global _FUSED_ENABLED
    previous, _FUSED_ENABLED = _FUSED_ENABLED, bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def _restore_reduced(grad: np.ndarray, shape: Tuple[int, ...], axis: Axis, keepdims: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(shape) for a in axes)
        for a in sorted(axes):
            grad = np.expand_dims(grad, a)
    return np.broadcast_to(grad, shape)


def sum(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    out_data = x.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(_restore_reduced(grad, x.data.shape, axis, keepdims))

    return Tensor._make(np.asarray(out_data), (x,), "sum", backward)


def mean(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    out_data = x.data.mean(axis=axis, keepdims=keepdims)
    count = x.data.size / np.asarray(out_data).size

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(_restore_reduced(grad, x.data.shape, axis, keepdims) / count)

    return Tensor._make(np.asarray(out_data), (x,), "mean", backward)


def var(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:
    """Biased (population) variance, differentiable."""
    mu = mean(x, axis=axis, keepdims=True)
    centered = x - mu
    return mean(centered * centered, axis=axis, keepdims=keepdims)


def _extreme(x: Tensor, axis: Axis, keepdims: bool, fn, name: str) -> Tensor:
    out_data = fn(x.data, axis=axis, keepdims=keepdims)
    expanded = fn(x.data, axis=axis, keepdims=True)
    mask = (x.data == expanded).astype(x.data.dtype)
    mask = mask / mask.sum(axis=axis, keepdims=True)  # split ties evenly

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            g = _restore_reduced(grad, x.data.shape, axis, keepdims)
            x._accumulate(g * mask)

    return Tensor._make(np.asarray(out_data), (x,), name, backward)


def max(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extreme(x, axis, keepdims, np.max, "max")


def min(x: Tensor, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return _extreme(x, axis, keepdims, np.min, "min")


# ----------------------------------------------------------------------
# elementwise
# ----------------------------------------------------------------------
def exp(x: Tensor) -> Tensor:
    out_data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data)

    return Tensor._make(out_data, (x,), "exp", backward)


def log(x: Tensor) -> Tensor:
    out_data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad / x.data)

    return Tensor._make(out_data, (x,), "log", backward)


def sqrt(x: Tensor) -> Tensor:
    out_data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (x,), "sqrt", backward)


def abs(x: Tensor) -> Tensor:  # noqa: A001
    out_data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.sign(x.data))

    return Tensor._make(out_data, (x,), "abs", backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    out_data = np.clip(x.data, low, high)
    mask = ((x.data >= low) & (x.data <= high)).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), "clip", backward)


def tanh(x: Tensor) -> Tensor:
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), "tanh", backward)


def sigmoid(x: Tensor) -> Tensor:
    out_data = sp_special.expit(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), "sigmoid", backward)


def relu(x: Tensor) -> Tensor:
    out_data = np.maximum(x.data, 0.0)
    mask = (x.data > 0).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), "relu", backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    slope = np.where(x.data > 0, 1.0, negative_slope)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * slope)

    return Tensor._make(x.data * slope, (x,), "leaky_relu", backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out_data = np.where(x.data > 0, x.data, neg)
    deriv = np.where(x.data > 0, 1.0, neg + alpha)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "elu", backward)


def softplus(x: Tensor) -> Tensor:
    out_data = np.logaddexp(0.0, x.data)
    sig = sp_special.expit(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * sig)

    return Tensor._make(out_data, (x,), "softplus", backward)


def erf(x: Tensor) -> Tensor:
    out_data = sp_special.erf(x.data)
    deriv = 2.0 / math.sqrt(math.pi) * np.exp(-x.data ** 2)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "erf", backward)


def gelu(x: Tensor) -> Tensor:
    """Exact GELU: x * Phi(x) with Phi the standard normal CDF."""
    phi = 0.5 * (1.0 + sp_special.erf(x.data / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * x.data ** 2) / math.sqrt(2.0 * math.pi)
    out_data = x.data * phi
    deriv = phi + x.data * pdf

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * deriv)

    return Tensor._make(out_data, (x,), "gelu", backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = (a.data >= b.data).astype(out_data.dtype)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * a_wins)
        if b.requires_grad:
            b._accumulate(grad * (1.0 - a_wins))

    return Tensor._make(out_data, (a, b), "maximum", backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(cond, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(cond, 0.0, grad))

    return Tensor._make(out_data, (a, b), "where", backward)


# ----------------------------------------------------------------------
# softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), "softmax", backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), "log_softmax", backward)


def softmax_masked(x: Tensor, mask: Optional[np.ndarray] = None, axis: int = -1) -> Tensor:
    """Fused mask + softmax: one tape node, no full ``-1e9`` constant tensor.

    ``mask`` is a boolean array broadcastable to ``x`` where True marks
    *disallowed* positions; those entries receive exactly zero weight and
    zero gradient.  Rows where everything is masked yield a uniform
    distribution with zero gradient, matching the behaviour of masking
    scores with a large negative constant and then calling :func:`softmax`
    (the previous, three-node composition).
    """
    if mask is None:
        return softmax(x, axis=axis)
    mask = np.asarray(mask, dtype=bool)
    # -inf at masked entries keeps the max-shift stable and makes exp() give
    # exact zeros without overflow; the temp is short-lived and never taped.
    neg = np.where(mask, -np.inf, x.data)
    shift = neg.max(axis=axis, keepdims=True)
    shift = np.where(np.isfinite(shift), shift, 0.0)  # all-masked rows
    exps = np.exp(neg - shift)
    denom = exps.sum(axis=axis, keepdims=True)
    dead = denom == 0.0
    soft = exps / np.where(dead, 1.0, denom)
    out_data = np.where(dead, 1.0 / x.data.shape[axis], soft) if np.any(dead) else soft

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * soft).sum(axis=axis, keepdims=True)
            x._accumulate(soft * (grad - inner))

    return Tensor._make(out_data, (x,), "softmax_masked", backward)


# ----------------------------------------------------------------------
# einsum
# ----------------------------------------------------------------------
def _einsum_parse(subscripts: str, n_operands: int) -> Tuple[list, str]:
    if "..." in subscripts:
        raise NotImplementedError("einsum: ellipsis subscripts are not supported")
    if "->" in subscripts:
        inputs, output = subscripts.split("->")
    else:
        inputs = subscripts
        counts: dict = {}
        for ch in inputs.replace(",", ""):
            counts[ch] = counts.get(ch, 0) + 1
        output = "".join(sorted(ch for ch, n in counts.items() if n == 1))
    specs = inputs.split(",")
    if len(specs) != n_operands:
        raise ValueError(f"einsum: {len(specs)} subscript groups for {n_operands} operands")
    for spec in specs:
        if len(set(spec)) != len(spec):
            raise NotImplementedError("einsum: repeated labels within one operand (traces) are not supported")
    return specs, output


def einsum(subscripts: str, *operands: Tensor, optimize=True) -> Tensor:
    """Differentiable ``np.einsum`` (contracted matmuls as one tape node).

    Supports any number of operands with explicit or implicit output
    subscripts; ellipsis and per-operand repeated labels are not.  The
    gradient of each operand is itself an einsum of the output gradient
    with the remaining operands, with labels missing from those terms
    restored by broadcasting against ones.
    """
    tensors = [ensure_tensor(t) for t in operands]
    specs, out_spec = _einsum_parse(subscripts, len(tensors))
    out_data = np.einsum(f"{','.join(specs)}->{out_spec}", *[t.data for t in tensors], optimize=optimize)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if not t.requires_grad:
                continue
            terms_specs = [out_spec] + [specs[j] for j in range(len(tensors)) if j != i]
            terms_data = [grad] + [tensors[j].data for j in range(len(tensors)) if j != i]
            available = set("".join(terms_specs))
            for pos, label in enumerate(specs[i]):
                if label not in available:  # summed over this operand alone
                    terms_specs.append(label)
                    terms_data.append(np.ones(t.data.shape[pos], dtype=grad.dtype))
            sub = ",".join(terms_specs) + "->" + specs[i]
            t._accumulate(np.einsum(sub, *terms_data, optimize=optimize))

    return Tensor._make(np.asarray(out_data), tuple(tensors), "einsum", backward)


# ----------------------------------------------------------------------
# fused recurrent kernels
# ----------------------------------------------------------------------
# One tape node per GRU/LSTM timestep (``*_step``) or per whole scan
# (``*_sequence``) with hand-written backwards, replacing the ~12-node
# per-timestep chains previously recorded by GRUCell/LSTMCell.  Gate
# layout follows the cells: [reset | update | candidate] for GRU and
# [input | forget | cell | output] for LSTM.
def gru_step(x_gates: Tensor, h: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """One fused GRU timestep.

    ``x_gates`` is the precomputed input projection ``x_t @ W_ih + b_ih``
    of shape (B, 3H); ``h`` is the previous hidden state (B, H).  Returns
    the next hidden state (B, H) as a single tape node.
    """
    hidden = h.shape[-1]
    gh = h.data @ weight_hh.data + bias_hh.data
    gx = x_gates.data
    r = sp_special.expit(gx[:, :hidden] + gh[:, :hidden])
    z = sp_special.expit(gx[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
    nh = gh[:, 2 * hidden :]
    n = np.tanh(gx[:, 2 * hidden :] + r * nh)
    out_data = (1.0 - z) * n + z * h.data

    def backward(grad: np.ndarray) -> None:
        dn = grad * (1.0 - z)
        dz = grad * (h.data - n)
        dpre_n = dn * (1.0 - n * n)
        dnh = dpre_n * r
        dpre_r = dpre_n * nh * r * (1.0 - r)
        dpre_z = dz * z * (1.0 - z)
        dgh = np.concatenate([dpre_r, dpre_z, dnh], axis=-1)
        if x_gates.requires_grad:
            x_gates._accumulate(np.concatenate([dpre_r, dpre_z, dpre_n], axis=-1))
        if h.requires_grad:
            h._accumulate(grad * z + dgh @ weight_hh.data.T)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h.data.T @ dgh)
        if bias_hh.requires_grad:
            bias_hh._accumulate(dgh.sum(axis=0))

    return Tensor._make(out_data, (x_gates, h, weight_hh, bias_hh), "gru_step", backward)


def lstm_step(x_gates: Tensor, h: Tensor, c: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """One fused LSTM timestep.

    ``x_gates`` is ``x_t @ W_ih + b_ih`` of shape (B, 4H); ``h``/``c`` are
    the previous states (B, H).  Returns (B, 2H) with the new hidden state
    in ``[..., :H]`` and the new cell state in ``[..., H:]`` so the whole
    step stays a single tape node.
    """
    hidden = h.shape[-1]
    gates = x_gates.data + h.data @ weight_hh.data + bias_hh.data
    i = sp_special.expit(gates[:, :hidden])
    f = sp_special.expit(gates[:, hidden : 2 * hidden])
    g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o = sp_special.expit(gates[:, 3 * hidden :])
    c_new = f * c.data + i * g
    tc = np.tanh(c_new)
    out_data = np.concatenate([o * tc, c_new], axis=-1)

    def backward(grad: np.ndarray) -> None:
        dh = grad[:, :hidden]
        dc_new = dh * o * (1.0 - tc * tc) + grad[:, hidden:]
        do = dh * tc
        dgates = np.concatenate(
            [
                dc_new * g * i * (1.0 - i),
                dc_new * c.data * f * (1.0 - f),
                dc_new * i * (1.0 - g * g),
                do * o * (1.0 - o),
            ],
            axis=-1,
        )
        if x_gates.requires_grad:
            x_gates._accumulate(dgates)
        if h.requires_grad:
            h._accumulate(dgates @ weight_hh.data.T)
        if c.requires_grad:
            c._accumulate(dc_new * f)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h.data.T @ dgates)
        if bias_hh.requires_grad:
            bias_hh._accumulate(dgates.sum(axis=0))

    return Tensor._make(out_data, (x_gates, h, c, weight_hh, bias_hh), "lstm_step", backward)


def _gru_sequence_inference(x_proj: Tensor, h0: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """Tape-free GRU scan for ``inference_mode()``.

    Numerically identical to the fused training scan but saves no gate
    activations (nothing will ever read them) and runs every per-timestep
    kernel ``out=``-style into arena scratch.  Only the (B, L, H) output —
    which escapes — is freshly allocated.
    """
    batch, length, three_h = x_proj.shape
    hidden = three_h // 3
    w_hh = weight_hh.data
    b_hh = bias_hh.data
    xp = x_proj.data
    dt = np.result_type(xp.dtype, w_hh.dtype, b_hh.dtype, h0.data.dtype)
    out = np.empty((batch, length, hidden), dtype=dt)
    arena = get_arena()
    gh = arena.get("gru.gh", (batch, three_h), dt)      # recurrent gate pre-activations
    rz = arena.get("gru.rz", (batch, 2 * hidden), dt)   # reset|update gates
    n_buf = arena.get("gru.n", (batch, hidden), dt)     # candidate state
    h = arena.get("gru.h", (batch, hidden), dt)         # running hidden state
    h[...] = h0.data
    r, z = rz[:, :hidden], rz[:, hidden:]
    for t in range(length):
        np.dot(h, w_hh, out=gh)
        gh += b_hh
        gx = xp[:, t]
        np.add(gx[:, : 2 * hidden], gh[:, : 2 * hidden], out=rz)
        sp_special.expit(rz, out=rz)
        np.multiply(r, gh[:, 2 * hidden :], out=n_buf)
        n_buf += gx[:, 2 * hidden :]
        np.tanh(n_buf, out=n_buf)
        # h_new = n + z * (h - n), rewritten to update h in place
        np.subtract(h, n_buf, out=h)
        h *= z
        h += n_buf
        out[:, t] = h
    # the work buffers die here: releasing the scope lets the alias
    # sanitizer flag any handle that leaked out of the kernel (no-op when
    # no sanitizer is attached)
    arena.release("gru.")
    if _engine._SANITIZER is not None:
        _engine._SANITIZER.check_sequence("gru_sequence", out, time_axis=1)
    return Tensor(out)


def gru_sequence(x_proj: Tensor, h0: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """Scan a whole GRU layer as ONE tape node.

    ``x_proj`` is the input projection for every timestep, (B, L, 3H);
    ``h0`` the initial hidden state (B, H).  Returns all hidden states
    (B, L, H), written into a preallocated buffer.  The backward is a
    hand-written truncated-free BPTT over saved gate activations.
    Inside ``inference_mode()`` a tape-free branch that retains no
    intermediates is taken instead.
    """
    if _engine._INFERENCE_MODE:
        return _gru_sequence_inference(x_proj, h0, weight_hh, bias_hh)
    batch, length, three_h = x_proj.shape
    hidden = three_h // 3
    w_hh = weight_hh.data
    b_hh = bias_hh.data
    xp = x_proj.data
    out = np.empty((batch, length, hidden), dtype=xp.dtype)
    # saved activations for backward: reset/update/candidate gates, the
    # recurrent candidate pre-activation, and every hidden state
    r_all = np.empty((length, batch, hidden), dtype=xp.dtype)
    z_all = np.empty_like(r_all)
    n_all = np.empty_like(r_all)
    nh_all = np.empty_like(r_all)
    h_all = np.empty((length + 1, batch, hidden), dtype=xp.dtype)
    h = h_all[0]
    h[...] = h0.data
    for t in range(length):
        gh = h @ w_hh + b_hh
        gx = xp[:, t]
        r = sp_special.expit(gx[:, :hidden] + gh[:, :hidden])
        z = sp_special.expit(gx[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
        nh = gh[:, 2 * hidden :]
        n = np.tanh(gx[:, 2 * hidden :] + r * nh)
        h = (1.0 - z) * n + z * h
        r_all[t], z_all[t], n_all[t], nh_all[t], h_all[t + 1] = r, z, n, nh, h
        out[:, t] = h
    if _engine._SANITIZER is not None:
        # a NaN born mid-scan is invisible in the single fused tape node;
        # report the first offending timestep before _make files a generic one
        _engine._SANITIZER.check_sequence("gru_sequence", out, time_axis=1)

    def backward(grad: np.ndarray) -> None:
        w_hh_t = w_hh.T
        dgh_all = np.empty((length, batch, 3 * hidden), dtype=grad.dtype)
        dxp = np.empty_like(xp) if x_proj.requires_grad else None
        dh_next = np.zeros((batch, hidden), dtype=grad.dtype)
        for t in range(length - 1, -1, -1):
            dh = grad[:, t] + dh_next
            r, z, n, nh, h_prev = r_all[t], z_all[t], n_all[t], nh_all[t], h_all[t]
            dpre_n = dh * (1.0 - z) * (1.0 - n * n)
            dgh = dgh_all[t]
            dgh[:, :hidden] = dpre_n * nh * r * (1.0 - r)
            dgh[:, hidden : 2 * hidden] = dh * (h_prev - n) * z * (1.0 - z)
            dgh[:, 2 * hidden :] = dpre_n * r
            if dxp is not None:
                dxp_t = dxp[:, t]
                dxp_t[:, : 2 * hidden] = dgh[:, : 2 * hidden]
                dxp_t[:, 2 * hidden :] = dpre_n
            dh_next = dh * z + dgh @ w_hh_t
        if dxp is not None:
            x_proj._accumulate(dxp)
        if h0.requires_grad:
            h0._accumulate(dh_next)
        if weight_hh.requires_grad:
            weight_hh._accumulate(
                np.einsum("tbh,tbk->hk", h_all[:length], dgh_all, optimize=True)
            )
        if bias_hh.requires_grad:
            bias_hh._accumulate(dgh_all.sum(axis=(0, 1)))

    return Tensor._make(out, (x_proj, h0, weight_hh, bias_hh), "gru_sequence", backward)


def _lstm_sequence_inference(x_proj: Tensor, h0: Tensor, c0: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """Tape-free LSTM scan for ``inference_mode()`` (see GRU counterpart)."""
    batch, length, four_h = x_proj.shape
    hidden = four_h // 4
    w_hh = weight_hh.data
    b_hh = bias_hh.data
    xp = x_proj.data
    dt = np.result_type(xp.dtype, w_hh.dtype, b_hh.dtype, h0.data.dtype, c0.data.dtype)
    out = np.empty((batch, length, 2 * hidden), dtype=dt)
    arena = get_arena()
    gates = arena.get("lstm.gates", (batch, four_h), dt)
    tmp = arena.get("lstm.tmp", (batch, hidden), dt)
    h = arena.get("lstm.h", (batch, hidden), dt)
    c = arena.get("lstm.c", (batch, hidden), dt)
    h[...] = h0.data
    c[...] = c0.data
    i, f = gates[:, :hidden], gates[:, hidden : 2 * hidden]
    g, o = gates[:, 2 * hidden : 3 * hidden], gates[:, 3 * hidden :]
    for t in range(length):
        np.dot(h, w_hh, out=gates)
        gates += b_hh
        gates += xp[:, t]
        sp_special.expit(gates[:, : 2 * hidden], out=gates[:, : 2 * hidden])
        np.tanh(g, out=g)
        sp_special.expit(o, out=o)
        # c = f * c + i * g;  h = o * tanh(c)
        c *= f
        np.multiply(i, g, out=tmp)
        c += tmp
        np.tanh(c, out=tmp)
        np.multiply(o, tmp, out=h)
        out[:, t, :hidden] = h
        out[:, t, hidden:] = c
    arena.release("lstm.")
    if _engine._SANITIZER is not None:
        _engine._SANITIZER.check_sequence("lstm_sequence", out, time_axis=1)
    return Tensor(out)


def lstm_sequence(x_proj: Tensor, h0: Tensor, c0: Tensor, weight_hh: Tensor, bias_hh: Tensor) -> Tensor:
    """Scan a whole LSTM layer as ONE tape node.

    ``x_proj`` is (B, L, 4H); returns (B, L, 2H) with hidden states in
    ``[..., :H]`` and cell states in ``[..., H:]`` (both needed so the
    final ``(h, c)`` tuple stays differentiable).  Inside
    ``inference_mode()`` a tape-free branch that retains no intermediates
    is taken instead.
    """
    if _engine._INFERENCE_MODE:
        return _lstm_sequence_inference(x_proj, h0, c0, weight_hh, bias_hh)
    batch, length, four_h = x_proj.shape
    hidden = four_h // 4
    w_hh = weight_hh.data
    b_hh = bias_hh.data
    xp = x_proj.data
    out = np.empty((batch, length, 2 * hidden), dtype=xp.dtype)
    i_all = np.empty((length, batch, hidden), dtype=xp.dtype)
    f_all = np.empty_like(i_all)
    g_all = np.empty_like(i_all)
    o_all = np.empty_like(i_all)
    tc_all = np.empty_like(i_all)
    h_all = np.empty((length + 1, batch, hidden), dtype=xp.dtype)
    c_all = np.empty((length + 1, batch, hidden), dtype=xp.dtype)
    h_all[0] = h0.data
    c_all[0] = c0.data
    h, c = h_all[0], c_all[0]
    for t in range(length):
        gates = xp[:, t] + h @ w_hh + b_hh
        i = sp_special.expit(gates[:, :hidden])
        f = sp_special.expit(gates[:, hidden : 2 * hidden])
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = sp_special.expit(gates[:, 3 * hidden :])
        c = f * c + i * g
        tc = np.tanh(c)
        h = o * tc
        i_all[t], f_all[t], g_all[t], o_all[t], tc_all[t] = i, f, g, o, tc
        h_all[t + 1], c_all[t + 1] = h, c
        out[:, t, :hidden] = h
        out[:, t, hidden:] = c
    if _engine._SANITIZER is not None:
        _engine._SANITIZER.check_sequence("lstm_sequence", out, time_axis=1)

    def backward(grad: np.ndarray) -> None:
        w_hh_t = w_hh.T
        dgates_all = np.empty((length, batch, 4 * hidden), dtype=grad.dtype)
        dh_next = np.zeros((batch, hidden), dtype=grad.dtype)
        dc_next = np.zeros((batch, hidden), dtype=grad.dtype)
        for t in range(length - 1, -1, -1):
            i, f, g, o, tc = i_all[t], f_all[t], g_all[t], o_all[t], tc_all[t]
            dh = grad[:, t, :hidden] + dh_next
            dc_new = dh * o * (1.0 - tc * tc) + grad[:, t, hidden:] + dc_next
            dgates = dgates_all[t]
            dgates[:, :hidden] = dc_new * g * i * (1.0 - i)
            dgates[:, hidden : 2 * hidden] = dc_new * c_all[t] * f * (1.0 - f)
            dgates[:, 2 * hidden : 3 * hidden] = dc_new * i * (1.0 - g * g)
            dgates[:, 3 * hidden :] = dh * tc * o * (1.0 - o)
            dc_next = dc_new * f
            dh_next = dgates @ w_hh_t
        if x_proj.requires_grad:
            x_proj._accumulate(np.ascontiguousarray(dgates_all.transpose(1, 0, 2)))
        if h0.requires_grad:
            h0._accumulate(dh_next)
        if c0.requires_grad:
            c0._accumulate(dc_next)
        if weight_hh.requires_grad:
            weight_hh._accumulate(
                np.einsum("tbh,tbk->hk", h_all[:length], dgates_all, optimize=True)
            )
        if bias_hh.requires_grad:
            bias_hh._accumulate(dgates_all.sum(axis=(0, 1)))

    return Tensor._make(out, (x_proj, h0, c0, weight_hh, bias_hh), "lstm_sequence", backward)


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), "concat", backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.moveaxis(grad, axis, 0)
        for t, piece in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), "stack", backward)


def _pad_axis(x: Tensor, axis: int, before: int, after: int, mode: str) -> Tensor:
    """Pad a single axis; backward folds padded gradients onto sources."""
    width = [(0, 0)] * x.ndim
    width[axis] = (before, after)
    out_data = np.pad(x.data, width, mode=mode)
    length = x.shape[axis]

    def _sel(start, stop):
        index = [slice(None)] * x.ndim
        index[axis] = slice(start, stop)
        return tuple(index)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        core = grad[_sel(before, before + length)].copy()
        if mode == "constant" or (before == 0 and after == 0):
            x._accumulate(core)
            return
        if mode == "edge":
            if before:
                core[_sel(0, 1)] += grad[_sel(0, before)].sum(axis=axis, keepdims=True)
            if after:
                core[_sel(length - 1, length)] += grad[_sel(before + length, before + length + after)].sum(
                    axis=axis, keepdims=True
                )
        elif mode == "wrap":
            if before:
                core[_sel(length - before, length)] += grad[_sel(0, before)]
            if after:
                core[_sel(0, after)] += grad[_sel(before + length, before + length + after)]
        else:
            raise NotImplementedError(f"pad backward not implemented for mode={mode!r}")
        x._accumulate(core)

    return Tensor._make(out_data, (x,), f"pad[{mode}]", backward)


def pad(x: Tensor, pad_width: Sequence[Tuple[int, int]], mode: str = "constant") -> Tensor:
    """Differentiable numpy-style pad. Supports constant/edge/wrap modes."""
    out = x
    for axis, (before, after) in enumerate(pad_width):
        if before or after:
            out = _pad_axis(out, axis, before, after, mode)
    return out


def split(x: Tensor, sections: int, axis: int = 0) -> list:
    """Split into equal sections along ``axis`` (np.split semantics)."""
    size = x.shape[axis]
    if size % sections:
        raise ValueError(f"cannot split axis of size {size} into {sections} equal parts")
    step = size // sections
    pieces = []
    for i in range(sections):
        index = [slice(None)] * x.ndim
        index[axis] = slice(i * step, (i + 1) * step)
        pieces.append(x[tuple(index)])
    return pieces


# ----------------------------------------------------------------------
# convolution & pooling (1-D, batch-first: (B, L, C) layout)
# ----------------------------------------------------------------------
def _sliding_windows(data: np.ndarray, kernel: int) -> np.ndarray:
    """Return a (B, L_out, kernel, C) view of (B, L, C) data."""
    return np.lib.stride_tricks.sliding_window_view(data, kernel, axis=1).transpose(0, 1, 3, 2)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    padding: int = 0,
    padding_mode: str = "constant",
) -> Tensor:
    """1-D convolution over (B, L, C_in) with weight (K, C_in, C_out)."""
    kernel = weight.shape[0]
    if padding:
        x_padded = pad(x, ((0, 0), (padding, padding), (0, 0)), mode=padding_mode)
    else:
        x_padded = x
    windows = _sliding_windows(x_padded.data, kernel)  # (B, L_out, K, C_in)
    out_data = np.einsum("blkc,kco->blo", windows, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data

    b_out, l_out = out_data.shape[0], out_data.shape[1]
    l_in = x_padded.shape[1]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(np.einsum("blkc,blo->kco", windows, grad, optimize=True))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 1)))
        if x_padded.requires_grad:
            grad_x = np.zeros((b_out, l_in, x_padded.shape[2]), dtype=grad.dtype)
            contrib = np.einsum("blo,kco->blkc", grad, weight.data, optimize=True)
            for k in range(kernel):
                grad_x[:, k : k + l_out, :] += contrib[:, :, k, :]
            x_padded._accumulate(grad_x)

    return Tensor._make(out_data, (x_padded, weight) + ((bias,) if bias is not None else ()), "conv1d", backward)


def avg_pool1d(x: Tensor, kernel: int, stride: int = 1, pad_edges: bool = True) -> Tensor:
    """Moving-average pooling over the time axis of (B, L, C).

    With ``pad_edges`` the series is edge-padded so the output keeps length
    L — exactly the moving-average trend extractor of Autoformer/Conformer
    (Eq. 9 in the paper).
    """
    if pad_edges:
        left = (kernel - 1) // 2
        right = kernel - 1 - left
        x = pad(x, ((0, 0), (left, right), (0, 0)), mode="edge")
    windows = _sliding_windows(x.data, kernel)  # (B, L_out, K, C)
    windows = windows[:, ::stride]
    out_data = windows.mean(axis=2)
    l_in = x.shape[1]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_x = np.zeros((grad.shape[0], l_in, grad.shape[2]), dtype=grad.dtype)
            scaled = grad / kernel
            for j in range(grad.shape[1]):
                start = j * stride
                grad_x[:, start : start + kernel, :] += scaled[:, j : j + 1, :]
            x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), "avg_pool1d", backward)


def max_pool1d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """Max pooling over the time axis of (B, L, C)."""
    windows = _sliding_windows(x.data, kernel)[:, ::stride]  # (B, L_out, K, C)
    out_data = windows.max(axis=2)
    argmax = windows.argmax(axis=2)  # (B, L_out, C)
    l_in = x.shape[1]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_x = np.zeros((grad.shape[0], l_in, grad.shape[2]), dtype=grad.dtype)
            b_idx, j_idx, c_idx = np.indices(argmax.shape)
            np.add.at(grad_x, (b_idx, j_idx * stride + argmax, c_idx), grad)
            x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), "max_pool1d", backward)


# ----------------------------------------------------------------------
# losses
# ----------------------------------------------------------------------
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    target = ensure_tensor(target)
    diff = prediction - target.detach()
    return mean(diff * diff)


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    target = ensure_tensor(target)
    return mean(abs(prediction - target.detach()))


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    target = ensure_tensor(target)
    diff = prediction - target.detach()
    absdiff = abs(diff)
    quadratic = 0.5 * diff * diff
    linear = delta * absdiff - 0.5 * delta * delta
    return mean(where(absdiff.data <= delta, quadratic, linear))


# ----------------------------------------------------------------------
# dropout
# ----------------------------------------------------------------------
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), "dropout", backward)
