"""Seeded randomness shared across the library.

Having a single place that constructs :class:`numpy.random.Generator`
objects makes every model, initializer, and dataset generator
deterministic given a seed — which is what lets the benchmark harness
average over "5 runs" reproducibly like the paper does.

The stream is also *restorable*: :func:`get_rng_state` /
:func:`set_rng_state` expose the bit-generator state as a plain nested
dict of ints, so a checkpoint (:mod:`repro.ckpt`) can freeze the global
stream mid-run and a resumed process continues drawing exactly where the
crashed one stopped.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

_DEFAULT_SEED = 0
_global_rng = np.random.default_rng(_DEFAULT_SEED)


def seed_everything(seed: int) -> None:
    """Reset the library-wide default generator."""
    global _global_rng
    _global_rng = np.random.default_rng(seed)


def default_rng() -> np.random.Generator:
    """Return the library-wide default generator."""
    return _global_rng


def spawn_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent generator, seeded from the global one if needed."""
    if seed is None:
        seed = int(_global_rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)


def get_rng_state() -> Dict:
    """Snapshot the global generator's bit-generator state.

    The returned value is a JSON-serializable nested dict (numpy encodes
    PCG64 state as plain ints); feed it back to :func:`set_rng_state` to
    resume the stream bit-exactly.
    """
    return generator_state(_global_rng)


def set_rng_state(state: Dict) -> None:
    """Restore the global generator from a :func:`get_rng_state` snapshot."""
    restore_generator(_global_rng, state)


def generator_state(generator: np.random.Generator) -> Dict:
    """Snapshot any generator's bit-generator state (JSON-serializable)."""
    return generator.bit_generator.state


def restore_generator(generator: np.random.Generator, state: Dict) -> None:
    """Restore ``generator`` in place from a :func:`generator_state` snapshot.

    In-place on purpose: modules hold references to their generator
    objects, so restoring must not rebind them.
    """
    generator.bit_generator.state = state
