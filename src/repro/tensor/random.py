"""Seeded randomness shared across the library.

Having a single place that constructs :class:`numpy.random.Generator`
objects makes every model, initializer, and dataset generator
deterministic given a seed — which is what lets the benchmark harness
average over "5 runs" reproducibly like the paper does.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_global_rng = np.random.default_rng(_DEFAULT_SEED)


def seed_everything(seed: int) -> None:
    """Reset the library-wide default generator."""
    global _global_rng
    _global_rng = np.random.default_rng(seed)


def default_rng() -> np.random.Generator:
    """Return the library-wide default generator."""
    return _global_rng


def spawn_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent generator, seeded from the global one if needed."""
    if seed is None:
        seed = int(_global_rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
