"""The :class:`Tensor` class — a numpy array with reverse-mode autodiff.

Each differentiable operation records its parents and a closure that
propagates the output gradient back to them.  ``Tensor.backward()`` walks
the resulting DAG in reverse topological order.  Gradients follow numpy
broadcasting semantics: a gradient flowing into a broadcasted operand is
summed over the broadcast axes (see :func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True

# Inference mode is strictly stronger than no_grad(): gradients are disabled
# AND the fused kernels dispatch to tape-free branches that recycle scratch
# buffers and skip saving per-timestep activations (see functional.py).
_INFERENCE_MODE = False

# The dtype every Tensor is stored as.  float64 is the training contract
# (cheap gradient checks on a numpy engine); compute_dtype(np.float32)
# switches the whole engine to single precision for inference.
_DEFAULT_DTYPE = np.dtype(np.float64)

# Monotonic count of tape nodes ever recorded by Tensor._make.  Tests use
# deltas of tape_node_count() to assert that inference_mode() records
# exactly zero nodes; repro.perf's hook-based profiler stays the tool for
# per-op attribution.
_TAPE_NODES = 0

# Profiling hooks (installed by repro.perf; None = zero-overhead fast path).
# _TAPE_HOOK is called with the op name every time a tape node is recorded;
# _BACKWARD_HOOK is called with (op name, seconds) after each node's backward.
# _OP_HOOK is called with (op, out_data, taped) on *every* op output — taped
# or not — so the op-level profiler sees inference-mode forwards too.
_TAPE_HOOK: Optional[Callable[[str], None]] = None
_BACKWARD_HOOK: Optional[Callable[[str, float], None]] = None
_OP_HOOK: Optional[Callable[[str, np.ndarray, bool], None]] = None

# Runtime sanitizer (installed by repro.analysis.sanitizer.sanitize; None =
# zero-overhead fast path).  Checks every tape-node creation and every
# gradient accumulation for NaN/Inf, dtype drift, and broadcast surprises.
_SANITIZER = None


def set_sanitizer(sanitizer):
    """Install (or clear, with None) the engine-level runtime sanitizer.

    Returns the previous sanitizer so nested ``sanitize()`` blocks can
    restore it.
    """
    global _SANITIZER
    previous = _SANITIZER
    _SANITIZER = sanitizer
    return previous


def get_sanitizer():
    """The currently installed sanitizer, or None when disabled."""
    return _SANITIZER


def set_profile_hooks(
    tape_hook: Optional[Callable[[str], None]] = None,
    backward_hook: Optional[Callable[[str, float], None]] = None,
) -> None:
    """Install (or clear, with None) the engine-level profiling hooks."""
    global _TAPE_HOOK, _BACKWARD_HOOK
    _TAPE_HOOK = tape_hook
    _BACKWARD_HOOK = backward_hook


def set_op_hook(
    hook: Optional[Callable[[str, np.ndarray, bool], None]],
) -> Optional[Callable[[str, np.ndarray, bool], None]]:
    """Install (or clear, with None) the engine-level op hook.

    The hook fires on every :meth:`Tensor._make` call — including
    inference-mode forwards that record zero tape nodes — with
    ``(op, out_data, taped)``.  Returns the previous hook so nested
    profiling scopes can restore it (same pattern as the sanitizer).
    """
    global _OP_HOOK
    previous = _OP_HOOK
    _OP_HOOK = hook
    return previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient tape entries."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous, _GRAD_ENABLED = _GRAD_ENABLED, False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_inference_mode() -> bool:
    """Whether the tape-free inference fast path is active."""
    return _INFERENCE_MODE


@contextlib.contextmanager
def inference_mode():
    """Context manager for the tape-free inference fast path.

    Strictly stronger than :func:`no_grad`: gradient recording is disabled
    (``Tensor._make`` records zero tape nodes — counter-asserted by
    :func:`tape_node_count`) *and* the fused GRU/LSTM/attention kernels take
    branches that neither save per-timestep activations nor allocate fresh
    scratch each step (see :mod:`repro.tensor.arena`).  Nests freely with
    itself and with :func:`no_grad`; the previous state is restored on exit.
    Tensors produced inside must never be used in a later ``backward()``.

    The *outermost* exit is an ownership boundary: every arena checkout is
    released, so an array that leaked out of the block is flagged as a
    use-after-release by the alias sanitizer on its next engine use
    (:mod:`repro.analysis.alias`).  With no sanitizer installed the
    release is a single attribute test — the fast path stays free.
    """
    global _GRAD_ENABLED, _INFERENCE_MODE
    prev_grad, prev_inf = _GRAD_ENABLED, _INFERENCE_MODE
    _GRAD_ENABLED, _INFERENCE_MODE = False, True
    try:
        yield
    finally:
        _GRAD_ENABLED, _INFERENCE_MODE = prev_grad, prev_inf
        if not prev_inf:
            from repro.tensor.arena import get_arena

            get_arena().release()


def tape_node_count() -> int:
    """Monotonic count of tape nodes recorded since import.

    Take a delta around a block to count the nodes it taped; inside
    :func:`inference_mode` (or :func:`no_grad`) the delta must be zero.
    """
    return _TAPE_NODES


def get_default_dtype() -> np.dtype:
    """The dtype every new Tensor is stored as (the engine compute dtype)."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def compute_dtype(dtype):
    """Context manager switching the engine-wide compute dtype.

    Inside ``compute_dtype(np.float32)`` every Tensor construction — leaf
    or op output — stores float32, numpy's weak scalar promotion keeps
    Python-float constants from upcasting, and the runtime sanitizer's
    drift check enforces the *active* dtype instead of a hard-coded
    float64.  Cast module parameters with ``Module.to_dtype`` first so the
    per-op casts are no-ops.  Restores the previous dtype on exit.
    """
    global _DEFAULT_DTYPE
    previous, _DEFAULT_DTYPE = _DEFAULT_DTYPE, np.dtype(dtype)
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Sums over leading axes added by broadcasting and over axes where the
    original dimension was 1 but the broadcast result was larger.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayable, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype if dtype is not None else _DEFAULT_DTYPE)


def ensure_tensor(value: Arrayable) -> "Tensor":
    """Coerce a scalar/array/Tensor into a Tensor (non-differentiable leaf)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A numpy-backed tensor that records an autodiff tape.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts. Stored as the engine compute dtype
        — float64 by default for accurate gradient checks, float32 inside
        ``compute_dtype(np.float32)`` (the inference fast path).
    requires_grad:
        Whether gradients should accumulate in ``self.grad``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "_op", "_grad_owned")
    __array_priority__ = 100  # ensure ndarray + Tensor defers to Tensor

    def __init__(
        self,
        data: Arrayable,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._grad_owned = False
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents = _parents if _GRAD_ENABLED else ()
        self._op = _op

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data, cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # autodiff machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        op: str,
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build an op output, wiring the tape only when grad is enabled."""
        parents = tuple(parents)
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            global _TAPE_NODES
            _TAPE_NODES += 1
            out._parents = parents
            out._op = op
            out._backward = backward
            if _TAPE_HOOK is not None:
                _TAPE_HOOK(op)
        if _OP_HOOK is not None:
            _OP_HOOK(op, data, needs_grad)
        if _SANITIZER is not None:
            # check the raw op output: Tensor.__init__ silently casts to
            # float64, which would hide dtype drift from the sanitizer
            _SANITIZER.check_forward(op, data, parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad``.

        The buffer is reused in place (``np.add(..., out=)``) once this
        tensor owns it.  A freshly stored gradient is only *owned* when the
        dtype cast or unbroadcast reduction produced a new array here —
        otherwise the incoming array may be shared with another node (e.g.
        the child's own ``grad`` forwarded through an add), so the first
        re-accumulation allocates and every later one is in place.
        """
        incoming = np.asarray(grad)
        if _SANITIZER is not None:
            _SANITIZER.check_grad(self._op or "leaf", incoming)
        g = incoming if incoming.dtype == self.data.dtype else incoming.astype(self.data.dtype)
        g = unbroadcast(g, self.data.shape)
        if self.grad is None:
            self.grad = g
            self._grad_owned = g is not incoming and g.base is None
        elif self._grad_owned:
            np.add(self.grad, g, out=self.grad)
        else:
            self.grad = self.grad + g
            self._grad_owned = True

    def backward(self, grad: Optional[Arrayable] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        seed = np.asarray(_as_array(grad), dtype=self.data.dtype)
        if seed.shape != self.data.shape:
            seed = np.broadcast_to(seed, self.data.shape)

        # Reverse-topological order over grad-requiring nodes only: a tensor
        # with requires_grad=False cannot lead to a grad-requiring leaf, so
        # whole constant subgraphs are never visited.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        hook = _BACKWARD_HOOK
        sanitizer = _SANITIZER
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                if sanitizer is not None:
                    # lets the sanitizer attribute a bad gradient to the op
                    # whose backward closure manufactured it
                    sanitizer.current_producer = node._op
                if hook is None:
                    node._backward(node.grad)
                else:
                    start = perf_counter()
                    node._backward(node.grad)
                    hook(node._op, perf_counter() - start)
        if sanitizer is not None:
            sanitizer.current_producer = None

    # ------------------------------------------------------------------
    # arithmetic — implemented here, richer ops live in functional.py
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayable) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), "add", backward)

    def __radd__(self, other: Arrayable) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Arrayable) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), "sub", backward)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other: Arrayable) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), "mul", backward)

    def __rmul__(self, other: Arrayable) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Arrayable) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), "div", backward)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), "neg", backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** exponent supports scalar exponents only")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), "pow", backward)

    def __matmul__(self, other: Arrayable) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.expand_dims(grad, -1) * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.expand_dims(self.data, -1) * grad)
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(out_data, (self, other), "matmul", backward)

    # comparisons return plain numpy bool arrays (non-differentiable)
    def __gt__(self, other: Arrayable):
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayable):
        return self.data < _as_array(other)

    def __ge__(self, other: Arrayable):
        return self.data >= _as_array(other)

    def __le__(self, other: Arrayable):
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # indexing & shape ops
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), "getitem", backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), "reshape", backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = np.transpose(self.data, axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), "transpose", backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), "swapaxes", backward)

    def expand_dims(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), "expand_dims", backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), "squeeze", backward)

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        shape = tuple(shape)
        out_data = np.broadcast_to(self.data, shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, original))

        return Tensor._make(np.ascontiguousarray(out_data), (self,), "broadcast", backward)

    # ------------------------------------------------------------------
    # reductions & elementwise ops routed through functional
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import functional as F

        return F.var(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import functional as F

        return F.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import functional as F

        return F.min(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.exp(self)

    def log(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.log(self)

    def sqrt(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.sqrt(self)

    def tanh(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.tanh(self)

    def sigmoid(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.sigmoid(self)

    def relu(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.relu(self)

    def abs(self) -> "Tensor":
        from repro.tensor import functional as F

        return F.abs(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from repro.tensor import functional as F

        return F.clip(self, low, high)
