"""Post-hoc calibration of uncertainty bands (extension beyond the paper).

Training the flow head with MSE (Eq. 18) is known to shrink the sampled
variance — E[(mu + sigma*eps - y)^2] = (mu - y)^2 + sigma^2 penalizes
sigma directly — so raw flow bands under-cover.  The paper leaves this
as qualitative ("the bands can cover extremes if the NF is weighted
more"); for a usable forecasting library we add *split-conformal*
calibration: hold-out residuals determine either an additive band radius
or a multiplicative widening of the flow bands, with finite-sample
coverage guarantees under exchangeability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.eval.uncertainty import UncertaintyBands


def conformal_radius(residuals: np.ndarray, level: float) -> float:
    """Split-conformal quantile of |residuals| for the target coverage.

    Uses the (ceil((n+1) * level) / n) finite-sample-corrected quantile.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    flat = np.abs(np.asarray(residuals)).ravel()
    n = flat.size
    if n == 0:
        raise ValueError("no residuals to calibrate on")
    rank = min(1.0, np.ceil((n + 1) * level) / n)
    return float(np.quantile(flat, rank))


@dataclass
class ConformalCalibrator:
    """Additive split-conformal bands around any point forecast."""

    radii: Dict[float, float]

    @classmethod
    def fit(
        cls, prediction: np.ndarray, target: np.ndarray, levels: Sequence[float] = (0.8, 0.9, 0.95)
    ) -> "ConformalCalibrator":
        residuals = np.asarray(target) - np.asarray(prediction)
        return cls(radii={level: conformal_radius(residuals, level) for level in levels})

    def bands(self, prediction: np.ndarray) -> UncertaintyBands:
        prediction = np.asarray(prediction)
        lower = {level: prediction - r for level, r in self.radii.items()}
        upper = {level: prediction + r for level, r in self.radii.items()}
        return UncertaintyBands(point=prediction, lower=lower, upper=upper)


@dataclass
class BandScaler:
    """Multiplicative widening of flow bands to hit target coverage.

    Fits one scale per level: the conformal quantile of
    |residual| / half-width on held-out data.  Keeps the flow's *shape*
    (heteroscedastic widths across time/variables) while fixing its
    overall level — additive conformal would flatten that structure.
    """

    scales: Dict[float, float]

    @classmethod
    def fit(cls, bands: UncertaintyBands, target: np.ndarray, eps: float = 1e-8) -> "BandScaler":
        target = np.asarray(target)
        scales = {}
        for level in bands.lower:
            half_width = (bands.upper[level] - bands.lower[level]) / 2.0 + eps
            ratio = np.abs(target - bands.point) / half_width
            scales[level] = conformal_radius(ratio, level)
        return cls(scales=scales)

    def apply(self, bands: UncertaintyBands) -> UncertaintyBands:
        lower, upper = {}, {}
        for level, scale in self.scales.items():
            center = bands.point
            half = (bands.upper[level] - bands.lower[level]) / 2.0
            lower[level] = center - half * scale
            upper[level] = center + half * scale
        return UncertaintyBands(point=bands.point, lower=lower, upper=upper)
