"""Computational-efficiency probes for the attention zoo (Fig. 5).

Measures per-forward wall time and peak memory of each attention
mechanism across sequence lengths, reproducing the paper's comparison of
sliding-window attention against Full/Prob/LSH/Log/Auto-correlation.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.nn import get_attention
from repro.tensor import Tensor, inference_mode


@dataclass
class EfficiencyPoint:
    """One (mechanism, length) measurement."""

    mechanism: str
    length: int
    seconds: float
    peak_bytes: int


def measure_attention(
    mechanism_name: str,
    lengths: Sequence[int],
    d_head: int = 8,
    n_heads: int = 2,
    batch: int = 1,
    repeats: int = 3,
    seed: int = 0,
    **mechanism_kwargs,
) -> List[EfficiencyPoint]:
    """Time/memory of one mechanism across sequence lengths (forward only)."""
    rng = np.random.default_rng(seed)
    points = []
    for length in lengths:
        mech = get_attention(mechanism_name, **mechanism_kwargs)
        mech.eval()
        q = Tensor(rng.normal(size=(batch, n_heads, length, d_head)))
        k = Tensor(rng.normal(size=(batch, n_heads, length, d_head)))
        v = Tensor(rng.normal(size=(batch, n_heads, length, d_head)))
        with inference_mode():
            mech(q, k, v)  # warm-up
            tracemalloc.start()
            start = time.perf_counter()
            for _ in range(repeats):
                mech(q, k, v)
            elapsed = (time.perf_counter() - start) / repeats
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        points.append(EfficiencyPoint(mechanism_name, length, elapsed, peak))
    return points


def efficiency_table(
    lengths: Sequence[int],
    mechanisms: Dict[str, dict] | None = None,
    **measure_kwargs,
) -> Dict[str, List[EfficiencyPoint]]:
    """Fig. 5 data: every mechanism measured on the same length ladder."""
    if mechanisms is None:
        mechanisms = {
            "sliding_window": {"window": 2},
            "full": {},
            "prob_sparse": {"factor": 5},
            "lsh": {"bucket_length": 24},
            "log_sparse": {},
            "auto_correlation": {"factor": 1},
        }
    return {
        name: measure_attention(name, lengths, **kwargs, **measure_kwargs)
        for name, kwargs in mechanisms.items()
    }


def measure_model(
    build_fn,
    lengths: Sequence[int],
    enc_in: int = 4,
    d_time: int = 4,
    batch: int = 1,
    repeats: int = 2,
    seed: int = 0,
) -> List[EfficiencyPoint]:
    """End-to-end forward time/memory of a forecaster across input lengths.

    The paper defers "computational costs of other components" to future
    work (§V-I Discussion); this probe provides them: ``build_fn(input_len,
    label_len, pred_len)`` must return a forecaster following the standard
    protocol, which is then timed on full forward passes.
    """
    rng = np.random.default_rng(seed)
    points = []
    for length in lengths:
        label_len = length // 2
        pred_len = length // 2
        model = build_fn(length, label_len, pred_len)
        model.eval()
        x_enc = Tensor(rng.normal(size=(batch, length, enc_in)))
        x_mark = Tensor(rng.normal(size=(batch, length, d_time)))
        x_dec = Tensor(rng.normal(size=(batch, label_len + pred_len, enc_in)))
        y_mark = Tensor(rng.normal(size=(batch, label_len + pred_len, d_time)))
        with inference_mode():
            model(x_enc, x_mark, x_dec, y_mark)  # warm-up
            tracemalloc.start()
            start = time.perf_counter()
            for _ in range(repeats):
                model(x_enc, x_mark, x_dec, y_mark)
            elapsed = (time.perf_counter() - start) / repeats
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        points.append(EfficiencyPoint("model", length, elapsed, peak))
    return points


def scaling_exponent(points: List[EfficiencyPoint]) -> float:
    """Least-squares slope of log(time) vs log(L) — ~1 linear, ~2 quadratic."""
    lengths = np.log([p.length for p in points])
    seconds = np.log([max(p.seconds, 1e-9) for p in points])
    slope, _ = np.polyfit(lengths, seconds, 1)
    return float(slope)
