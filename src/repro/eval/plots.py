"""Terminal visualization: sparklines, line charts, and heat rows.

No plotting backend exists in this sandbox, so the examples and
benchmark reports render forecasts as unicode block graphics — enough to
see band widths, tracking quality, and per-variable rhythm contrasts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of a series."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    lo = float(arr.min() if lo is None else lo)
    hi = float(arr.max() if hi is None else hi)
    if hi - lo < 1e-12:
        return _BLOCKS[0] * arr.size
    scaled = np.clip((arr - lo) / (hi - lo) * (len(_BLOCKS) - 1), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def heat_row(values: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Heatmap-style row using shade characters (Fig. 2-style)."""
    shades = " ░▒▓█"
    arr = np.asarray(list(values), dtype=np.float64)
    lo = float(arr.min() if lo is None else lo)
    hi = float(arr.max() if hi is None else hi)
    if hi - lo < 1e-12:
        return shades[0] * arr.size
    scaled = np.clip((arr - lo) / (hi - lo) * (len(shades) - 1), 0, len(shades) - 1)
    return "".join(shades[int(round(s))] for s in scaled)


def line_chart(
    series: dict,
    height: int = 10,
    width: Optional[int] = None,
    labels: bool = True,
) -> str:
    """Multi-series ASCII chart; each entry of ``series`` is name -> 1-D array.

    Series are drawn with distinct markers on a shared y-scale.
    """
    markers = "*+ox#@%"
    arrays = {name: np.asarray(vals, dtype=np.float64) for name, vals in series.items()}
    if not arrays:
        return ""
    n = max(len(a) for a in arrays.values())
    width = width or n
    lo = min(a.min() for a in arrays.values())
    hi = max(a.max() for a in arrays.values())
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, arr) in enumerate(arrays.items()):
        marker = markers[idx % len(markers)]
        xs = np.linspace(0, width - 1, len(arr)).astype(int)
        for x, value in zip(xs, arr):
            y = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - y][x] = marker
    lines = ["".join(row) for row in grid]
    if labels:
        legend = "  ".join(f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays))
        lines.append(f"[{lo:+.2f} .. {hi:+.2f}]  {legend}")
    return "\n".join(lines)


def band_chart(
    point: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    truth: Optional[np.ndarray] = None,
    height: int = 10,
) -> str:
    """Forecast band rendering: '.' fills the band, '*' point, 'o' truth."""
    point, lower, upper = (np.asarray(a, dtype=np.float64).ravel() for a in (point, lower, upper))
    n = len(point)
    stacked = [lower, upper, point] + ([np.asarray(truth).ravel()] if truth is not None else [])
    lo = min(a.min() for a in stacked)
    hi = max(a.max() for a in stacked)
    span = hi - lo if hi > lo else 1.0

    def row_of(value: float) -> int:
        return height - 1 - int(round((value - lo) / span * (height - 1)))

    grid = [[" "] * n for _ in range(height)]
    for x in range(n):
        top, bottom = row_of(upper[x]), row_of(lower[x])
        for y in range(top, bottom + 1):
            grid[y][x] = "."
        grid[row_of(point[x])][x] = "*"
        if truth is not None:
            grid[row_of(np.asarray(truth).ravel()[x])][x] = "o"
    legend = "'.'=band  '*'=point" + ("  'o'=truth" if truth is not None else "")
    return "\n".join("".join(row) for row in grid) + f"\n[{lo:+.2f} .. {hi:+.2f}]  {legend}"
