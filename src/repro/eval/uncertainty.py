"""Uncertainty-quantification evaluation (Figs. 6-7).

Builds quantile bands from Conformer's flow samples and scores them with
coverage/sharpness, including the paper's lambda sweep (how much weight
the flow head gets) and the #transformations sweep of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.training import metrics as M


@dataclass
class UncertaintyBands:
    """Point forecast plus symmetric quantile bands for one batch."""

    point: np.ndarray  # (B, L, C)
    lower: Dict[float, np.ndarray]  # per coverage level
    upper: Dict[float, np.ndarray]

    def coverage(self, target: np.ndarray, level: float) -> float:
        return M.coverage(self.lower[level], self.upper[level], target)

    def width(self, level: float) -> float:
        return M.interval_width(self.lower[level], self.upper[level])


def bands_from_samples(samples: np.ndarray, levels: Sequence[float] = (0.8, 0.9, 0.95)) -> UncertaintyBands:
    """Central quantile bands from (S, B, L, C) forecast samples."""
    samples = np.asarray(samples)
    if samples.ndim != 4:
        raise ValueError(f"expected (S, B, L, C) samples, got shape {samples.shape}")
    lower, upper = {}, {}
    for level in levels:
        alpha = (1.0 - level) / 2.0
        lower[level] = np.quantile(samples, alpha, axis=0)
        upper[level] = np.quantile(samples, 1.0 - alpha, axis=0)
    return UncertaintyBands(point=samples.mean(axis=0), lower=lower, upper=upper)


def blend_uncertainty(
    y_out: np.ndarray,
    flow_samples: np.ndarray,
    lam: float,
    levels: Sequence[float] = (0.8, 0.9, 0.95),
) -> UncertaintyBands:
    """Fig. 6's lambda mixing: bands of lam*y_out + (1-lam)*flow_samples.

    Smaller lambda weights the flow more, widening the bands — the paper's
    observation that the NF can "cover the extreme ground truth values if
    the NF block can be weighted more".
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lam must be in [0, 1]")
    blended = lam * np.asarray(y_out)[None] + (1.0 - lam) * np.asarray(flow_samples)
    return bands_from_samples(blended, levels=levels)


def evaluate_bands(bands: UncertaintyBands, target: np.ndarray) -> Dict[str, float]:
    """Coverage and width at each level plus point MSE/MAE."""
    result: Dict[str, float] = {
        "mse": M.mse(bands.point, target),
        "mae": M.mae(bands.point, target),
    }
    for level in bands.lower:
        result[f"coverage@{level}"] = bands.coverage(target, level)
        result[f"width@{level}"] = bands.width(level)
    return result
