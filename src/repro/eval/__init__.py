"""Evaluation utilities: attention-complexity probes, uncertainty bands."""

from repro.eval.complexity import (
    EfficiencyPoint,
    efficiency_table,
    measure_attention,
    scaling_exponent,
)
from repro.eval.uncertainty import (
    UncertaintyBands,
    bands_from_samples,
    blend_uncertainty,
    evaluate_bands,
)
from repro.eval.calibration import BandScaler, ConformalCalibrator, conformal_radius
from repro.eval.plots import band_chart, heat_row, line_chart, sparkline

__all__ = [
    "band_chart",
    "heat_row",
    "line_chart",
    "sparkline",
    "BandScaler",
    "ConformalCalibrator",
    "conformal_radius",
    "EfficiencyPoint",
    "efficiency_table",
    "measure_attention",
    "scaling_exponent",
    "UncertaintyBands",
    "bands_from_samples",
    "blend_uncertainty",
    "evaluate_bands",
]
