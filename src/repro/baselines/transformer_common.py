"""Shared Transformer scaffold for the attention-swap baselines.

Informer, Reformer, Longformer, LogTrans, and the vanilla Transformer all
share the same encoder-decoder skeleton and differ in (a) the attention
mechanism and (b) whether encoder self-attention distilling is applied
(Informer).  The scaffold is parameterized by attention *factories* so
each layer gets its own mechanism instance.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.nn import (
    AttentionMechanism,
    Conv1d,
    DataEmbedding,
    Dropout,
    ELU,
    FeedForward,
    LayerNorm,
    Module,
    ModuleList,
    MultiHeadAttention,
)
from repro.tensor import Tensor, functional as F
from repro.tensor.random import spawn_rng

AttentionFactory = Callable[[], AttentionMechanism]


class TransformerEncoderLayer(Module):
    """Pre-LN style: self-attention + feed-forward with residuals."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, dropout: float, attention: AttentionFactory, rng=None):
        super().__init__()
        self.attention = MultiHeadAttention(d_model, n_heads, mechanism=attention(), dropout=dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(x + self.dropout(self.attention(x)))
        return self.norm2(x + self.dropout(self.feed_forward(x)))


class DistilLayer(Module):
    """Informer's self-attention distilling: conv + ELU + stride-2 max-pool."""

    def __init__(self, d_model: int, rng=None) -> None:
        super().__init__()
        self.conv = Conv1d(d_model, d_model, kernel_size=3, padding="same", padding_mode="circular", rng=rng)
        self.activation = ELU()

    def forward(self, x: Tensor) -> Tensor:
        out = self.activation(self.conv(x))
        return F.max_pool1d(out, kernel=2, stride=2)


class TransformerDecoderLayer(Module):
    """Masked self-attention + cross-attention + feed-forward."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ff: int,
        dropout: float,
        self_attention: AttentionFactory,
        cross_attention: AttentionFactory,
        rng=None,
    ) -> None:
        super().__init__()
        self.self_attention = MultiHeadAttention(d_model, n_heads, mechanism=self_attention(), dropout=dropout, rng=rng)
        self.cross_attention = MultiHeadAttention(d_model, n_heads, mechanism=cross_attention(), dropout=dropout, rng=rng)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.norm3 = LayerNorm(d_model)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, memory: Tensor) -> Tensor:
        x = self.norm1(x + self.dropout(self.self_attention(x)))
        x = self.norm2(x + self.dropout(self.cross_attention(x, memory, memory)))
        return self.norm3(x + self.dropout(self.feed_forward(x)))


class TransformerForecaster(ForecastModel):
    """Generic encoder-decoder forecaster with pluggable attention.

    Decoding is generative (Informer-style): the decoder receives the
    last ``label_len`` known steps plus zero placeholders and predicts the
    whole horizon in one forward pass.
    """

    def __init__(
        self,
        enc_in: int,
        dec_in: int,
        c_out: int,
        pred_len: int,
        d_model: int = 32,
        n_heads: int = 8,
        e_layers: int = 2,
        d_layers: int = 1,
        d_ff: int = 64,
        dropout: float = 0.05,
        d_time: int = 4,
        distil: bool = False,
        enc_attention: Optional[AttentionFactory] = None,
        dec_self_attention: Optional[AttentionFactory] = None,
        dec_cross_attention: Optional[AttentionFactory] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        from repro.nn import FullAttention

        rng = spawn_rng(seed)
        enc_attention = enc_attention or (lambda: FullAttention(dropout=dropout))
        dec_self_attention = dec_self_attention or (lambda: FullAttention(dropout=dropout, causal=True))
        dec_cross_attention = dec_cross_attention or (lambda: FullAttention(dropout=dropout))

        self.pred_len = pred_len
        self.enc_embedding = DataEmbedding(enc_in, d_model, d_time=d_time, dropout=dropout, use_position=True, rng=rng)
        self.dec_embedding = DataEmbedding(dec_in, d_model, d_time=d_time, dropout=dropout, use_position=True, rng=rng)
        self.encoder_layers = ModuleList(
            [TransformerEncoderLayer(d_model, n_heads, d_ff, dropout, enc_attention, rng=rng) for _ in range(e_layers)]
        )
        self.distil_layers = (
            ModuleList([DistilLayer(d_model, rng=rng) for _ in range(e_layers - 1)]) if distil else None
        )
        self.decoder_layers = ModuleList(
            [
                TransformerDecoderLayer(
                    d_model, n_heads, d_ff, dropout, dec_self_attention, dec_cross_attention, rng=rng
                )
                for _ in range(d_layers)
            ]
        )
        from repro.nn import Linear

        self.projection = Linear(d_model, c_out, rng=rng)

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        enc = self.enc_embedding(x_enc, x_mark_enc)
        for i, layer in enumerate(self.encoder_layers):
            enc = layer(enc)
            if self.distil_layers is not None and i < len(self.distil_layers) and enc.shape[1] >= 4:
                enc = self.distil_layers[i](enc)
        dec = self.dec_embedding(x_dec, y_mark_dec)
        for layer in self.decoder_layers:
            dec = layer(dec, enc)
        out = self.projection(dec)
        return out[:, -self.pred_len :, :]
