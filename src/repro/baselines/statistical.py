"""Statistical reference predictors: persistence, seasonal-naive, AR, VAR.

These are not in the paper's comparison tables but serve as sanity
floors in the benchmark harness (a deep model losing to persistence on a
periodic dataset signals a broken training run) and implement the
classical methods the related-work section discusses (§II-A).
All fit in closed form — no gradient training.
"""

from __future__ import annotations

import numpy as np


class NaivePersistence:
    """Repeat the last observed value over the whole horizon."""

    def __init__(self, pred_len: int) -> None:
        self.pred_len = pred_len

    def fit(self, train_values: np.ndarray) -> "NaivePersistence":
        return self

    def predict(self, x_enc: np.ndarray) -> np.ndarray:
        """x_enc: (B, L, C) -> (B, pred_len, C)."""
        last = x_enc[:, -1:, :]
        return np.repeat(last, self.pred_len, axis=1)


class SeasonalNaive:
    """Repeat the last full season of the input window."""

    def __init__(self, pred_len: int, period: int) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        self.pred_len = pred_len
        self.period = period

    def fit(self, train_values: np.ndarray) -> "SeasonalNaive":
        return self

    def predict(self, x_enc: np.ndarray) -> np.ndarray:
        batch, length, channels = x_enc.shape
        if length < self.period:
            raise ValueError(f"input window ({length}) shorter than period ({self.period})")
        season = x_enc[:, -self.period :, :]
        reps = int(np.ceil(self.pred_len / self.period))
        tiled = np.tile(season, (1, reps, 1))
        return tiled[:, : self.pred_len, :]


class ARForecaster:
    """Per-channel autoregressive model fit by ordinary least squares.

    Forecasts recursively over the horizon — the scalable stand-in for
    ARIMA in the related-work lineage.
    """

    def __init__(self, pred_len: int, order: int = 8, ridge: float = 1e-3) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.pred_len = pred_len
        self.order = order
        self.ridge = ridge
        self.coef_: np.ndarray | None = None  # (C, order)
        self.intercept_: np.ndarray | None = None  # (C,)

    def fit(self, train_values: np.ndarray) -> "ARForecaster":
        values = np.asarray(train_values, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        n, channels = values.shape
        if n <= self.order:
            raise ValueError("training series shorter than AR order")
        coefs = np.empty((channels, self.order))
        intercepts = np.empty(channels)
        for c in range(channels):
            series = values[:, c]
            design = np.column_stack([series[self.order - k - 1 : n - k - 1] for k in range(self.order)])
            design = np.column_stack([design, np.ones(len(design))])
            target = series[self.order :]
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            solution = np.linalg.solve(gram, design.T @ target)
            coefs[c] = solution[:-1]
            intercepts[c] = solution[-1]
        self.coef_, self.intercept_ = coefs, intercepts
        return self

    def predict(self, x_enc: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("ARForecaster used before fit()")
        x = np.asarray(x_enc, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        batch, length, channels = x.shape
        if length < self.order:
            raise ValueError("input window shorter than AR order")
        history = x[:, -self.order :, :].copy()  # (B, order, C)
        outputs = np.empty((batch, self.pred_len, channels))
        for step in range(self.pred_len):
            # lags ordered most-recent-first to match the fitted design
            lags = history[:, ::-1, :]  # (B, order, C)
            next_value = np.einsum("boc,co->bc", lags, self.coef_) + self.intercept_
            outputs[:, step, :] = next_value
            history = np.concatenate([history[:, 1:, :], next_value[:, None, :]], axis=1)
        return outputs


class ARIMAForecaster:
    """AR-integrated forecaster: difference ``d`` times, fit AR(p), invert.

    The tractable core of ARIMA(p, d, 0) — differencing handles the
    random-walk non-stationarity that plain AR cannot (Exchange-style
    series), which is exactly why the classical literature (§II-A)
    reaches for ARIMA there.
    """

    def __init__(self, pred_len: int, order: int = 8, d: int = 1, ridge: float = 1e-3) -> None:
        if d < 0:
            raise ValueError("d must be >= 0")
        self.pred_len = pred_len
        self.d = d
        self._ar = ARForecaster(pred_len=pred_len, order=order, ridge=ridge)

    def fit(self, train_values: np.ndarray) -> "ARIMAForecaster":
        values = np.asarray(train_values, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        for _ in range(self.d):
            values = np.diff(values, axis=0)
        self._ar.fit(values)
        return self

    def predict(self, x_enc: np.ndarray) -> np.ndarray:
        x = np.asarray(x_enc, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        # difference the window, forecast differences, then re-integrate
        tails = []  # last value at each differencing level, innermost last
        for _ in range(self.d):
            tails.append(x[:, -1, :])
            x = np.diff(x, axis=1)
        forecast = self._ar.predict(x)
        for tail in reversed(tails):
            forecast = tail[:, None, :] + np.cumsum(forecast, axis=1)
        return forecast


class VARForecaster:
    """Vector autoregression: one joint least-squares over all channels."""

    def __init__(self, pred_len: int, order: int = 4, ridge: float = 1e-2) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.pred_len = pred_len
        self.order = order
        self.ridge = ridge
        self.coef_: np.ndarray | None = None  # (order * C + 1, C)

    def fit(self, train_values: np.ndarray) -> "VARForecaster":
        values = np.asarray(train_values, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        n, channels = values.shape
        if n <= self.order:
            raise ValueError("training series shorter than VAR order")
        rows = n - self.order
        design = np.empty((rows, self.order * channels + 1))
        for k in range(self.order):
            design[:, k * channels : (k + 1) * channels] = values[self.order - k - 1 : n - k - 1]
        design[:, -1] = 1.0
        target = values[self.order :]
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.coef_ = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(self, x_enc: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("VARForecaster used before fit()")
        x = np.asarray(x_enc, dtype=np.float64)  # repro: noqa[no-float64-literal] lstsq conditioning; numpy-only path, never under compute_dtype
        batch, length, channels = x.shape
        history = x[:, -self.order :, :].copy()
        outputs = np.empty((batch, self.pred_len, channels))
        for step in range(self.pred_len):
            lags = history[:, ::-1, :].reshape(batch, self.order * channels)
            design = np.column_stack([lags, np.ones(batch)])
            next_value = design @ self.coef_
            outputs[:, step, :] = next_value
            history = np.concatenate([history[:, 1:, :], next_value[:, None, :]], axis=1)
        return outputs
