"""DLinear baseline (Zeng et al. 2022) — extension: the strong linear
decomposition model that post-dates the paper's comparison set.

Decompose the input window into trend + seasonal (same moving-average
decomposition as Autoformer/Conformer), apply one linear map per branch
from the L_x past steps to the L_y future steps (shared across
channels), and sum.  Famously competitive with far heavier Transformers
on the LTTF benchmarks — a useful sanity anchor for this repository.
"""

from __future__ import annotations

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.core.decomp import SeriesDecomposition
from repro.nn import Linear
from repro.tensor import Tensor
from repro.tensor.random import spawn_rng


class DLinear(ForecastModel):
    """Decomposition + two per-branch linear maps over time."""

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        input_len: int,
        pred_len: int,
        moving_avg: int = 25,
        individual: bool = False,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.c_out = c_out
        self.individual = individual
        self.decomp = SeriesDecomposition(moving_avg)
        if individual:
            from repro.nn import ModuleList

            self.trend_linears = ModuleList([Linear(input_len, pred_len, rng=rng) for _ in range(enc_in)])
            self.seasonal_linears = ModuleList([Linear(input_len, pred_len, rng=rng) for _ in range(enc_in)])
        else:
            self.trend_linear = Linear(input_len, pred_len, rng=rng)
            self.seasonal_linear = Linear(input_len, pred_len, rng=rng)

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        trend, seasonal = self.decomp(x_enc)  # (B, L, C)
        trend_t = trend.swapaxes(1, 2)  # (B, C, L)
        seasonal_t = seasonal.swapaxes(1, 2)
        if self.individual:
            from repro.tensor import functional as F

            trend_parts = [self.trend_linears[c](trend_t[:, c, :]) for c in range(trend_t.shape[1])]
            seasonal_parts = [self.seasonal_linears[c](seasonal_t[:, c, :]) for c in range(seasonal_t.shape[1])]
            trend_out = F.stack(trend_parts, axis=1)
            seasonal_out = F.stack(seasonal_parts, axis=1)
        else:
            trend_out = self.trend_linear(trend_t)  # (B, C, pred)
            seasonal_out = self.seasonal_linear(seasonal_t)
        out = (trend_out + seasonal_out).swapaxes(1, 2)  # (B, pred, C)
        return out[:, :, : self.c_out]
