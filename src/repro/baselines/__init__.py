"""Baseline forecasters: the nine comparison models of Tables II-IV plus
statistical sanity floors."""

from repro.baselines.base import ForecastModel
from repro.baselines.autoformer import Autoformer
from repro.baselines.deepar import DeepAR
from repro.baselines.dlinear import DLinear
from repro.baselines.nbeats import NBeats
from repro.baselines.rnn_models import GRUForecaster, LSTNet
from repro.baselines.statistical import (
    ARForecaster,
    ARIMAForecaster,
    NaivePersistence,
    SeasonalNaive,
    VARForecaster,
)
from repro.baselines.transformer_common import TransformerForecaster
from repro.baselines.transformers import (
    Informer,
    LogTrans,
    Longformer,
    Reformer,
    VanillaTransformer,
)
from repro.baselines.ts2vec import TS2Vec, TS2VecEncoder, hierarchical_contrastive_loss

__all__ = [
    "ForecastModel",
    "Autoformer",
    "DeepAR",
    "DLinear",
    "NBeats",
    "GRUForecaster",
    "LSTNet",
    "ARForecaster",
    "ARIMAForecaster",
    "NaivePersistence",
    "SeasonalNaive",
    "VARForecaster",
    "TransformerForecaster",
    "Informer",
    "LogTrans",
    "Longformer",
    "Reformer",
    "VanillaTransformer",
    "TS2Vec",
    "TS2VecEncoder",
    "hierarchical_contrastive_loss",
]
