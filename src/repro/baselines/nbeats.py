"""N-Beats baseline (Oreshkin et al., ICLR 2020), generic blocks.

Doubly-residual stacks of fully-connected blocks: each block consumes
the current backcast residual and emits (backcast, forecast); forecasts
are summed over all blocks.  N-Beats is a univariate architecture — the
multivariate adaptation (as the paper's §V-A2 does) applies the shared
network channel-independently by folding channels into the batch.
"""

from __future__ import annotations

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.nn import Linear, Module, ModuleList, ReLU, Sequential
from repro.tensor import Tensor
from repro.tensor.random import spawn_rng


class NBeatsBlock(Module):
    """Four-layer FC trunk with linear backcast/forecast heads."""

    def __init__(self, input_len: int, pred_len: int, hidden: int, n_layers: int = 4, rng=None) -> None:
        super().__init__()
        layers = []
        width = input_len
        for _ in range(n_layers):
            layers.extend([Linear(width, hidden, rng=rng), ReLU()])
            width = hidden
        self.trunk = Sequential(*layers)
        self.backcast_head = Linear(hidden, input_len, rng=rng)
        self.forecast_head = Linear(hidden, pred_len, rng=rng)

    def forward(self, x: Tensor):
        hidden = self.trunk(x)
        return self.backcast_head(hidden), self.forecast_head(hidden)


class NBeats(ForecastModel):
    """Stacked generic N-Beats blocks, channel-independent."""

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        input_len: int,
        pred_len: int,
        hidden_size: int = 64,
        n_blocks: int = 3,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.input_len = input_len
        self.pred_len = pred_len
        self.c_out = c_out
        self.blocks = ModuleList([NBeatsBlock(input_len, pred_len, hidden_size, rng=rng) for _ in range(n_blocks)])

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        batch, length, channels = x_enc.shape
        # fold channels into the batch: (B, L, C) -> (B*C, L)
        series = x_enc.transpose(0, 2, 1).reshape(batch * channels, length)
        residual = series
        forecast = None
        for block in self.blocks:
            backcast, block_forecast = block(residual)
            residual = residual - backcast
            forecast = block_forecast if forecast is None else forecast + block_forecast
        out = forecast.reshape(batch, channels, self.pred_len).transpose(0, 2, 1)
        return out[:, :, : self.c_out]
