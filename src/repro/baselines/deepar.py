"""DeepAR baseline (Salinas et al. 2020) — extension beyond the paper's
comparison set, cited in its related work (§II-A, [9]).

An autoregressive GRU consumes the previous value plus calendar marks
and emits a Gaussian (mu, sigma) per step.  Training uses teacher
forcing with negative log-likelihood; prediction unrolls ancestrally and
supports Monte-Carlo sampling for probabilistic forecasts — the natural
likelihood-based counterpart to Conformer's normalizing-flow head.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.nn import GRU, Linear
from repro.tensor import Tensor, functional as F, inference_mode
from repro.tensor.random import spawn_rng


class DeepAR(ForecastModel):
    """Autoregressive GRU with a Gaussian output head."""

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        pred_len: int,
        hidden_size: int = 32,
        num_layers: int = 2,
        d_time: int = 4,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.c_out = c_out
        self.enc_in = enc_in
        self.rnn = GRU(enc_in + d_time, hidden_size, num_layers=num_layers, rng=rng)
        self.mu_head = Linear(hidden_size, c_out, rng=rng)
        self.sigma_head = Linear(hidden_size, c_out, rng=rng)
        self._rng = spawn_rng(seed + 1)
        self._last_sigma: Optional[Tensor] = None

    # -- internals ---------------------------------------------------------
    def _distribution(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        mu = self.mu_head(features)
        sigma = F.softplus(self.sigma_head(features)) + 1e-4
        return mu, sigma

    def _teacher_forced(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor):
        """Condition on the encoder window, then predict each future step
        from the *previous ground-truth-free* path (training uses the
        zero-padded decoder input's label section as context)."""
        label_len = x_dec.shape[1] - self.pred_len
        # context: full encoder window
        context = F.concat([x_enc, x_mark_enc], axis=-1)
        _, states = self.rnn(context)
        # future: feed back our own mean predictions (no ground truth leaks)
        batch = x_enc.shape[0]
        prev = x_enc[:, -1:, :]
        mus: List[Tensor] = []
        sigmas: List[Tensor] = []
        future_marks = y_mark_dec[:, label_len:, :]
        for step in range(self.pred_len):
            step_in = F.concat([prev, future_marks[:, step : step + 1, :]], axis=-1)
            out, states = self.rnn(step_in, states)
            mu, sigma = self._distribution(out[:, 0, :])
            mus.append(mu)
            sigmas.append(sigma)
            prev = mu.reshape(batch, 1, self.c_out)
        return F.stack(mus, axis=1), F.stack(sigmas, axis=1)

    # -- forecaster protocol -------------------------------------------------
    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        mu, sigma = self._teacher_forced(x_enc, x_mark_enc, x_dec, y_mark_dec)
        self._last_sigma = sigma
        return mu

    def compute_loss(self, outputs, target: Tensor) -> Tensor:
        """Gaussian NLL (DeepAR's objective)."""
        mu, sigma = outputs, self._last_sigma
        diff = target.detach() - mu
        return (F.log(sigma) + 0.5 * (diff * diff) / (sigma * sigma)).mean() + 0.5 * float(np.log(2 * np.pi))

    def sample_paths(self, x_enc, x_mark_enc, x_dec, y_mark_dec, n_samples: int = 100) -> np.ndarray:
        """Ancestral sampling: (S, B, pred_len, c_out) Monte-Carlo paths."""
        x_enc, x_mark_enc = _t(x_enc), _t(x_mark_enc)
        x_dec, y_mark_dec = _t(x_dec), _t(y_mark_dec)
        label_len = x_dec.shape[1] - self.pred_len
        batch = x_enc.shape[0]
        was_training = self.training
        self.eval()
        paths = []
        try:
            with inference_mode():
                context = F.concat([x_enc, x_mark_enc], axis=-1)
                _, base_states = self.rnn(context)
                future_marks = y_mark_dec[:, label_len:, :]
                for _ in range(n_samples):
                    states = [Tensor(s.data.copy()) for s in base_states]
                    prev = x_enc[:, -1:, :]
                    steps = []
                    for step in range(self.pred_len):
                        step_in = F.concat([prev, future_marks[:, step : step + 1, :]], axis=-1)
                        out, states = self.rnn(step_in, states)
                        mu, sigma = self._distribution(out[:, 0, :])
                        draw = mu.data + sigma.data * self._rng.normal(size=mu.shape)
                        steps.append(draw)
                        prev = Tensor(draw.reshape(batch, 1, self.c_out))
                    paths.append(np.stack(steps, axis=1))
        finally:
            self.train(was_training)
        return np.stack(paths, axis=0)


def _t(value):
    return value if isinstance(value, Tensor) else Tensor(value)
