"""TS2Vec baseline (Yue et al., AAAI 2022), adapted for forecasting.

A dilated-convolution encoder produces per-timestep representations.
Training combines (a) a hierarchical temporal contrastive loss between
two randomly-cropped overlapping views and (b) a linear forecasting head
on the final representation — so the model fits the standard trainer
protocol while keeping TS2Vec's representation-learning character.
The paper uses TS2Vec in the *univariate* comparison (Table IV).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.nn import Conv1d, GELU, LayerNorm, Linear, Module, ModuleList
from repro.tensor import Tensor, functional as F
from repro.tensor.random import spawn_rng


class DilatedConvBlock(Module):
    """Residual GELU conv block with exponentially growing dilation.

    Dilation is realized by subsampled kernels: a dilation-d kernel-3
    convolution equals a kernel (2d+1) conv whose interior taps are zero;
    we emulate it with stride-free Conv1d over a dilated index gather.
    """

    def __init__(self, channels: int, dilation: int, rng=None) -> None:
        super().__init__()
        self.dilation = dilation
        self.conv = Conv1d(channels, channels, kernel_size=3, padding="same", rng=rng)
        self.activation = GELU()
        self.norm = LayerNorm(channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.dilation == 1:
            out = self.conv(x)
        else:
            # gather every d-th step, convolve, scatter back (per phase)
            batch, length, channels = x.shape
            d = self.dilation
            pieces: List[Tensor] = []
            for phase in range(d):
                idx = np.arange(phase, length, d)
                strided = x[:, idx, :]
                pieces.append((idx, self.conv(strided)))
            # interleave the phases back in order
            order = np.argsort(np.concatenate([idx for idx, _ in pieces]))
            stacked = F.concat([piece for _, piece in pieces], axis=1)
            out = stacked[:, order, :]
        return self.norm(x + self.activation(out))


class TS2VecEncoder(Module):
    """Input projection + stacked dilated conv blocks."""

    def __init__(self, c_in: int, d_repr: int, depth: int = 3, rng=None) -> None:
        super().__init__()
        self.input_proj = Linear(c_in, d_repr, rng=rng)
        self.blocks = ModuleList([DilatedConvBlock(d_repr, dilation=2**i, rng=rng) for i in range(depth)])

    def forward(self, x: Tensor) -> Tensor:
        out = self.input_proj(x)
        for block in self.blocks:
            out = block(out)
        return out


def hierarchical_contrastive_loss(repr_a: Tensor, repr_b: Tensor, levels: int = 2) -> Tensor:
    """Temporal contrastive loss pooled over a hierarchy of scales.

    At each level, matching timesteps across the two views are positives
    and all other timesteps in the batch are negatives; representations
    are max-pooled by 2 between levels (TS2Vec's hierarchy).
    """
    loss = None
    a, b = repr_a, repr_b
    for level in range(levels):
        batch, length, dim = a.shape
        flat_a = a.reshape(batch * length, dim)
        flat_b = b.reshape(batch * length, dim)
        logits = flat_a @ flat_b.swapaxes(-1, -2) / np.sqrt(dim)  # (BL, BL)
        labels = np.arange(batch * length)
        log_probs = F.log_softmax(logits, axis=-1)
        level_loss = -log_probs[labels, labels].mean()
        loss = level_loss if loss is None else loss + level_loss
        if a.shape[1] >= 2 and level < levels - 1:
            a = F.max_pool1d(a, kernel=2, stride=2)
            b = F.max_pool1d(b, kernel=2, stride=2)
    return loss * (1.0 / levels)


class TS2Vec(ForecastModel):
    """TS2Vec encoder + linear forecasting head, jointly trained."""

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        pred_len: int,
        d_repr: int = 32,
        depth: int = 3,
        contrastive_weight: float = 0.5,
        d_time: int = 4,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.c_out = c_out
        self.contrastive_weight = contrastive_weight
        self.encoder = TS2VecEncoder(enc_in + d_time, d_repr, depth=depth, rng=rng)
        self.head = Linear(d_repr, pred_len * c_out, rng=rng)
        self._rng = spawn_rng(seed + 1)
        self._last_contrastive: Tensor | None = None

    def encode(self, x_enc: Tensor, x_mark_enc: Tensor) -> Tensor:
        """Per-timestep representations (B, L, d_repr)."""
        return self.encoder(F.concat([x_enc, x_mark_enc], axis=-1))

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        representation = self.encode(x_enc, x_mark_enc)
        if self.training and x_enc.shape[1] >= 8:
            self._last_contrastive = self._contrastive(x_enc, x_mark_enc)
        else:
            self._last_contrastive = None
        final = representation[:, -1, :]
        return self.head(final).reshape(x_enc.shape[0], self.pred_len, self.c_out)

    def _contrastive(self, x_enc: Tensor, x_mark_enc: Tensor) -> Tensor:
        """Two overlapping random crops -> hierarchical contrastive loss."""
        length = x_enc.shape[1]
        crop = max(4, length // 2)
        max_start = length - crop
        start_a = int(self._rng.integers(0, max(1, max_start // 2)))
        start_b = int(self._rng.integers(start_a, max_start + 1))
        overlap_lo = start_b
        overlap_hi = min(start_a + crop, start_b + crop)
        if overlap_hi - overlap_lo < 2:
            overlap_lo, overlap_hi = 0, crop
            start_a = start_b = 0
        view_a = self.encode(x_enc[:, start_a : start_a + crop, :], x_mark_enc[:, start_a : start_a + crop, :])
        view_b = self.encode(x_enc[:, start_b : start_b + crop, :], x_mark_enc[:, start_b : start_b + crop, :])
        a_seg = view_a[:, overlap_lo - start_a : overlap_hi - start_a, :]
        b_seg = view_b[:, overlap_lo - start_b : overlap_hi - start_b, :]
        return hierarchical_contrastive_loss(a_seg, b_seg)

    def compute_loss(self, outputs, target: Tensor) -> Tensor:
        loss = F.mse_loss(outputs, target)
        if self._last_contrastive is not None:
            loss = loss + self.contrastive_weight * self._last_contrastive
        return loss
