"""The five Transformer baselines of Table II/IV, as thin specializations
of :class:`~repro.baselines.transformer_common.TransformerForecaster`.

- :class:`VanillaTransformer` — full O(L^2) attention (Vaswani).
- :class:`Informer` — ProbSparse attention + self-attention distilling.
- :class:`Reformer` — LSH attention (paper settings: bucket_length 24,
  4 hash rounds).
- :class:`Longformer` — sliding-window attention with linear complexity.
- :class:`LogTrans` — log-sparse attention (2 blocks, sub_len 1).
"""

from __future__ import annotations

from repro.baselines.transformer_common import TransformerForecaster
from repro.nn import (
    FullAttention,
    GlobalWindowAttention,
    LSHAttention,
    LogSparseAttention,
    ProbSparseAttention,
    SlidingWindowAttention,
)


class VanillaTransformer(TransformerForecaster):
    """Standard Transformer with full attention everywhere."""


class Informer(TransformerForecaster):
    """ProbSparse self-attentions + distilling encoder (Zhou et al. 2021).

    The paper sets the sampling factor to 1 for the comparisons (§V-A2).
    """

    def __init__(self, *args, factor: int = 1, dropout: float = 0.05, seed: int = 0, **kwargs) -> None:
        super().__init__(
            *args,
            dropout=dropout,
            distil=True,
            enc_attention=lambda: ProbSparseAttention(factor=factor, dropout=dropout, seed=seed),
            dec_self_attention=lambda: ProbSparseAttention(factor=factor, dropout=dropout, causal=True, seed=seed),
            dec_cross_attention=lambda: FullAttention(dropout=dropout),
            seed=seed,
            **kwargs,
        )


class Reformer(TransformerForecaster):
    """LSH attention (Kitaev et al. 2020); bucket_length 24, 4 rounds (§V-A2)."""

    def __init__(
        self, *args, bucket_length: int = 24, n_rounds: int = 4, dropout: float = 0.05, seed: int = 0, **kwargs
    ) -> None:
        super().__init__(
            *args,
            dropout=dropout,
            enc_attention=lambda: LSHAttention(bucket_length=bucket_length, n_rounds=n_rounds, dropout=dropout, seed=seed),
            dec_self_attention=lambda: LSHAttention(bucket_length=bucket_length, n_rounds=n_rounds, dropout=dropout, seed=seed),
            dec_cross_attention=lambda: FullAttention(dropout=dropout),
            seed=seed,
            **kwargs,
        )


class Longformer(TransformerForecaster):
    """Sliding-window + task-motivated global attention (Beltagy et al.
    2020), scaling linearly with length."""

    def __init__(
        self, *args, window: int = 8, n_global: int = 4, dropout: float = 0.05, seed: int = 0, **kwargs
    ) -> None:
        super().__init__(
            *args,
            dropout=dropout,
            enc_attention=lambda: GlobalWindowAttention(window=window, n_global=n_global, dropout=dropout),
            dec_self_attention=lambda: SlidingWindowAttention(window=window, dropout=dropout, causal=True),
            dec_cross_attention=lambda: FullAttention(dropout=dropout),
            seed=seed,
            **kwargs,
        )


class LogTrans(TransformerForecaster):
    """Log-sparse attention (Li et al. 2019); sub_len 1, 2 blocks (§V-A2)."""

    def __init__(self, *args, sub_len: int = 1, dropout: float = 0.05, seed: int = 0, **kwargs) -> None:
        kwargs.setdefault("e_layers", 2)
        super().__init__(
            *args,
            dropout=dropout,
            enc_attention=lambda: LogSparseAttention(sub_len=sub_len, dropout=dropout),
            dec_self_attention=lambda: LogSparseAttention(sub_len=sub_len, dropout=dropout),
            dec_cross_attention=lambda: FullAttention(dropout=dropout),
            seed=seed,
            **kwargs,
        )
