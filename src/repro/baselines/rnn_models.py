"""RNN-based baselines: GRU seq2seq and LSTNet (CNN + GRU).

Per §V-A2: the GRU baseline is 2-layer; LSTNet's highway and skip
connections are omitted to simplify parameter tuning.
"""

from __future__ import annotations

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.nn import GRU, Conv1d, Dropout, Linear, ReLU
from repro.tensor import Tensor, functional as F
from repro.tensor.random import spawn_rng


class GRUForecaster(ForecastModel):
    """2-layer GRU encoder + direct multi-horizon head.

    The final hidden state summarizes the input window; a linear head
    emits the whole horizon at once (the "one-step prediction strategy"
    used for all baselines in §V-A2: no autoregressive error feedback).
    """

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        pred_len: int,
        hidden_size: int = 32,
        num_layers: int = 2,
        d_time: int = 4,
        dropout: float = 0.05,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.c_out = c_out
        self.rnn = GRU(enc_in + d_time, hidden_size, num_layers=num_layers, dropout=dropout, rng=rng)
        self.head = Linear(hidden_size, pred_len * c_out, rng=rng)

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        inputs = F.concat([x_enc, x_mark_enc], axis=-1)
        _, states = self.rnn(inputs)
        flat = self.head(states[-1])
        return flat.reshape(x_enc.shape[0], self.pred_len, self.c_out)


class LSTNet(ForecastModel):
    """Convolution over the input window + GRU + direct horizon head.

    The CNN extracts short-term local patterns across variables; the GRU
    models the long-term temporal dependency of the convolution features
    (Lai et al. 2018, highway/skip omitted per the paper's setup).
    """

    def __init__(
        self,
        enc_in: int,
        c_out: int,
        pred_len: int,
        conv_channels: int = 32,
        kernel_size: int = 5,
        hidden_size: int = 32,
        d_time: int = 4,
        dropout: float = 0.05,
        seed: int = 0,
        **_unused,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.c_out = c_out
        if kernel_size % 2 == 0:
            kernel_size += 1
        self.conv = Conv1d(enc_in + d_time, conv_channels, kernel_size=kernel_size, padding="same", rng=rng)
        self.activation = ReLU()
        self.dropout = Dropout(dropout)
        self.rnn = GRU(conv_channels, hidden_size, num_layers=1, rng=rng)
        self.head = Linear(hidden_size, pred_len * c_out, rng=rng)

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        inputs = F.concat([x_enc, x_mark_enc], axis=-1)
        features = self.dropout(self.activation(self.conv(inputs)))
        _, states = self.rnn(features)
        flat = self.head(states[-1])
        return flat.reshape(x_enc.shape[0], self.pred_len, self.c_out)
