"""Common forecaster protocol shared by Conformer and all baselines.

The trainer only relies on three methods:

- ``forward(x_enc, x_mark_enc, x_dec, y_mark_dec)`` -> model outputs
- ``compute_loss(outputs, target)`` -> scalar Tensor
- ``point_forecast(outputs)`` -> numpy array (B, pred_len, c_out)

Plain forecasters return a Tensor from ``forward``; Conformer returns a
``(y_out, z_out)`` tuple and overrides the two helpers accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module
from repro.tensor import Tensor, functional as F


class ForecastModel(Module):
    """Base class for single-head forecasters."""

    def compute_loss(self, outputs, target: Tensor) -> Tensor:
        return F.mse_loss(outputs, target)

    def point_forecast(self, outputs) -> np.ndarray:
        return outputs.data
