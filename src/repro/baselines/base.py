"""Common forecaster protocol shared by Conformer and all baselines.

The trainer only relies on three methods:

- ``forward(x_enc, x_mark_enc, x_dec, y_mark_dec)`` -> model outputs
- ``compute_loss(outputs, target)`` -> scalar Tensor
- ``point_forecast(outputs)`` -> numpy array (B, pred_len, c_out)

Plain forecasters return a Tensor from ``forward``; Conformer returns a
``(y_out, z_out)`` tuple and overrides the two helpers accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts.spec import shape_contract
from repro.nn import Module
from repro.tensor import Tensor, functional as F

#: The forecaster-protocol shape contract every baseline forward declares:
#: encoder window (B, L, D) + time marks (B, L, M), decoder window
#: (B, label_len+pred_len, D) + marks, horizon output (B, H, C).
#: Verified by ``repro.cli check`` (see docs/static-analysis.md).
FORECASTER_CONTRACT = dict(
    inputs={
        "x_enc": "B L D",
        "x_mark_enc": "B L M",
        "x_dec": "B Ldec D",
        "y_mark_dec": "B Ldec M",
    },
    output="B H C",
)


def forecaster_contract(fn):
    """Attach the shared forecaster-protocol contract to a forward method."""
    return shape_contract(**FORECASTER_CONTRACT)(fn)


class ForecastModel(Module):
    """Base class for single-head forecasters."""

    def compute_loss(self, outputs, target: Tensor) -> Tensor:
        return F.mse_loss(outputs, target)

    def point_forecast(self, outputs) -> np.ndarray:
        return outputs.data
