"""Autoformer baseline (Xu et al., NeurIPS 2021).

Faithful at the architecture level: series decomposition is an inner
block of both encoder and decoder, attention is the auto-correlation
mechanism, and the decoder accumulates trend components which are added
back to the seasonal forecast.  Per §V-A2, positional embedding is
omitted (value + timestamp only) and the sampling factor is 1.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ForecastModel, forecaster_contract
from repro.core.decomp import SeriesDecomposition
from repro.nn import (
    AutoCorrelation,
    Conv1d,
    DataEmbedding,
    Dropout,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
)
from repro.tensor import Tensor, functional as F
from repro.tensor.random import spawn_rng


class AutoformerEncoderLayer(Module):
    """attention -> decomp -> feed-forward -> decomp (seasonal retained)."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int, moving_avg: int, dropout: float, factor: int, rng=None):
        super().__init__()
        self.attention = MultiHeadAttention(
            d_model, n_heads, mechanism=AutoCorrelation(factor=factor, dropout=dropout), dropout=dropout, rng=rng
        )
        self.decomp1 = SeriesDecomposition(moving_avg)
        self.decomp2 = SeriesDecomposition(moving_avg)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        _, x = self.decomp1(x + self.dropout(self.attention(x)))
        _, x = self.decomp2(x + self.dropout(self.feed_forward(x)))
        return x


class AutoformerDecoderLayer(Module):
    """Decoder block accumulating the trend residuals of each decomposition."""

    def __init__(
        self, d_model: int, c_out: int, n_heads: int, d_ff: int, moving_avg: int, dropout: float, factor: int, rng=None
    ) -> None:
        super().__init__()
        self.self_attention = MultiHeadAttention(
            d_model, n_heads, mechanism=AutoCorrelation(factor=factor, dropout=dropout), dropout=dropout, rng=rng
        )
        self.cross_attention = MultiHeadAttention(
            d_model, n_heads, mechanism=AutoCorrelation(factor=factor, dropout=dropout), dropout=dropout, rng=rng
        )
        self.decomp1 = SeriesDecomposition(moving_avg)
        self.decomp2 = SeriesDecomposition(moving_avg)
        self.decomp3 = SeriesDecomposition(moving_avg)
        self.feed_forward = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)
        self.trend_proj = Conv1d(d_model, c_out, kernel_size=3, padding="same", bias=False, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, memory: Tensor):
        trend1, x = self.decomp1(x + self.dropout(self.self_attention(x)))
        trend2, x = self.decomp2(x + self.dropout(self.cross_attention(x, memory, memory)))
        trend3, x = self.decomp3(x + self.dropout(self.feed_forward(x)))
        residual_trend = self.trend_proj(trend1 + trend2 + trend3)
        return x, residual_trend


class Autoformer(ForecastModel):
    """Decomposition Transformer with auto-correlation."""

    def __init__(
        self,
        enc_in: int,
        dec_in: int,
        c_out: int,
        pred_len: int,
        label_len: int | None = None,
        d_model: int = 32,
        n_heads: int = 8,
        e_layers: int = 2,
        d_layers: int = 1,
        d_ff: int = 64,
        moving_avg: int = 25,
        dropout: float = 0.05,
        d_time: int = 4,
        factor: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = spawn_rng(seed)
        self.pred_len = pred_len
        self.label_len = label_len
        self.c_out = c_out
        self.decomp = SeriesDecomposition(moving_avg)
        # per §V-A2, Autoformer keeps value + timestamp embedding only
        self.enc_embedding = DataEmbedding(enc_in, d_model, d_time=d_time, dropout=dropout, use_position=False, rng=rng)
        self.dec_embedding = DataEmbedding(dec_in, d_model, d_time=d_time, dropout=dropout, use_position=False, rng=rng)
        self.encoder_layers = ModuleList(
            [AutoformerEncoderLayer(d_model, n_heads, d_ff, moving_avg, dropout, factor, rng=rng) for _ in range(e_layers)]
        )
        self.decoder_layers = ModuleList(
            [
                AutoformerDecoderLayer(d_model, c_out, n_heads, d_ff, moving_avg, dropout, factor, rng=rng)
                for _ in range(d_layers)
            ]
        )
        self.norm = LayerNorm(d_model)
        self.projection = Linear(d_model, c_out, rng=rng)

    @forecaster_contract
    def forward(self, x_enc: Tensor, x_mark_enc: Tensor, x_dec: Tensor, y_mark_dec: Tensor) -> Tensor:
        batch = x_enc.shape[0]
        label_len = x_dec.shape[1] - self.pred_len

        # decomposition-based decoder initialization (Autoformer Eq. 6-7):
        # seasonal_init = seasonal of the label window + zeros,
        # trend_init = trend of the label window + mean padding.
        trend_ctx, seasonal_ctx = self.decomp(x_enc)
        mean = x_enc.mean(axis=1, keepdims=True).broadcast_to((batch, self.pred_len, x_enc.shape[2]))
        zeros = Tensor(np.zeros((batch, self.pred_len, x_enc.shape[2])))
        seasonal_init = F.concat([seasonal_ctx[:, -label_len:, :], zeros], axis=1)
        trend_init = F.concat([trend_ctx[:, -label_len:, :], mean], axis=1)

        enc = self.enc_embedding(x_enc, x_mark_enc)
        for layer in self.encoder_layers:
            enc = layer(enc)
        enc = self.norm(enc)

        dec = self.dec_embedding(seasonal_init, y_mark_dec)
        trend = trend_init[:, :, : self.c_out]
        for layer in self.decoder_layers:
            dec, residual_trend = layer(dec, enc)
            trend = trend + residual_trend
        seasonal_out = self.projection(dec)
        out = seasonal_out + trend
        return out[:, -self.pred_len :, :]
