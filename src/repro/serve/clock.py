"""Injectable time source for the serving runtime.

Every serve component that reasons about time — the micro-batcher's
coalescing window, request deadlines, latency measurement — reads it
through a :class:`Clock` rather than calling :func:`time.monotonic`
directly.  Production uses :class:`MonotonicClock`; the deterministic
test suites use :class:`ManualClock` and *advance time explicitly*, so
timeout and batching-window behaviour is asserted without a single
wall-clock sleep (the concurrency suite's hard rule).

Clock values are monotonic seconds with an arbitrary epoch.  Deadlines
are absolute clock readings, never durations, so comparing against
``clock.now()`` is race-free under either implementation.
"""

from __future__ import annotations

import time


class Clock:
    """Time-source protocol: a monotonic ``now()`` in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock (:func:`time.monotonic`)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock(Clock):
    """A clock tests drive by hand; time moves only via :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        self._now += float(seconds)
        return self._now
