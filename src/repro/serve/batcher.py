"""Request micro-batching: coalesce concurrent forecasts into one forward.

The engine's batched forward runs essentially the same number of Python
ops for a batch of 16 as for a batch of 1 — per-request cost is dominated
by graph overhead, not arithmetic (BENCH_serving.json measures the
ratio).  The :class:`MicroBatcher` exploits that: concurrent requests
for the *same model geometry* queue up, and a worker takes them as one
batch when either

- the queue reaches ``max_batch`` (size trigger, fires immediately), or
- the oldest queued request has waited ``max_delay`` seconds (time
  trigger, bounds added latency for sparse traffic).

Deadlines are handled here too: a request whose absolute ``deadline``
passes while queued is popped *out* of the batch path and reported
expired, so one slow queue never wastes a forward on a caller that has
already given up.

The batcher is deliberately passive — every decision is a pure function
of (queue, ``now``) via :meth:`poll`, with the clock injected — so the
unit suite drives it deterministically with a :class:`ManualClock` and
zero sleeps.  :meth:`take` adds the blocking loop workers actually run
(condition-variable waits, *not* polling sleeps).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from concurrent.futures import Future

from repro.serve.clock import Clock

__all__ = ["ForecastResponse", "PendingRequest", "PolledWork", "MicroBatcher"]


@dataclass(frozen=True)
class ForecastResponse:
    """What every request resolves to — including failures; callers never
    see a raised exception, they see a ``status`` and an explanation."""

    series_id: str
    horizon: int
    status: str  # "ok" | "timeout" | "error"
    forecast: Optional[np.ndarray] = None
    model_version: Optional[str] = None
    batch_size: int = 0
    cached: bool = False
    degraded: bool = False
    latency: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class PendingRequest:
    """One queued request plus the future its caller is waiting on."""

    series_id: str
    horizon: int
    enqueued_at: float
    deadline: Optional[float] = None
    future: Future = field(default_factory=Future)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class PolledWork:
    """One :meth:`MicroBatcher.poll` decision."""

    expired: List[PendingRequest]
    batch: List[PendingRequest]
    #: seconds until the time trigger or next deadline could fire
    #: (None = queue empty, nothing to wait for)
    wait: Optional[float]


class MicroBatcher:
    """A coalescing request queue for one worker shard."""

    def __init__(self, clock: Clock, max_batch: int = 8, max_delay: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.clock = clock
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.batches_formed = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def add(self, pending: PendingRequest) -> bool:
        """Enqueue a request; False if the batcher is closed (caller must
        route elsewhere — e.g. the server's degraded path)."""
        with self._cond:
            if self._closed:
                return False
            self._queue.append(pending)
            self._cond.notify()
            return True

    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        """Stop accepting; blocked :meth:`take` calls drain then return None."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> List[PendingRequest]:
        """Pop everything still queued (degraded-mode rescue after close)."""
        with self._cond:
            held = list(self._queue)
            self._queue.clear()
            return held

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def poll(self, now: Optional[float] = None) -> PolledWork:
        """The batching decision at time ``now`` (pure given queue state).

        Expired requests are always popped.  A batch is returned when the
        size or time trigger has fired (at most ``max_batch`` requests,
        oldest first); otherwise ``wait`` says how long until the next
        trigger *could* fire.  A closed batcher flushes unconditionally.
        """
        now = self.clock.now() if now is None else now
        with self._cond:
            expired: List[PendingRequest] = []
            kept: deque = deque()
            while self._queue:
                pending = self._queue.popleft()
                (expired if pending.expired(now) else kept).append(pending)
            self._queue = kept

            batch: List[PendingRequest] = []
            wait: Optional[float] = None
            if self._queue:
                oldest_age = now - self._queue[0].enqueued_at
                if self._closed or len(self._queue) >= self.max_batch or oldest_age >= self.max_delay:
                    while self._queue and len(batch) < self.max_batch:
                        batch.append(self._queue.popleft())
                    self.batches_formed += 1
                    self.coalesced += len(batch)
                else:
                    wait = self.max_delay - oldest_age
                    deadlines = [p.deadline for p in self._queue if p.deadline is not None]
                    if deadlines:
                        wait = min(wait, max(0.0, min(deadlines) - now))
            return PolledWork(expired=expired, batch=batch, wait=wait)

    def take(self, poll_floor: float = 1e-4) -> Optional[PolledWork]:
        """Block until there is work; None once closed *and* empty.

        The wait is condition-variable based: a new :meth:`add` wakes the
        worker immediately, and the timeout is exactly the time until the
        batching window or a deadline can fire (floored so a ManualClock
        that never advances cannot spin the worker hot).
        """
        while True:
            # Condition's default lock is re-entrant, so poll() runs under
            # the same lock as the wait below — an add() between the two
            # cannot slip through unnoticed (no missed-wakeup window).
            with self._cond:
                work = self.poll()
                if work.expired or work.batch:
                    return work
                if self._closed and not self._queue:
                    return None
                if work.wait is not None:
                    self._cond.wait(timeout=max(poll_floor, work.wait))
                else:
                    self._cond.wait()  # empty queue: woken by add()/close()

    def stats(self) -> dict:
        with self._cond:
            depth = len(self._queue)
        mean = self.coalesced / self.batches_formed if self.batches_formed else 0.0
        return {
            "depth": depth,
            "batches_formed": self.batches_formed,
            "coalesced": self.coalesced,
            "mean_batch_size": mean,
        }
