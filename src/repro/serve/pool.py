"""Worker pool: shard-by-series batch execution with degraded fallback.

Each worker thread owns one :class:`~repro.serve.batcher.MicroBatcher`
shard; requests route to ``crc32(series_id) % n_workers``, so one
series' requests always coalesce in the same queue (and a hot series
cannot starve every shard).  The numpy engine itself is single-threaded
(forwards serialise on :data:`repro.serve.registry.ENGINE_LOCK`), so the
pool's parallelism covers everything *around* the forward: window
assembly, cache traffic, deadline bookkeeping, and response delivery
overlap with the kernel run of another shard.

Fault story (rehearsed, like :mod:`repro.ckpt.faults` — it shares that
exact injection machinery via the ``serve-batch`` point): a worker that
crashes mid-batch marks itself dead, *closes* its shard queue (so the
router stops feeding it, race-free: ``add`` on a closed batcher refuses),
and rescues every in-flight and queued request through the server's
unbatched degraded path before exiting.  No request is ever dropped or
answered twice; the pool reports ``workers_alive`` so operators see the
degradation.  Handler bugs that are not simulated crashes fail only the
requests in that batch (status ``error``) and leave the worker alive.
"""

from __future__ import annotations

import threading
import zlib
from typing import Callable, List

from repro.ckpt import faults as ckpt_faults
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.clock import Clock

__all__ = ["WorkerPool"]


class WorkerPool:
    """N worker threads, one micro-batcher shard each."""

    def __init__(
        self,
        n_workers: int,
        clock: Clock,
        handler: Callable[[List[PendingRequest]], None],
        rescue: Callable[..., None],  # (pending, error=None)
        expire: Callable[[PendingRequest], None],
        max_batch: int = 8,
        max_delay: float = 0.002,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.clock = clock
        self.handler = handler
        self.rescue = rescue
        self.expire = expire
        self.batchers = [
            MicroBatcher(clock, max_batch=max_batch, max_delay=max_delay) for _ in range(n_workers)
        ]
        self._alive = [True] * n_workers
        self._lock = threading.Lock()
        self.crashes = 0
        self.batch_errors = 0
        self._threads = [
            threading.Thread(target=self._run, args=(i,), name=f"serve-worker-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard(self, series_id: str) -> int:
        """Stable series -> worker assignment (crc32, not salted hash)."""
        return zlib.crc32(series_id.encode("utf-8")) % len(self.batchers)

    def submit(self, pending: PendingRequest) -> bool:
        """Route to the series' shard; False when that worker is dead or
        shutting down (the caller serves degraded instead)."""
        index = self.shard(pending.series_id)
        if not self._alive[index]:
            return False
        return self.batchers[index].add(pending)

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _run(self, index: int) -> None:
        batcher = self.batchers[index]
        while True:
            work = batcher.take()
            if work is None:  # closed and drained: graceful exit
                return
            for pending in work.expired:
                self.expire(pending)
            if not work.batch:
                continue
            try:
                ckpt_faults.check("serve-batch")
                self.handler(work.batch)
            except ckpt_faults.SimulatedCrash:
                # the worker "process" dies mid-flight: stop accepting
                # (closing the queue makes the router's submit refuse,
                # with no alive-check race), then rescue everything this
                # worker owned through the unbatched degraded path.
                self._alive[index] = False
                with self._lock:
                    self.crashes += 1
                batcher.close()
                for pending in work.batch + batcher.drain():
                    self.rescue(pending)
                return
            except Exception as exc:
                with self._lock:
                    self.batch_errors += 1
                for pending in work.batch:
                    self.rescue(pending, exc)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 10.0) -> None:
        """Graceful shutdown: drain every queue, then join the workers.

        Dead workers' shards are drained here too — anything a crashed
        worker could not rescue (it never runs again) goes through the
        degraded path now, so shutdown never strands a request.
        """
        for batcher in self.batchers:
            batcher.close()
        for thread in self._threads:
            thread.join(timeout=join_timeout)
        for batcher in self.batchers:
            for pending in batcher.drain():
                self.rescue(pending)

    def alive_count(self) -> int:
        return sum(1 for alive in self._alive if alive)

    def is_alive(self, index: int) -> bool:
        return self._alive[index]

    def depth(self) -> int:
        return sum(batcher.depth() for batcher in self.batchers)

    def stats(self) -> dict:
        return {
            "workers": len(self.batchers),
            "alive": self.alive_count(),
            "crashes": self.crashes,
            "batch_errors": self.batch_errors,
            "depth": self.depth(),
            "shards": [batcher.stats() for batcher in self.batchers],
        }
