"""The serving load benchmark: serial vs micro-batched vs cached.

Replays one synthetic request trace (round-robin over ``n_series``
series) through three server configurations:

- ``serial``  — batching and caching off: every request runs its own
  single-window forward inline (the naive serving loop);
- ``batched`` — the micro-batcher coalesces concurrent requests into
  batched forwards (cache still off, so every request really computes);
- ``cached``  — batching *and* the LRU forecast cache: repeat requests
  for a (series, horizon) hit without a forward.

Because the engine's per-forward cost is dominated by Python op-graph
overhead rather than arithmetic, a batch of ``max_batch`` costs barely
more than a batch of one — ``throughput_speedup`` (batched vs serial
requests/sec) measures exactly that ratio, and
``benchmarks/test_perf_regression.py`` asserts it stays ≥ 2x.

The result dict uses the shared bench envelope (``benchmark`` /
``machine`` / ``config`` + numeric leaves), so ``repro.cli serve-bench``
writes ``BENCH_serving.json`` and appends to the bench-history ledger
through the same code path as every other suite (see
:mod:`repro.perf.suites`), and ``bench diff`` gates ``p95_seconds``
regressions with no serving-specific logic.
"""

from __future__ import annotations

import platform
import sys
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from repro.serve.batcher import ForecastResponse
from repro.serve.registry import ModelRegistry, ServingSpec
from repro.serve.server import ForecastServer
from repro.serve.store import SeriesStore

BENCH_SERVING_FILENAME = "BENCH_serving.json"

#: the three request-path configurations compared, naive -> fast order
ARMS = ("serial", "batched", "cached")


def make_serving_fixture(
    n_series: int = 8,
    model: str = "gru",
    pred_len: int = 8,
    seed: int = 0,
    dtype=np.float32,
):
    """A loaded (registry, store, spec) triple on synthetic series.

    Shared by the benchmark and the concurrency test-suite so both
    exercise the same geometry: canonical settings, ``n_series``
    independent random-walk series, one published model version.
    """
    from repro.perf.bench import canonical_settings
    from repro.training import build_model

    settings = canonical_settings()
    n_dims = 2
    spec = ServingSpec(
        input_len=settings.input_len,
        label_len=settings.label_len,
        pred_len=pred_len,
        n_dims=n_dims,
    )

    def factory():
        return build_model(model, n_dims, n_dims, pred_len, settings, seed=seed)

    registry = ModelRegistry(factory, spec, dtype=dtype)
    registry.publish("v1", factory())
    store = SeriesStore(n_dims=n_dims)
    rng = np.random.default_rng(seed)
    for i in range(n_series):
        walk = np.cumsum(rng.normal(scale=0.1, size=(2 * spec.input_len, n_dims)), axis=0)
        store.ingest(f"series-{i}", walk)
    return registry, store, spec


def _drive(
    server: ForecastServer,
    series_ids: List[str],
    n_requests: int,
    warmup: int = 2,
) -> Dict[str, float]:
    """Replay the round-robin trace; wall-clock and latency percentiles.

    Requests are submitted as fast as the caller can enqueue them (the
    open-loop model a real frontend presents), then all futures are
    resolved; with batching on, that concurrency is what the batcher
    coalesces.
    """
    for i in range(warmup):
        server.forecast(series_ids[i % len(series_ids)])
    forwards_before = sum(v.forwards for v in (server.registry.get(n) for n in server.registry.versions()))
    start = perf_counter()
    futures = [server.submit(series_ids[i % len(series_ids)]) for i in range(n_requests)]
    responses: List[ForecastResponse] = [f.result() for f in futures]
    wall = perf_counter() - start
    forwards = sum(v.forwards for v in (server.registry.get(n) for n in server.registry.versions()))
    bad = [r for r in responses if not r.ok]
    if bad:
        raise RuntimeError(f"{len(bad)} of {n_requests} bench requests failed: {bad[0].error}")
    latencies = np.array([r.latency for r in responses])
    return {
        "requests": n_requests,
        "wall_seconds": wall,
        "requests_per_sec": n_requests / wall,
        "p50_seconds": float(np.percentile(latencies, 50)),
        "p95_seconds": float(np.percentile(latencies, 95)),
        "forwards": forwards - forwards_before,
        "batched_responses": sum(1 for r in responses if r.batch_size > 1),
        "cached_responses": sum(1 for r in responses if r.cached),
    }


def run_serving_benchmark(
    n_requests: int = 96,
    n_series: int = 8,
    n_workers: int = 2,
    max_batch: int = 8,
    max_delay: float = 0.005,
    model: str = "gru",
    seed: int = 0,
) -> dict:
    """The full serial/batched/cached comparison on one request trace."""
    registry, store, spec = make_serving_fixture(
        n_series=n_series, model=model, seed=seed
    )
    series_ids = store.series_ids()
    arms: Dict[str, Dict[str, float]] = {}
    arm_configs = {
        "serial": dict(batching=False, cache_enabled=False),
        "batched": dict(batching=True, cache_enabled=False),
        "cached": dict(batching=True, cache_enabled=True),
    }
    caches: Dict[str, Optional[dict]] = {}
    for arm in ARMS:
        server = ForecastServer(
            registry,
            store,
            n_workers=n_workers,
            max_batch=max_batch,
            max_delay=max_delay,
            **arm_configs[arm],
        )
        try:
            arms[arm] = _drive(server, series_ids, n_requests)
            arms[arm]["mean_batch_size"] = (
                server._batch_size.mean if server._batch_size.count else 1.0
            )
            caches[arm] = server.cache.stats() if arm_configs[arm]["cache_enabled"] else None
        finally:
            server.shutdown()
    result = {
        "benchmark": "forecast_serving",
        "description": "request-path throughput: serial vs micro-batched vs micro-batched+cache",
        "machine": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {
            "n_requests": n_requests,
            "n_series": n_series,
            "n_workers": n_workers,
            "max_batch": max_batch,
            "max_delay": max_delay,
            "model": model,
            "pred_len": spec.pred_len,
            "input_len": spec.input_len,
            "dtype": "float32",
            "seed": seed,
        },
        "arms": arms,
        "throughput_speedup": arms["batched"]["requests_per_sec"] / arms["serial"]["requests_per_sec"],
        "cached_speedup": arms["cached"]["requests_per_sec"] / arms["serial"]["requests_per_sec"],
        "cache": caches["cached"],
    }
    return result


def format_result(result: dict) -> str:
    """Human-readable summary of :func:`run_serving_benchmark` output."""
    lines = [result["benchmark"], "-" * len(result["benchmark"])]
    for arm in ARMS:
        row = result["arms"][arm]
        lines.append(
            f"  {arm:<8} {row['requests_per_sec']:8.1f} req/s  "
            f"p50 {row['p50_seconds'] * 1e3:7.2f} ms  p95 {row['p95_seconds'] * 1e3:7.2f} ms  "
            f"{row['forwards']:4d} forwards  mean batch {row['mean_batch_size']:.1f}"
        )
    cache = result.get("cache") or {}
    lines.append(
        f"  micro-batching speedup {result['throughput_speedup']:.2f}x, "
        f"with cache {result['cached_speedup']:.2f}x "
        f"(hit rate {cache.get('hit_rate', 0.0):.0%})"
    )
    return "\n".join(lines)
