"""In-memory series store: the data side of the serving runtime.

Forecast requests name a ``series_id`` and a horizon; the model needs the
Informer-style input tuple (``x_enc``, ``x_mark``, ``x_dec``, ``y_mark``)
built from that series' most recent window.  The store owns exactly that
translation:

- :meth:`ingest` appends new observations (the streaming write path —
  the server invalidates cached forecasts for the series on every call);
- :meth:`window` assembles one request's model inputs from the tail of
  the series, mirroring :class:`repro.data.windows.WindowedDataset`'s
  convention (last ``label_len`` known values + zero-padded placeholders
  in the decoder input).

Calendar marks are a pure function of the *absolute observation index*
(``mark_fn``), so future decoder marks are known in advance — the same
property real calendar features have — and a window assembled for a
batched forward is bit-identical to the one assembled for a lone request.
All methods are thread-safe: worker threads read windows while producer
threads ingest.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["cyclic_marks", "SeriesStore", "RequestWindow"]

#: default mark periods — hourly-data shaped (day, week, month-ish, season-ish)
_MARK_PERIODS = (24, 168, 720, 8760)


def cyclic_marks(d_time: int = 4, periods: Tuple[int, ...] = _MARK_PERIODS) -> Callable:
    """A ``mark_fn``: absolute indices -> (n, d_time) phase features.

    Feature ``j`` is the phase of index within ``periods[j]``, scaled to
    [-0.5, 0.5] — the same range :mod:`repro.data.timefeatures` produces.
    """
    if d_time > len(periods):
        raise ValueError(f"need {d_time} periods, got {len(periods)}")

    def mark_fn(indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.float64)[:, None]
        spans = np.asarray(periods[:d_time], dtype=np.float64)[None, :]
        return np.mod(idx, spans) / spans - 0.5

    return mark_fn


class RequestWindow:
    """One request's assembled model inputs (single sample, unbatched)."""

    __slots__ = ("x_enc", "x_mark", "x_dec", "y_mark")

    def __init__(self, x_enc, x_mark, x_dec, y_mark) -> None:
        self.x_enc = x_enc
        self.x_mark = x_mark
        self.x_dec = x_dec
        self.y_mark = y_mark


class SeriesStore:
    """Per-series observation history plus window assembly."""

    def __init__(self, n_dims: int, mark_fn: Optional[Callable] = None, d_time: int = 4) -> None:
        self.n_dims = int(n_dims)
        self.d_time = int(d_time)
        self.mark_fn = mark_fn if mark_fn is not None else cyclic_marks(d_time)
        self._values: Dict[str, np.ndarray] = {}
        self._lock = threading.RLock()
        self.ingested = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest(self, series_id: str, values: np.ndarray) -> int:
        """Append observations ``(n, n_dims)`` (or ``(n_dims,)`` for one
        step); returns the new series length."""
        block = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if block.shape[1] != self.n_dims:
            raise ValueError(f"expected {self.n_dims} dims, got {block.shape[1]}")
        with self._lock:
            held = self._values.get(series_id)
            self._values[series_id] = block.copy() if held is None else np.concatenate([held, block], axis=0)
            self.ingested += len(block)
            return len(self._values[series_id])

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def window(self, series_id: str, input_len: int, label_len: int, pred_len: int) -> RequestWindow:
        """Model inputs from the series tail (encoder window ends at T)."""
        with self._lock:
            values = self._values.get(series_id)
            if values is None:
                raise KeyError(f"unknown series {series_id!r}")
            if len(values) < input_len:
                raise ValueError(
                    f"series {series_id!r} has {len(values)} points; window needs {input_len}"
                )
            end = len(values)
            x_enc = values[end - input_len : end].copy()
            label = values[end - label_len : end].copy()
        enc_idx = np.arange(end - input_len, end)
        dec_idx = np.arange(end - label_len, end + pred_len)
        x_dec = np.concatenate([label, np.zeros((pred_len, self.n_dims))], axis=0)
        return RequestWindow(
            x_enc=x_enc,
            x_mark=self.mark_fn(enc_idx),
            x_dec=x_dec,
            y_mark=self.mark_fn(dec_idx),
        )

    def length(self, series_id: str) -> int:
        with self._lock:
            values = self._values.get(series_id)
            return 0 if values is None else len(values)

    def series_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._values)

    def __contains__(self, series_id: str) -> bool:
        with self._lock:
            return series_id in self._values

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
