"""Versioned model registry: checkpoint loading, pinning, atomic hot-swap.

A :class:`ModelVersion` is an immutable serving unit: a model restored
from a :mod:`repro.ckpt` checkpoint (or published directly), switched to
``eval()``, cast to the serving dtype, and only ever run through
:meth:`ModelVersion.forecast_batch` — which pins the engine's fast-path
configuration (:func:`repro.tensor.inference_mode` +
:func:`repro.tensor.compute_dtype`) around every forward.

Hot-swap protocol (see docs/serving.md): a new version is **built and
loaded cold** (`load(..., activate=False)`), optionally warmed with a
real forward to populate the plan cache, and then :meth:`activate`
flips one reference under the registry lock.  In-flight batches keep the
:class:`ModelVersion` they resolved at batch-assembly time, so a swap
never changes a forecast mid-forward; new requests atomically see the
new version.  Old versions stay addressable for rollback until
:meth:`retire`.

The autodiff engine's mode flags, scratch arena, and plan cache are
process-global and the numpy engine is single-threaded by design (see
:mod:`repro.tensor.arena`), so every forward in the process — batched
worker, degraded fallback, benchmark arm — serialises through one
:data:`ENGINE_LOCK`.  Workers still overlap window assembly, cache
traffic, and response delivery with the running forward; the lock only
covers kernel execution.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.analysis.dataflow import inference_entry
from repro.ckpt.manager import CheckpointManager
from repro.tensor import Tensor, compute_dtype, inference_mode

__all__ = ["ENGINE_LOCK", "ServingSpec", "ModelVersion", "ModelRegistry"]

#: process-wide forward serialisation (the engine's globals are shared)
ENGINE_LOCK = threading.RLock()


@dataclass(frozen=True)
class ServingSpec:
    """The request geometry every served model must satisfy."""

    input_len: int
    label_len: int
    pred_len: int
    n_dims: int
    d_time: int = 4


class ModelVersion:
    """One pinned, eval-mode, dtype-cast model plus its version name."""

    def __init__(self, version: str, model, spec: ServingSpec, dtype=np.float64) -> None:
        self.version = version
        self.model = model
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self.forwards = 0
        model.eval()
        if hasattr(model, "to_dtype"):
            model.to_dtype(self.dtype)
        # pin the flow's Monte-Carlo eps to zero where supported, so a
        # forecast is a deterministic function of (weights, window)
        self._deterministic = "deterministic" in inspect.signature(model.forward).parameters

    @inference_entry
    def forecast_batch(self, x_enc, x_mark, x_dec, y_mark, pad_to: Optional[int] = None) -> np.ndarray:
        """One batched point-forecast forward under the fast path.

        Inputs are stacked ``(B, ...)`` arrays; returns ``(B, pred_len,
        n_dims)``.  The engine lock serialises kernel execution; the
        inference-mode/compute-dtype contexts are entered inside it so
        the process-global flags are never toggled concurrently.

        ``pad_to`` pins the kernel batch shape: BLAS picks different
        gemm/gemv micro-kernels for different row counts, so a batch of
        one and a batch of eight can disagree in the last ulp.  Padding
        every forward to one canonical size (the server passes its
        ``max_batch``) makes a row's result a function of that row
        alone — the batched, degraded, and serial paths become
        *bit-identical*, which tests/test_properties.py asserts.
        """
        batch = x_enc.shape[0]
        if pad_to is not None and batch < pad_to:
            x_enc, x_mark, x_dec, y_mark = (
                np.concatenate([block, np.repeat(block[-1:], pad_to - batch, axis=0)], axis=0)
                for block in (x_enc, x_mark, x_dec, y_mark)
            )
        with ENGINE_LOCK:
            with compute_dtype(self.dtype), inference_mode():
                args = (Tensor(x_enc), Tensor(x_mark), Tensor(x_dec), Tensor(y_mark))
                if self._deterministic:
                    outputs = self.model(*args, deterministic=True)
                else:
                    outputs = self.model(*args)
                forecast = self.model.point_forecast(outputs)
            self.forwards += 1
        return np.asarray(forecast)[:batch]


class ModelRegistry:
    """Named model versions with one atomically-swappable *current*."""

    def __init__(self, factory: Callable[[], object], spec: ServingSpec, dtype=np.float64) -> None:
        self.factory = factory
        self.spec = spec
        self.dtype = np.dtype(dtype)
        self._versions: Dict[str, ModelVersion] = {}
        self._current: Optional[ModelVersion] = None
        self._lock = threading.RLock()
        self._listeners: List[Callable[[Optional[str], str], None]] = []
        self.swaps = 0

    # ------------------------------------------------------------------
    # loading / publishing
    # ------------------------------------------------------------------
    def publish(self, version: str, model, activate: bool = True) -> ModelVersion:
        """Register an already-built model under ``version``."""
        pinned = ModelVersion(version, model, self.spec, dtype=self.dtype)
        with self._lock:
            if version in self._versions:
                raise ValueError(f"version {version!r} already registered")
            self._versions[version] = pinned
        if activate:
            self.activate(version)
        return pinned

    def load(self, version: str, checkpoint_dir: Union[str, Path], activate: bool = True) -> ModelVersion:
        """Build a fresh model and restore it from the newest verified
        checkpoint in ``checkpoint_dir`` (corrupt files are skipped by
        the manager; no loadable checkpoint at all is an error)."""
        manager = CheckpointManager(Path(checkpoint_dir))
        loaded = manager.load_latest()
        if loaded is None:
            raise FileNotFoundError(f"no loadable checkpoint under {checkpoint_dir}")
        model = self.factory()
        model.load_state_dict(loaded.state["model"])
        return self.publish(version, model, activate=activate)

    # ------------------------------------------------------------------
    # swap / resolve
    # ------------------------------------------------------------------
    def activate(self, version: str) -> ModelVersion:
        """Atomically make ``version`` current; notifies swap listeners."""
        with self._lock:
            pinned = self._versions[version]
            previous = self._current
            self._current = pinned
            if previous is not pinned:
                self.swaps += 1
            listeners = list(self._listeners)
        old_name = previous.version if previous is not None and previous is not pinned else None
        if previous is not pinned:
            for listener in listeners:
                listener(old_name, version)
        return pinned

    def on_swap(self, listener: Callable[[Optional[str], str], None]) -> None:
        """Register ``listener(old_version_or_None, new_version)``."""
        with self._lock:
            self._listeners.append(listener)

    def current(self) -> ModelVersion:
        with self._lock:
            if self._current is None:
                raise RuntimeError("registry has no active model version")
            return self._current

    def get(self, version: str) -> ModelVersion:
        with self._lock:
            return self._versions[version]

    def retire(self, version: str) -> None:
        """Drop a non-current version (frees its weights)."""
        with self._lock:
            if self._current is not None and self._current.version == version:
                raise ValueError(f"cannot retire the active version {version!r}")
            del self._versions[version]

    def versions(self) -> List[str]:
        with self._lock:
            return sorted(self._versions)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            current = self._current.version if self._current is not None else None
            return {
                "versions": sorted(self._versions),
                "current": current,
                "swaps": self.swaps,
                "forwards": {name: v.forwards for name, v in sorted(self._versions.items())},
            }
