"""repro.serve — the forecast-serving runtime.

Turns the repository's trained forecasters into a concurrent service
(docs/serving.md has the full architecture):

- :class:`~repro.serve.registry.ModelRegistry` — versioned models loaded
  from :mod:`repro.ckpt` checkpoints, pinned in the tape-free fast path
  (``inference_mode`` + ``compute_dtype``), hot-swapped atomically;
- :class:`~repro.serve.batcher.MicroBatcher` — coalesces concurrent
  per-series requests within a size/time window into one batched
  forward, with per-request deadline handling;
- :class:`~repro.serve.cache.ForecastCache` — an LRU keyed on
  ``(model_version, series_id, horizon)``, invalidated on ingestion and
  hot-swap;
- :class:`~repro.serve.pool.WorkerPool` — shard-by-series worker
  threads with graceful shutdown and a degraded unbatched fallback when
  a worker dies (fault-injectable via the ``serve-batch`` point);
- :class:`~repro.serve.server.ForecastServer` — the composition root
  tying them together, with p50/p95 latency, queue-depth, batch-size,
  and cache-hit-rate telemetry through :mod:`repro.obs`.

Benchmark it with ``python -m repro.cli serve-bench`` (serial vs
micro-batched vs cached arms → ``BENCH_serving.json`` + bench-history
ledger record).
"""

from repro.serve.batcher import ForecastResponse, MicroBatcher, PendingRequest, PolledWork
from repro.serve.cache import ForecastCache
from repro.serve.clock import Clock, ManualClock, MonotonicClock
from repro.serve.pool import WorkerPool
from repro.serve.registry import ENGINE_LOCK, ModelRegistry, ModelVersion, ServingSpec
from repro.serve.server import ForecastServer
from repro.serve.store import RequestWindow, SeriesStore, cyclic_marks

__all__ = [
    "ENGINE_LOCK",
    "Clock",
    "ForecastCache",
    "ForecastResponse",
    "ForecastServer",
    "ManualClock",
    "MicroBatcher",
    "ModelRegistry",
    "ModelVersion",
    "MonotonicClock",
    "PendingRequest",
    "PolledWork",
    "RequestWindow",
    "SeriesStore",
    "ServingSpec",
    "WorkerPool",
    "cyclic_marks",
]
