"""The forecast-serving front-end: cache, batcher, pool, telemetry.

:class:`ForecastServer` is the composition root of :mod:`repro.serve`
(architecture in docs/serving.md):

1. :meth:`submit` checks the LRU forecast cache; a hit resolves the
   future immediately (``cached=True``) without touching a queue.
2. A miss routes to the series' worker shard, where the micro-batcher
   coalesces it with concurrent requests into one batched forward
   through the active :class:`~repro.serve.registry.ModelVersion`.
3. If batching is disabled, the shard's worker has died, or the pool is
   shutting down, the request is served inline on the calling thread —
   the **degraded path**: same model, same answer, batch of one.

Every response is a :class:`~repro.serve.batcher.ForecastResponse`
(``status`` ok/timeout/error) — callers never catch exceptions off the
future.  SLO telemetry flows through a :class:`repro.obs.MetricRegistry`
(``serve.latency_seconds`` / ``serve.batch_size`` histograms with
p50/p95, ``serve.queue_depth`` / ``serve.workers_alive`` /
``serve.cache_hit_rate`` gauges) and, when a
:class:`~repro.obs.RunLogger` is attached, as gauges/events in the run
log — ``obs report`` renders a serving run like any training run.

Consistency contract: a forecast is a pure function of (model version,
series history, horizon).  Ingestion invalidates the series' cache
entries; hot-swap invalidates the outgoing version's.  Batched and
unbatched paths produce element-wise identical forecasts
(tests/test_properties.py), so a degraded server is slower, never wrong.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Optional, Union

import numpy as np

from repro.analysis.dataflow import inference_entry
from repro.obs import MetricRegistry, RunLogger
from repro.serve.batcher import ForecastResponse, PendingRequest
from repro.serve.cache import ForecastCache
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.pool import WorkerPool
from repro.serve.registry import ModelRegistry, ModelVersion
from repro.serve.store import SeriesStore

__all__ = ["ForecastServer"]


class ForecastServer:
    """Concurrent forecast serving over a model registry and series store."""

    def __init__(
        self,
        registry: ModelRegistry,
        store: SeriesStore,
        n_workers: int = 2,
        max_batch: int = 8,
        max_delay: float = 0.002,
        cache_capacity: int = 1024,
        cache_enabled: bool = True,
        batching: bool = True,
        clock: Optional[Clock] = None,
        logger: Optional[RunLogger] = None,
    ) -> None:
        if registry.spec.n_dims != store.n_dims:
            raise ValueError(
                f"registry serves {registry.spec.n_dims}-dim series, store holds {store.n_dims}"
            )
        self.registry = registry
        self.store = store
        #: canonical kernel batch shape — every forward (batched, degraded,
        #: warm-up) pads to this, so all request paths are bit-identical
        self.max_batch = max_batch
        self.clock = clock if clock is not None else MonotonicClock()
        self.cache = ForecastCache(cache_capacity)
        self.cache_enabled = cache_enabled
        self.logger = logger if logger is not None else RunLogger.null()
        self.metrics = MetricRegistry()
        # latency percentiles over a wide window so a bench run's p95
        # reflects the whole run, not the last few hundred requests
        self._latency = self.metrics.histogram("serve.latency_seconds", window=4096)
        self._batch_size = self.metrics.histogram("serve.batch_size", window=4096)
        self._closed = False
        self._lock = threading.Lock()
        self.requests = 0
        self.degraded_requests = 0
        self.timeouts = 0
        self.errors = 0
        registry.on_swap(self._on_swap)
        self.pool: Optional[WorkerPool] = None
        if batching:
            self.pool = WorkerPool(
                n_workers,
                self.clock,
                handler=self._process_batch,
                rescue=self._serve_degraded,
                expire=self._expire,
                max_batch=max_batch,
                max_delay=max_delay,
            )

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    @inference_entry
    def submit(
        self,
        series_id: str,
        horizon: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> "Future[ForecastResponse]":
        """Enqueue one forecast request; returns a resolvable future.

        ``horizon`` defaults to (and is capped by) the model's
        ``pred_len``; ``timeout`` seconds (clock-relative) becomes an
        absolute deadline — a request that cannot be answered in time
        resolves with ``status="timeout"`` instead of blocking forever.
        """
        now = self.clock.now()
        spec = self.registry.spec
        horizon = spec.pred_len if horizon is None else int(horizon)
        pending = PendingRequest(
            series_id=series_id,
            horizon=horizon,
            enqueued_at=now,
            deadline=None if timeout is None else now + timeout,
        )
        with self._lock:
            self.requests += 1
        if self._closed:
            self._resolve_error(pending, "server is shut down")
            return pending.future
        if horizon < 1 or horizon > spec.pred_len:
            self._resolve_error(pending, f"horizon must be in [1, {spec.pred_len}], got {horizon}")
            return pending.future
        if self.cache_enabled:
            version = self.registry.current()
            hit = self.cache.get(version.version, series_id, horizon)
            if hit is not None:
                pending.future.set_result(
                    ForecastResponse(
                        series_id=series_id,
                        horizon=horizon,
                        status="ok",
                        forecast=hit,
                        model_version=version.version,
                        cached=True,
                        latency=self.clock.now() - now,
                    )
                )
                return pending.future
        if self.pool is not None and self.pool.submit(pending):
            self.metrics.gauge("serve.queue_depth").set(self.pool.depth())
            return pending.future
        self._serve_degraded(pending)
        return pending.future

    def forecast(
        self,
        series_id: str,
        horizon: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> ForecastResponse:
        """Blocking :meth:`submit` (the one-caller convenience path)."""
        return self.submit(series_id, horizon=horizon, timeout=timeout).result()

    # ------------------------------------------------------------------
    # batch execution (worker threads)
    # ------------------------------------------------------------------
    def _process_batch(self, batch) -> None:
        """Serve one coalesced batch with a single forward."""
        now = self.clock.now()
        version = self.registry.current()
        live = []
        windows = []
        for pending in batch:
            if pending.expired(now):
                self._expire(pending)
                continue
            window = self._assemble(pending)
            if window is not None:
                live.append(pending)
                windows.append(window)
        if not live:
            return
        spec = self.registry.spec
        forecasts = version.forecast_batch(
            np.stack([w.x_enc for w in windows]),
            np.stack([w.x_mark for w in windows]),
            np.stack([w.x_dec for w in windows]),
            np.stack([w.y_mark for w in windows]),
            pad_to=self.max_batch,
        )
        self._batch_size.observe(len(live))
        done = self.clock.now()
        for pending, forecast in zip(live, forecasts):
            self._deliver(pending, forecast, version, batch_size=len(live), done=done)
        if self.pool is not None:
            self.metrics.gauge("serve.queue_depth").set(self.pool.depth())

    def _serve_degraded(self, pending: PendingRequest, error: Optional[Exception] = None) -> None:
        """Unbatched fallback: same forward, batch of one, calling thread.

        Used when batching is off, a worker died (rescue), or shutdown
        drains a queue.  ``error`` carries a handler exception from a
        failed batch — after one retry-as-degraded fails again, the
        request resolves with that error instead of looping.
        """
        with self._lock:
            self.degraded_requests += 1
        if pending.expired(self.clock.now()):
            self._expire(pending)
            return
        window = self._assemble(pending)
        if window is None:
            return
        version = self.registry.current()
        try:
            forecast = version.forecast_batch(
                window.x_enc[None], window.x_mark[None], window.x_dec[None], window.y_mark[None],
                pad_to=self.max_batch,
            )[0]
        except Exception as exc:
            self._resolve_error(pending, f"degraded forward failed: {exc}" if error is None else str(error))
            return
        self._batch_size.observe(1)
        self._deliver(pending, forecast, version, batch_size=1, done=self.clock.now(), degraded=True)

    # ------------------------------------------------------------------
    # request resolution helpers
    # ------------------------------------------------------------------
    def _assemble(self, pending: PendingRequest):
        """The request's model-input window, or None after resolving the
        future with an error (unknown series, too-short history)."""
        spec = self.registry.spec
        try:
            return self.store.window(pending.series_id, spec.input_len, spec.label_len, spec.pred_len)
        except (KeyError, ValueError) as exc:
            self._resolve_error(pending, str(exc))
            return None

    def _deliver(
        self,
        pending: PendingRequest,
        forecast: np.ndarray,
        version: ModelVersion,
        batch_size: int,
        done: float,
        degraded: bool = False,
    ) -> None:
        sliced = forecast[: pending.horizon]
        if self.cache_enabled:
            sliced = self.cache.put(version.version, pending.series_id, pending.horizon, sliced)
        else:
            sliced = np.array(sliced, copy=True)
        latency = done - pending.enqueued_at
        self._latency.observe(latency)
        pending.future.set_result(
            ForecastResponse(
                series_id=pending.series_id,
                horizon=pending.horizon,
                status="ok",
                forecast=sliced,
                model_version=version.version,
                batch_size=batch_size,
                degraded=degraded,
                latency=latency,
            )
        )

    def _expire(self, pending: PendingRequest) -> None:
        with self._lock:
            self.timeouts += 1
        self.logger.anomaly("serve_timeout", series_id=pending.series_id, horizon=pending.horizon)
        pending.future.set_result(
            ForecastResponse(
                series_id=pending.series_id,
                horizon=pending.horizon,
                status="timeout",
                latency=self.clock.now() - pending.enqueued_at,
                error="deadline exceeded",
            )
        )

    def _resolve_error(self, pending: PendingRequest, message: str) -> None:
        with self._lock:
            self.errors += 1
        pending.future.set_result(
            ForecastResponse(
                series_id=pending.series_id,
                horizon=pending.horizon,
                status="error",
                latency=self.clock.now() - pending.enqueued_at,
                error=message,
            )
        )

    # ------------------------------------------------------------------
    # data + model lifecycle
    # ------------------------------------------------------------------
    def ingest(self, series_id: str, values: np.ndarray) -> int:
        """Append observations and invalidate the series' cached forecasts."""
        length = self.store.ingest(series_id, values)
        dropped = self.cache.invalidate_series(series_id)
        if dropped:
            self.metrics.counter("serve.cache_invalidations").inc(dropped)
        return length

    def hot_swap(
        self,
        version: str,
        checkpoint_dir: Union[str, None] = None,
        model=None,
        warm: bool = True,
    ) -> ModelVersion:
        """Load/publish ``version`` cold, warm it, then swap atomically.

        The new model is fully built, checkpoint-restored, dtype-cast,
        and (by default) warmed with one real forward — populating the
        plan cache for the serving geometry — *before* the registry's
        current pointer flips.  In-flight batches finish on the version
        they resolved; the swap listener invalidates the old version's
        cache entries.
        """
        if (checkpoint_dir is None) == (model is None):
            raise ValueError("pass exactly one of checkpoint_dir or model")
        if model is not None:
            pinned = self.registry.publish(version, model, activate=False)
        else:
            pinned = self.registry.load(version, checkpoint_dir, activate=False)
        if warm:
            self._warm(pinned)
        self.registry.activate(version)
        return pinned

    def _warm(self, pinned: ModelVersion) -> None:
        series = self.store.series_ids()
        spec = self.registry.spec
        for series_id in series:
            if self.store.length(series_id) >= spec.input_len:
                window = self.store.window(series_id, spec.input_len, spec.label_len, spec.pred_len)
                pinned.forecast_batch(
                    window.x_enc[None], window.x_mark[None], window.x_dec[None], window.y_mark[None],
                    pad_to=self.max_batch,
                )
                return

    def _on_swap(self, old_version: Optional[str], new_version: str) -> None:
        dropped = 0
        if old_version is not None:
            dropped = self.cache.invalidate_version(old_version)
            if dropped:
                self.metrics.counter("serve.cache_invalidations").inc(dropped)
        self.logger.event(
            "model_swapped", old=old_version, new=new_version, invalidated=dropped
        )

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Graceful: refuse new work, drain every queue, join workers."""
        self._closed = True
        if self.pool is not None:
            self.pool.close()
        self._record_gauges()

    def __enter__(self) -> "ForecastServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _record_gauges(self) -> None:
        self.metrics.gauge("serve.cache_hit_rate").set(self.cache.hit_rate())
        if self.pool is not None:
            self.metrics.gauge("serve.workers_alive").set(self.pool.alive_count())
            self.metrics.gauge("serve.queue_depth").set(self.pool.depth())
        for name, value in (
            ("serve.requests", self.requests),
            ("serve.degraded", self.degraded_requests),
            ("serve.timeouts", self.timeouts),
            ("serve.errors", self.errors),
        ):
            self.logger.gauge(name, value)

    def stats(self) -> Dict[str, object]:
        """One JSON-able snapshot of every serving-side counter and SLO."""
        self._record_gauges()
        latency = self._latency
        return {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "latency": {
                "count": latency.count,
                "p50": latency.quantile(0.5),
                "p95": latency.quantile(0.95),
                "mean": latency.mean if latency.count else None,
            },
            "batch_size": {
                "count": self._batch_size.count,
                "mean": self._batch_size.mean if self._batch_size.count else None,
                "max": self._batch_size.max,
            },
            "cache": self.cache.stats(),
            "pool": self.pool.stats() if self.pool is not None else None,
            "registry": self.registry.stats(),
        }
