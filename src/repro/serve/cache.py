"""LRU forecast cache keyed by (model_version, series_id, horizon).

A forecast is a pure function of (model weights, series history, horizon)
— so a cached entry is valid exactly until one of those changes.  The two
invalidation events are therefore explicit API, not TTL guesswork:

- :meth:`invalidate_series` — new observations arrived for a series
  (:meth:`ForecastServer.ingest`), every horizon for that series is stale;
- :meth:`invalidate_version` — a model version was hot-swapped out, its
  entries can never be served again and are dropped eagerly rather than
  left to age out of the LRU ring.

Cached arrays are frozen read-only (the plan-cache convention from
:mod:`repro.tensor.cache`): a hit hands back a *shared* array, and an
accidental in-place write downstream must raise instead of corrupting
every later hit.  All methods are thread-safe — cache lookups happen on
submitting threads while worker threads fill entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

#: (model_version, series_id, horizon)
CacheKey = Tuple[str, str, int]


class ForecastCache:
    """Bounded thread-safe LRU of frozen forecast arrays."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, version: str, series_id: str, horizon: int) -> Optional[np.ndarray]:
        """The cached forecast, refreshed to most-recently-used, or None."""
        key = (version, series_id, int(horizon))
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, version: str, series_id: str, horizon: int, forecast: np.ndarray) -> np.ndarray:
        """Insert (a frozen copy of) a forecast; evicts LRU past capacity.

        Returns the stored read-only array so callers can hand out the
        same shared object a later :meth:`get` would.
        """
        frozen = np.array(forecast, copy=True)
        frozen.setflags(write=False)
        key = (version, series_id, int(horizon))
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = frozen
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return frozen

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_series(self, series_id: str) -> int:
        """Drop every horizon/version entry for one series (ingestion)."""
        return self._invalidate(lambda key: key[1] == series_id)

    def invalidate_version(self, version: str) -> int:
        """Drop every entry served by one model version (hot-swap)."""
        return self._invalidate(lambda key: key[0] == version)

    def clear(self) -> int:
        return self._invalidate(lambda key: True)

    def _invalidate(self, doomed) -> int:
        with self._lock:
            keys = [key for key in self._entries if doomed(key)]
            for key in keys:
                del self._entries[key]
            self.invalidations += len(keys)
            return len(keys)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
        }
