"""Finding reporters: text for humans, JSON for CI, SARIF for code hosts.

Text format is the classic greppable ``path:line:col: rule-id message``
(one finding per line, sorted, summary last).  JSON carries the same
findings plus per-rule counts under a versioned envelope so downstream
tooling can evolve without sniffing.  SARIF 2.1.0 is the interchange
format GitHub/Azure code scanning ingests — ``lint --format sarif`` lets
CI annotate PR diffs with lint and dataflow findings directly.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.analysis.lint import Finding

JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def render_text(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    lines: List[str] = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def report_as_dict(findings: Sequence[Finding], files_scanned: int = 0) -> Dict:
    counts = Counter(f.rule_id for f in findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in findings
        ],
    }


def render_json(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    return json.dumps(report_as_dict(findings, files_scanned), indent=2)


def sarif_as_dict(findings: Sequence[Finding], files_scanned: int = 0) -> Dict:
    """SARIF 2.1.0 log for ``findings`` — one run, driver ``repro-lint``.

    Rule metadata comes from the registry when the rule is known there
    (descriptions feed the code-scanning UI); rules only present in the
    findings (e.g. from a custom pass) still get a bare descriptor so the
    ``ruleId`` references stay resolvable.
    """
    from repro.analysis.rules import all_rules

    registry = all_rules()
    fired = sorted({f.rule_id for f in findings})
    descriptors = []
    for rule_id in fired:
        descriptor: Dict = {"id": rule_id}
        rule = registry.get(rule_id)
        if rule is not None and rule.description:
            descriptor["shortDescription"] = {"text": rule.description}
        descriptors.append(descriptor)
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; Finding.col is an
                            # AST col_offset (0-based)
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": descriptors,
                    }
                },
                "results": results,
                "properties": {"files_scanned": files_scanned},
            }
        ],
    }


def render_sarif(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    return json.dumps(sarif_as_dict(findings, files_scanned), indent=2)


# ----------------------------------------------------------------------
# `repro.cli check` — contract-checker reports
# ----------------------------------------------------------------------
def render_check_text(report) -> str:
    """Text report for a :class:`~repro.analysis.contracts.CheckReport`.

    Finding lines reuse the lint ``path:line:col: rule-id message`` shape
    (path is ``model:module.path``), so the same greps work on both.
    """
    lines: List[str] = [f.render() for f in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} in {len(report.models)} models "
        f"({report.traces} traces, {report.ops_traced} ops)"
    )
    return "\n".join(lines)


def check_report_as_dict(report) -> Dict:
    """Versioned JSON envelope for ``repro.cli check --format json``."""
    counts = Counter(f.rule_id for f in report.findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "models": list(report.models),
        "traces": report.traces,
        "ops_traced": report.ops_traced,
        "total": len(report.findings),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in report.findings
        ],
        "cells": [
            {
                "model": cell.model,
                "mode": cell.mode,
                "geometry": cell.geometry,
                "batch": cell.batch,
                "violations": len(cell.violations),
                "output": cell.output,
            }
            for cell in report.cells
        ],
    }


def render_check_json(report) -> str:
    return json.dumps(check_report_as_dict(report), indent=2)
