"""Finding reporters: text for humans, JSON for CI.

Text format is the classic greppable ``path:line:col: rule-id message``
(one finding per line, sorted, summary last).  JSON carries the same
findings plus per-rule counts under a versioned envelope so downstream
tooling can evolve without sniffing.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.analysis.lint import Finding

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    lines: List[str] = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def report_as_dict(findings: Sequence[Finding], files_scanned: int = 0) -> Dict:
    counts = Counter(f.rule_id for f in findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in findings
        ],
    }


def render_json(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    return json.dumps(report_as_dict(findings, files_scanned), indent=2)
