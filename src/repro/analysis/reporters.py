"""Finding reporters: text for humans, JSON for CI.

Text format is the classic greppable ``path:line:col: rule-id message``
(one finding per line, sorted, summary last).  JSON carries the same
findings plus per-rule counts under a versioned envelope so downstream
tooling can evolve without sniffing.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.analysis.lint import Finding

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    lines: List[str] = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def report_as_dict(findings: Sequence[Finding], files_scanned: int = 0) -> Dict:
    counts = Counter(f.rule_id for f in findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "total": len(findings),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in findings
        ],
    }


def render_json(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    return json.dumps(report_as_dict(findings, files_scanned), indent=2)


# ----------------------------------------------------------------------
# `repro.cli check` — contract-checker reports
# ----------------------------------------------------------------------
def render_check_text(report) -> str:
    """Text report for a :class:`~repro.analysis.contracts.CheckReport`.

    Finding lines reuse the lint ``path:line:col: rule-id message`` shape
    (path is ``model:module.path``), so the same greps work on both.
    """
    lines: List[str] = [f.render() for f in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"{len(report.findings)} {noun} in {len(report.models)} models "
        f"({report.traces} traces, {report.ops_traced} ops)"
    )
    return "\n".join(lines)


def check_report_as_dict(report) -> Dict:
    """Versioned JSON envelope for ``repro.cli check --format json``."""
    counts = Counter(f.rule_id for f in report.findings)
    return {
        "version": JSON_SCHEMA_VERSION,
        "models": list(report.models),
        "traces": report.traces,
        "ops_traced": report.ops_traced,
        "total": len(report.findings),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule_id": f.rule_id,
                "message": f.message,
            }
            for f in report.findings
        ],
        "cells": [
            {
                "model": cell.model,
                "mode": cell.mode,
                "geometry": cell.geometry,
                "batch": cell.batch,
                "violations": len(cell.violations),
                "output": cell.output,
            }
            for cell in report.cells
        ],
    }


def render_check_json(report) -> str:
    return json.dumps(check_report_as_dict(report), indent=2)
