"""Interprocedural dataflow lint: call graph, escape analysis, purity.

The per-file AST rules (:mod:`repro.analysis.rules`) see one function at
a time; the hazards the inference fast path introduced are *paths*: an
arena buffer checked out in one function and returned to another, or an
``np.random`` draw buried three calls below a ``predict`` entry point.
This module adds the whole-program half of the safety story, sharing the
runtime ownership sanitizer's vocabulary (:mod:`repro.analysis.alias`):

- :func:`build_call_graph` — a best-effort static call graph over every
  function and method in the scanned tree.  Bare calls resolve through
  module scope and project imports, ``self.f()`` through the enclosing
  class (then project-unique method names), ``mod.f()`` through imported
  project modules.  Unresolvable call sites (foreign libraries, dynamic
  dispatch through untyped attributes) are dropped rather than guessed —
  the pass under-approximates reachability and never invents an edge.
- **Escape analysis** (``dataflow-arena-escape``) — taint-tracks every
  :meth:`BufferArena.get` checkout through local aliases, views, and
  subscripts, and reports any buffer that outlives its scope: returned,
  yielded, stored on ``self`` or a global, or smuggled out inside a
  ``Tensor``/container.  Arena scratch must die inside its kernel; the
  next checkout recycles the slot and corrupts whatever escaped.
- **Purity analysis** (``dataflow-impure-predict``) — computes the
  transitive call closure of every ``predict*`` / ``evaluate*`` entry
  point and reports global-RNG draws, ``backward()`` tape walks, and
  module-state writes reachable from it.  A serving path that mutates
  shared state works in a single-request test and corrupts forecasts the
  moment two requests share the model (ROADMAP: ``repro.serve``).

Findings reuse the lint :class:`~repro.analysis.lint.Finding` envelope
(so text/JSON/SARIF reporters and exit codes work unchanged), honour
inline ``# repro: noqa[rule-id]`` suppressions at the reported line, and
respect per-rule path allowlists from :class:`LintConfig`.  Run via
``python -m repro.cli lint --dataflow`` or :func:`dataflow_paths`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.lint import (
    Finding,
    LintConfig,
    _parse_file,
    default_config,
    iter_python_files,
    package_relative,
)

RULE_ARENA_ESCAPE = "dataflow-arena-escape"
RULE_IMPURE_PREDICT = "dataflow-impure-predict"

#: function-name prefixes that mark an inference-pure entry point
ENTRY_PREFIXES = ("predict", "evaluate")

#: decorator names that mark an inference-pure entry point explicitly —
#: the serving request path (``ForecastServer.submit`` and friends) is
#: not *named* ``predict*`` but must satisfy the same purity contract.
#: Decorator-marked entries are checked for global-RNG draws and
#: ``backward()`` tape walks; unlike name-matched entries they may write
#: their own bookkeeping state (queues, caches, counters) — serving
#: machinery is stateful by design, the *numeric* path must stay pure.
ENTRY_DECORATORS = frozenset({"inference_entry"})

#: purity facets (see :func:`analyze_purity`)
_ALL_FACETS = frozenset({"rng", "backward", "state"})
_NUMERIC_FACETS = frozenset({"rng", "backward"})

#: callee names the purity walk does not descend into: train()/eval()
#: toggle the (caller-restored) training flag by design, and __init__ runs
#: once at construction, not per request
PURE_BOUNDARY_METHODS = frozenset({"train", "eval", "__init__", "__post_init__"})

#: np.random attributes that are constructors/types, not global-state draws
#: (mirrors rules.NoGlobalRNG)
_RNG_ALLOWED = frozenset(
    {"Generator", "BitGenerator", "SeedSequence", "default_rng", "PCG64", "Philox", "MT19937"}
)

#: ndarray methods returning a view of the receiver — taint flows through
_VIEW_METHODS = frozenset({"reshape", "transpose", "swapaxes", "squeeze", "ravel", "view", "astype"})

#: constructors that wrap (alias) an array rather than copying it
_WRAPPERS = frozenset({"Tensor", "ensure_tensor", "asarray", "ascontiguousarray"})

#: method names owned by builtin containers/strings/files/ndarrays — the
#: unique-name fallback must not resolve these to a project function that
#: happens to share the name (``payload.update(...)`` is dict.update, not
#: EarlyStopping.update), or the purity walk invents reachability
_BUILTIN_METHODS = frozenset({
    "update", "get", "items", "keys", "values", "append", "extend", "insert",
    "pop", "popitem", "clear", "copy", "setdefault", "add", "remove",
    "discard", "sort", "reverse", "count", "index", "join", "split", "strip",
    "lstrip", "rstrip", "format", "startswith", "endswith", "replace",
    "encode", "decode", "read", "write", "close", "flush", "readline",
    "open", "put", "sum", "mean", "std", "max", "min", "all", "any",
    "astype", "reshape", "tolist", "item", "fill", "seek",
})


# ----------------------------------------------------------------------
# per-function facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``kind`` is how the callee was spelled: ``bare`` (``f()``), ``self``
    (``self.f()`` / ``cls.f()``), ``attr`` (``mod.f()`` — ``base`` holds
    the receiver name), or ``method`` (``obj.attr.f()`` — receiver type
    unknown, resolved only by a project-unique name).
    """

    kind: str
    name: str
    base: Optional[str]
    lineno: int


@dataclass
class FunctionInfo:
    """Everything the dataflow passes know about one function/method."""

    module: str
    class_name: Optional[str]
    name: str
    path: str
    rel_path: str
    lineno: int
    col: int
    decorators: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)
    #: (lineno, col, "np.random.<fn>") global-RNG draws in this body
    rng_calls: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (lineno, col) ``*.backward(...)`` calls in this body
    backward_calls: List[Tuple[int, int]] = field(default_factory=list)
    #: (lineno, col, attr) writes to ``self.<attr>`` in this body
    state_writes: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        owner = f"{self.class_name}." if self.class_name else ""
        return f"{self.module}.{owner}{self.name}"

    @property
    def key(self) -> Tuple[str, Optional[str], str]:
        return (self.module, self.class_name, self.name)

    def is_entry(self) -> bool:
        return (
            self.name.lstrip("_").startswith(ENTRY_PREFIXES)
            or bool(ENTRY_DECORATORS.intersection(self.decorators))
        )

    def entry_facets(self) -> frozenset:
        """Which purity facets this entry point is checked for.

        Name-matched ``predict*``/``evaluate*`` entries get the full set
        (RNG, backward, module-state writes); decorator-marked serving
        entries get the numeric facets only — see :data:`ENTRY_DECORATORS`.
        """
        if self.name.lstrip("_").startswith(ENTRY_PREFIXES):
            return _ALL_FACETS
        return _NUMERIC_FACETS


class CallGraph:
    """Functions, classes, imports, and resolved call edges for one tree."""

    def __init__(self) -> None:
        #: (module, class_name|None, func_name) -> FunctionInfo
        self.functions: Dict[Tuple[str, Optional[str], str], FunctionInfo] = {}
        #: func name -> keys sharing that name (the unique-name fallback)
        self.by_name: Dict[str, List[Tuple[str, Optional[str], str]]] = {}
        #: module -> {local alias: fully qualified imported name}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: (module, class_name) -> base-class expression names
        self.class_bases: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: module -> {line: suppressed rule ids or None (=all)}
        self.suppressions: Dict[str, Mapping[int, Optional[frozenset]]] = {}
        #: rel_path of every scanned module, keyed by module dotted name
        self.module_paths: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    def add_function(self, info: FunctionInfo) -> None:
        self.functions[info.key] = info
        self.by_name.setdefault(info.name, []).append(info.key)

    def resolve(self, caller: FunctionInfo, site: CallSite) -> Optional[FunctionInfo]:
        """The project function a call site targets, or None.

        Under-approximates: a site that cannot be pinned to exactly one
        in-tree function yields no edge (foreign call, ambiguous name).
        """
        if site.kind == "bare":
            local = self.functions.get((caller.module, None, site.name))
            if local is not None:
                return local
            target = self.imports.get(caller.module, {}).get(site.name)
            if target is not None:
                return self._by_qualified(target)
            return None
        if site.kind == "self":
            if caller.class_name is not None:
                found = self._method_in_class(caller.module, caller.class_name, site.name)
                if found is not None:
                    return found
            return self._fallback_by_name(site.name)
        if site.kind == "attr":
            assert site.base is not None
            target = self.imports.get(caller.module, {}).get(site.base)
            if target is not None:
                resolved = self._by_qualified(f"{target}.{site.name}")
                if resolved is not None:
                    return resolved
            # `arena.release()` style: base is a local object — fall through
            return self._fallback_by_name(site.name)
        return self._fallback_by_name(site.name)

    def edges(self, info: FunctionInfo) -> Iterable[Tuple[CallSite, "FunctionInfo"]]:
        for site in info.calls:
            target = self.resolve(info, site)
            if target is not None:
                yield site, target

    # ------------------------------------------------------------------
    def _method_in_class(
        self, module: str, class_name: str, func: str, _seen: Optional[Set] = None
    ) -> Optional[FunctionInfo]:
        """Resolve ``self.func`` in ``class_name``, walking project bases."""
        seen = _seen if _seen is not None else set()
        if (module, class_name) in seen:
            return None
        seen.add((module, class_name))
        found = self.functions.get((module, class_name, func))
        if found is not None:
            return found
        for base in self.class_bases.get((module, class_name), ()):
            base_module, base_class = module, base
            target = self.imports.get(module, {}).get(base)
            if target is not None and "." in target:
                base_module, base_class = target.rsplit(".", 1)
            resolved = self._method_in_class(base_module, base_class, func, seen)
            if resolved is not None:
                return resolved
        return None

    def _by_qualified(self, qualified: str) -> Optional[FunctionInfo]:
        """Resolve a dotted name: ``pkg.mod.func`` or ``pkg.mod.Class``(.__init__)."""
        if "." not in qualified:
            return None
        module, leaf = qualified.rsplit(".", 1)
        found = self.functions.get((module, None, leaf))
        if found is not None:
            return found
        # imported class: constructing it runs __init__
        found = self.functions.get((module, leaf, "__init__"))
        if found is not None:
            return found
        # re-export through a package __init__ (`from repro.training import
        # run_experiment`): fall back to a project-unique function name
        return self._unique_by_name(leaf)

    def _unique_by_name(self, name: str) -> Optional[FunctionInfo]:
        keys = self.by_name.get(name, ())
        if len(keys) == 1:
            return self.functions[keys[0]]
        return None

    def _fallback_by_name(self, name: str) -> Optional[FunctionInfo]:
        """Unique-name resolution for receivers of unknown type — refuses
        names that builtins own, so ``d.update()`` never grows an edge."""
        if name in _BUILTIN_METHODS:
            return None
        return self._unique_by_name(name)

    def suppressed(self, info_module: str, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(info_module, {}).get(line, False)
        if rules is False:
            return False
        return rules is None or rule_id in rules


# ----------------------------------------------------------------------
# index construction
# ----------------------------------------------------------------------
def _module_name(rel_path: str) -> str:
    """``core/model.py`` -> ``core.model``; ``nn/__init__.py`` -> ``nn``."""
    parts = rel_path[:-3].split("/") if rel_path.endswith(".py") else rel_path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "__root__"


def _strip_repro(qualified: str) -> str:
    """Project imports are spelled ``repro.x.y``; the index keys by ``x.y``."""
    if qualified == "repro":
        return ""
    if qualified.startswith("repro."):
        return qualified[len("repro."):]
    return qualified


def _decorator_name(node) -> Optional[str]:
    """The trailing identifier of a decorator expression.

    Handles ``@f``, ``@mod.f``, and both called forms (``@f(...)``);
    anything more dynamic yields None rather than a guess.
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """One pass over a module collecting functions, facts, and imports."""

    def __init__(self, graph: CallGraph, module: str, path: str, rel_path: str) -> None:
        self.graph = graph
        self.module = module
        self.path = path
        self.rel_path = rel_path
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        table = self.graph.imports.setdefault(self.module, {})
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            table[local] = _strip_repro(target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        # the tree uses absolute imports throughout; relative imports
        # (node.level > 0) are skipped rather than mis-anchored
        if node.module is None or node.level:
            return
        source = _strip_repro(node.module)
        table = self.graph.imports.setdefault(self.module, {})
        for alias in node.names:
            local = alias.asname or alias.name
            table[local] = f"{source}.{alias.name}" if source else alias.name

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(
            base.id for base in node.bases if isinstance(base, ast.Name)
        )
        self.graph.class_bases[(self.module, node.name)] = bases
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        info = FunctionInfo(
            module=self.module,
            class_name=self._class_stack[-1] if self._class_stack else None,
            name=node.name,
            path=self.path,
            rel_path=self.rel_path,
            lineno=node.lineno,
            col=node.col_offset,
            decorators=tuple(
                name for name in (_decorator_name(dec) for dec in node.decorator_list)
                if name is not None
            ),
        )
        self.graph.add_function(info)
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- facts ---------------------------------------------------------
    @property
    def _current(self) -> Optional[FunctionInfo]:
        return self._func_stack[-1] if self._func_stack else None

    def visit_Call(self, node: ast.Call) -> None:
        info = self._current
        if info is not None:
            func = node.func
            if isinstance(func, ast.Name):
                info.calls.append(CallSite("bare", func.id, None, node.lineno))
            elif isinstance(func, ast.Attribute):
                rng = _global_rng_draw(func)
                if rng is not None:
                    info.rng_calls.append((node.lineno, node.col_offset, rng))
                elif func.attr == "backward":
                    info.backward_calls.append((node.lineno, node.col_offset))
                elif isinstance(func.value, ast.Name):
                    if func.value.id in ("self", "cls"):
                        info.calls.append(CallSite("self", func.attr, None, node.lineno))
                    else:
                        info.calls.append(
                            CallSite("attr", func.attr, func.value.id, node.lineno)
                        )
                else:
                    info.calls.append(CallSite("method", func.attr, None, node.lineno))
        self.generic_visit(node)

    def _record_state_write(self, target: ast.expr, node: ast.stmt) -> None:
        info = self._current
        if info is None:
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
        ):
            info.state_writes.append((node.lineno, node.col_offset, target.attr))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    self._record_state_write(element, node)
            else:
                self._record_state_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_state_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_state_write(node.target, node)
        self.generic_visit(node)


def _global_rng_draw(func: ast.Attribute) -> Optional[str]:
    """``np.random.<draw>`` attribute, or None (mirrors rules.NoGlobalRNG)."""
    base = func.value
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and isinstance(base.value, ast.Name)
        and base.value.id in ("np", "numpy")
        and func.attr not in _RNG_ALLOWED
    ):
        return f"np.random.{func.attr}"
    return None


def build_call_graph(paths: Sequence[Path]) -> CallGraph:
    """Index every python file under ``paths`` into a :class:`CallGraph`."""
    graph = CallGraph()
    for file, scan_root in iter_python_files(paths):
        rel = package_relative(file, scan_root)
        parsed = _parse_file(file)
        if parsed.tree is None:
            continue  # lint_paths already reports parse errors
        module = _module_name(rel)
        graph.module_paths[module] = (str(file), rel)
        graph.suppressions[module] = parsed.suppressions
        _ModuleVisitor(graph, module, str(file), rel).visit(parsed.tree)
    return graph


# ----------------------------------------------------------------------
# escape analysis
# ----------------------------------------------------------------------
class _EscapeVisitor(ast.NodeVisitor):
    """Taint-tracks arena checkouts through one function body."""

    def __init__(self, func: ast.AST, path: str, rel_path: str, owner: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.owner = owner
        #: local name -> arena tag it aliases
        self.tainted: Dict[str, str] = {}
        #: names bound from get_arena() — receivers whose .get() taints
        self.arena_names: Set[str] = {"arena"}
        self.findings: List[Finding] = []
        self.func = func

    def run(self) -> List[Finding]:
        for stmt in ast.iter_child_nodes(self.func):
            self.visit(stmt)
        return self.findings

    # nested defs get their own _EscapeVisitor via analyze_escapes
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    # -- taint sources and propagation ---------------------------------
    def _checkout_tag(self, value: ast.expr) -> Optional[str]:
        """The arena tag when ``value`` is ``<arena>.get(...)``, else None."""
        if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)):
            return None
        func = value.func
        if func.attr != "get":
            return None
        receiver = func.value
        is_arena = (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "get_arena"
        ) or (isinstance(receiver, ast.Name) and receiver.id in self.arena_names)
        if not is_arena:
            return None
        if value.args and isinstance(value.args[0], ast.Constant) and isinstance(value.args[0].value, str):
            return value.args[0].value
        return "<dynamic-tag>"

    def _taint_of(self, value: ast.expr) -> Optional[str]:
        """The arena tag ``value`` aliases, walking views and subscripts."""
        tag = self._checkout_tag(value)
        if tag is not None:
            return tag
        if isinstance(value, ast.Name):
            return self.tainted.get(value.id)
        if isinstance(value, ast.Subscript):
            return self._taint_of(value.value)
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            if value.func.attr in _VIEW_METHODS:
                return self._taint_of(value.func.value)
        return None

    def _escaping_tag(self, value: Optional[ast.expr]) -> Optional[str]:
        """The arena tag ``value`` would leak if it left the function."""
        if value is None:
            return None
        tag = self._taint_of(value)
        if tag is not None:
            return tag
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                tag = self._escaping_tag(element)
                if tag is not None:
                    return tag
        if isinstance(value, ast.Dict):
            for element in value.values:
                tag = self._escaping_tag(element)
                if tag is not None:
                    return tag
        if isinstance(value, ast.Call):
            name = value.func.id if isinstance(value.func, ast.Name) else (
                value.func.attr if isinstance(value.func, ast.Attribute) else None
            )
            if name in _WRAPPERS:
                for arg in value.args:
                    tag = self._escaping_tag(arg)
                    if tag is not None:
                        return tag
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        # arena handle bookkeeping: `arena = get_arena()`
        if (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "get_arena"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.arena_names.add(target.id)
            return
        tag = self._taint_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if tag is not None:
                    self.tainted[target.id] = tag
                else:
                    self.tainted.pop(target.id, None)  # rebound to fresh data
            elif (
                tag is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                self._report(
                    node, tag,
                    f"stored on {target.value.id}.{target.attr} — the attribute "
                    "outlives the checkout and reads recycled memory",
                )
        self.generic_visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        tag = self._escaping_tag(node.value)
        if tag is not None:
            self._report(
                node, tag,
                "returned to the caller — the slot is recycled by the next "
                "checkout while the caller still holds the array",
            )
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        tag = self._escaping_tag(node.value)
        if tag is not None:
            self._report(node, tag, "yielded out of the owning kernel")
        self.generic_visit(node)

    def _report(self, node: ast.AST, tag: str, how: str) -> None:
        self.findings.append(
            Finding(
                self.path, node.lineno, node.col_offset, RULE_ARENA_ESCAPE,
                f"arena buffer '{tag}' escapes {self.owner}: {how}; arena "
                "scratch must die inside its kernel — allocate fresh memory "
                "for anything that outlives the call",
            )
        )


def analyze_escapes(graph: CallGraph) -> List[Finding]:
    """Run the per-function escape analysis over every indexed function."""
    findings: List[Finding] = []
    for info in graph.functions.values():
        parsed = _parse_file(Path(info.path))
        if parsed.tree is None:
            continue
        node = _find_def(parsed.tree, info)
        if node is None:
            continue
        findings.extend(
            _EscapeVisitor(node, info.path, info.rel_path, info.qualname).run()
        )
    return findings


def _find_def(tree: ast.AST, info: FunctionInfo):
    """Locate ``info``'s def node in the (cached) parsed tree by position."""
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == info.name
            and node.lineno == info.lineno
        ):
            return node
    return None


# ----------------------------------------------------------------------
# purity analysis
# ----------------------------------------------------------------------
def _closure(graph: CallGraph, entry: FunctionInfo) -> Dict[Tuple, List[str]]:
    """BFS reachability from ``entry``; value = call chain (qualnames)."""
    chains: Dict[Tuple, List[str]] = {entry.key: [entry.qualname]}
    queue = [entry]
    while queue:
        current = queue.pop(0)
        for site, target in graph.edges(current):
            if target.name in PURE_BOUNDARY_METHODS:
                continue
            if target.key in chains:
                continue
            chains[target.key] = chains[current.key] + [target.qualname]
            queue.append(target)
    return chains


def analyze_purity(graph: CallGraph) -> List[Finding]:
    """Report impurities reachable from every predict*/evaluate* entry.

    Each offending statement is reported once, attributed to the shortest
    entry chain that reaches it — the finding's location is the impure
    line itself, so an inline noqa there suppresses it for every entry.
    Decorator-marked entries (:data:`ENTRY_DECORATORS`) check the RNG and
    backward facets only; see :meth:`FunctionInfo.entry_facets`.
    """
    #: (path, line, facet, detail) -> (chain, Finding-builder args)
    seen: Dict[Tuple, Tuple[List[str], Finding]] = {}
    for entry in graph.functions.values():
        if not entry.is_entry():
            continue
        facets = entry.entry_facets()
        chains = _closure(graph, entry)
        for key, chain in chains.items():
            reached = graph.functions[key]
            for lineno, col, fn in reached.rng_calls:
                if "rng" not in facets:
                    continue
                _keep(seen, (reached.path, lineno, "rng", fn), chain, Finding(
                    reached.path, lineno, col, RULE_IMPURE_PREDICT,
                    f"{fn}() draws from global RNG state on the inference path "
                    f"{' -> '.join(chain)}; predict/evaluate must stay "
                    "reproducible — use repro.tensor.random",
                ))
            for lineno, col in reached.backward_calls:
                if "backward" not in facets:
                    continue
                _keep(seen, (reached.path, lineno, "backward", ""), chain, Finding(
                    reached.path, lineno, col, RULE_IMPURE_PREDICT,
                    f"backward() walks the autodiff tape on the inference path "
                    f"{' -> '.join(chain)}; predict/evaluate paths must be "
                    "tape-free (inference_mode)",
                ))
            for lineno, col, attr in reached.state_writes:
                if "state" not in facets or reached.name in PURE_BOUNDARY_METHODS:
                    continue
                _keep(seen, (reached.path, lineno, "state", attr), chain, Finding(
                    reached.path, lineno, col, RULE_IMPURE_PREDICT,
                    f"write to self.{attr} mutates module state on the "
                    f"inference path {' -> '.join(chain)}; concurrent requests "
                    "sharing this module would corrupt each other",
                ))
    return [finding for _, finding in seen.values()]


def inference_entry(fn):
    """Mark a function as an inference-purity entry point for
    ``lint --dataflow`` (see :data:`ENTRY_DECORATORS`).

    The runtime effect is a marker attribute only — the static pass
    matches the decorator *name* in the AST.  Apply it to serving
    request-path functions (``submit``, ``forecast_batch``) so their
    whole call closure is checked for global-RNG draws and ``backward()``
    exactly like a ``predict*`` method.
    """
    fn.__inference_entry__ = True
    return fn


def _keep(seen: Dict, key: Tuple, chain: List[str], finding: Finding) -> None:
    held = seen.get(key)
    if held is None or len(chain) < len(held[0]):
        seen[key] = (chain, finding)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def dataflow_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    graph: Optional[CallGraph] = None,
) -> List[Finding]:
    """Run both interprocedural passes; mirrors :func:`lint_paths`.

    Honours ``# repro: noqa[dataflow-*]`` comments on the reported line
    and per-rule path allowlists from ``config``.
    """
    if config is None:
        config = default_config(paths)
    if graph is None:
        graph = build_call_graph([Path(p) for p in paths])
    rel_by_path = {path: rel for path, rel in graph.module_paths.values()}
    suppression_by_path = {
        graph.module_paths[module][0]: table
        for module, table in graph.suppressions.items()
    }
    findings: List[Finding] = []
    for finding in analyze_escapes(graph) + analyze_purity(graph):
        rel = rel_by_path.get(finding.path, finding.path)
        if config.allowed(finding.rule_id, rel):
            continue
        rules = suppression_by_path.get(finding.path, {}).get(finding.line, False)
        if rules is not False and (rules is None or finding.rule_id in rules):
            continue
        findings.append(finding)
    findings.sort()
    return findings
