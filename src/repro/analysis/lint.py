"""The lint engine: file discovery, noqa suppression, and rule driving.

The engine is deliberately small — all domain knowledge lives in
:mod:`repro.analysis.rules`.  Its responsibilities:

- walk the requested paths and parse every ``*.py`` into one
  :class:`FileContext` (AST + source lines + suppression map), caching
  parsed trees keyed by ``(path, mtime_ns, size)`` so the tier-1
  ``lint src`` + ``pytest -m lint`` double run parses each file once,
- normalise each file to a *package-relative* path so allowlists written
  as ``"cli.py"`` or ``"optim/"`` match regardless of where the tree is
  checked out,
- run every selected rule and drop findings suppressed by an inline
  ``# repro: noqa[rule-id]`` comment,
- report suppression comments that no longer suppress anything (the
  ``noqa-unused`` rule — tracked here because only the driver knows
  which findings each comment absorbed),
- load allowlist overrides from ``[tool.repro.lint]`` in ``pyproject.toml``
  when the linted tree lives inside a project.

Suppression syntax (matching the flake8 convention but namespaced so the
two tools never fight over a comment)::

    param.data[...] = value  # repro: noqa[no-data-write] in-place load
    risky()                  # repro: noqa  -- suppresses every rule

Suppressions are read from real COMMENT tokens (via :mod:`tokenize`), so
noqa text inside strings and docstrings — like the two lines above — is
inert.  A file that does not parse yields a single ``parse-error``
finding rather than aborting the run — CI should report the broken file,
not crash.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[a-z0-9\-_,\s]+)\])?", re.IGNORECASE)

#: Findings carry this pseudo rule id when a file cannot be parsed.
PARSE_ERROR = "parse-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and per-rule path allowlists.

    ``allowlists`` maps a rule id to package-relative path prefixes the
    rule must skip: ``"cli.py"`` matches exactly that file, ``"optim/"``
    matches the whole subpackage.  ``select``, when given, restricts the
    run to those rule ids.
    """

    select: Optional[Tuple[str, ...]] = None
    allowlists: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    def allowed(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rel_path`` is allowlisted for ``rule_id``."""
        return _matches_any(rel_path, self.allowlists.get(rule_id, ()))


def _matches_any(rel_path: str, prefixes: Sequence[str]) -> bool:
    for prefix in prefixes:
        if prefix.endswith("/"):
            if rel_path.startswith(prefix):
                return True
        elif rel_path == prefix:
            return True
    return False


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (None = all rules).

    Reads real COMMENT tokens so noqa-looking text inside string literals
    and docstrings never registers; on tokenize failure (the file will
    also fail ast.parse and be reported) falls back to a line regex.
    """
    out: Dict[int, Optional[Set[str]]] = {}

    def record(lineno: int, text: str) -> None:
        match = _NOQA_RE.search(text)
        if match is None:
            return
        raw = match.group("rules")
        if raw is None:
            out[lineno] = None
        else:
            out[lineno] = {part.strip() for part in raw.split(",") if part.strip()}

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            record(lineno, text)
    return out


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(
        self,
        path: Path,
        rel_path: str,
        source: str,
        tree: ast.AST,
        suppressions: Optional[Dict[int, Optional[Set[str]]]] = None,
    ) -> None:
        self.path = path
        #: path relative to the ``repro`` package root (or the scan root
        #: when the file is not inside a ``repro`` package) — the
        #: coordinate system every allowlist and rule scope uses.
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._suppressions = (
            suppressions if suppressions is not None else parse_suppressions(source)
        )
        #: line -> rule ids a suppression actually absorbed during this run
        #: (the driver consults it to flag stale comments as noqa-unused).
        self.used_suppressions: Dict[int, Set[str]] = {}

    @property
    def suppressions(self) -> Dict[int, Optional[Set[str]]]:
        return dict(self._suppressions)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self._suppressions:
            return False
        rules = self._suppressions[line]
        if rules is None or rule_id in rules:
            self.used_suppressions.setdefault(line, set()).add(rule_id)
            return True
        return False


# ----------------------------------------------------------------------
# parse cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParsedFile:
    """Cached parse of one source file (tree or error, plus suppressions)."""

    source: str
    tree: Optional[ast.AST]
    error: Optional[Tuple[int, int, str]]  # (line, col, message)
    suppressions: Mapping[int, Optional[frozenset]]


_AST_CACHE: Dict[str, Tuple[Tuple[int, int], ParsedFile]] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def ast_cache_stats() -> Dict[str, int]:
    """Hit/miss counters for the parse cache (reset by clear_ast_cache)."""
    return dict(_CACHE_STATS)


def clear_ast_cache() -> None:
    _AST_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def _parse_file(file: Path) -> ParsedFile:
    """Parse ``file``, reusing the cache when (mtime_ns, size) is unchanged."""
    try:
        stat = file.stat()
        key: Optional[Tuple[int, int]] = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        key = None
    cache_id = str(file.resolve())
    if key is not None:
        cached = _AST_CACHE.get(cache_id)
        if cached is not None and cached[0] == key:
            _CACHE_STATS["hits"] += 1
            return cached[1]
    _CACHE_STATS["misses"] += 1
    source = file.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        parsed = ParsedFile(
            source, None, (exc.lineno or 1, exc.offset or 0, exc.msg or "syntax error"), {}
        )
    else:
        parsed = ParsedFile(
            source,
            tree,
            None,
            {
                line: (None if rules is None else frozenset(rules))
                for line, rules in parse_suppressions(source).items()
            },
        )
    if key is not None:
        _AST_CACHE[cache_id] = (key, parsed)
    return parsed


def package_relative(path: Path, root: Path) -> str:
    """Normalise ``path`` into the allowlist coordinate system.

    Files inside a ``repro`` package are addressed relative to that
    package (``src/repro/optim/clip.py`` -> ``optim/clip.py``); anything
    else falls back to the scan root (fixture trees in tests keep their
    own layout, e.g. ``core/bad.py``).
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rel = parts[idx + 1 :]
        if rel:
            return "/".join(rel)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.name


def iter_python_files(paths: Sequence[Path]) -> Iterable[Tuple[Path, Path]]:
    """Yield ``(file, scan_root)`` for every python file under ``paths``."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        elif path.suffix == ".py":
            yield path, path.parent
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Run the rule set over every python file under ``paths``."""
    from repro.analysis.rules import all_rules

    if config is None:
        config = default_config(paths)
    active = list(rules) if rules is not None else list(all_rules().values())
    if config.select is not None:
        wanted = set(config.select)
        unknown = wanted - {rule.id for rule in active}
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
        active = [rule for rule in active if rule.id in wanted]
    # noqa-unused is evaluated by the driver (it needs the suppression
    # usage ledger), and only on full runs: under --select a comment may
    # look stale merely because its rule was deselected.
    check_stale_noqa = config.select is None and any(
        rule.id == "noqa-unused" for rule in active
    )
    active = [rule for rule in active if not getattr(rule, "engine_level", False)]

    findings: List[Finding] = []
    for file, scan_root in iter_python_files(paths):
        rel = package_relative(file, scan_root)
        parsed = _parse_file(file)
        if parsed.error is not None:
            line, col, message = parsed.error
            findings.append(Finding(str(file), line, col, PARSE_ERROR, message))
            continue
        ctx = FileContext(
            file,
            rel,
            parsed.source,
            parsed.tree,
            {
                lineno: (None if rules_ is None else set(rules_))
                for lineno, rules_ in parsed.suppressions.items()
            },
        )
        ran: List = []
        for rule in active:
            if rule.scope is not None and not _matches_any(rel, rule.scope):
                continue
            if config.allowed(rule.id, rel):
                continue
            ran.append(rule)
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
        if check_stale_noqa and not config.allowed("noqa-unused", rel):
            findings.extend(_stale_suppressions(ctx, ran))
    findings.sort()
    return findings


def _stale_suppressions(ctx: FileContext, ran: Sequence) -> List[Finding]:
    """noqa comments in ``ctx`` that absorbed nothing this run.

    A listed rule id is only reported when its rule actually ran on this
    file (unknown ids are always reported — they can never fire); a line
    listing ``noqa-unused`` itself opts out.  These findings deliberately
    bypass the suppression map: the stale comment must not hide its own
    staleness.
    """
    from repro.analysis.rules import all_rules

    registry = all_rules()
    ran_ids = {rule.id for rule in ran}
    out: List[Finding] = []
    for line in sorted(ctx.suppressions):
        listed = ctx.suppressions[line]
        used = ctx.used_suppressions.get(line, set())
        if listed is None:
            if not used:
                out.append(
                    Finding(
                        str(ctx.path), line, 0, "noqa-unused",
                        "blanket '# repro: noqa' suppresses nothing here; remove it",
                    )
                )
            continue
        if "noqa-unused" in listed:
            continue
        for rule_id in sorted(listed):
            if rule_id in used:
                continue
            if rule_id not in registry:
                out.append(
                    Finding(
                        str(ctx.path), line, 0, "noqa-unused",
                        f"noqa[{rule_id}] names an unknown rule; remove or fix the id",
                    )
                )
            elif rule_id in ran_ids:
                out.append(
                    Finding(
                        str(ctx.path), line, 0, "noqa-unused",
                        f"noqa[{rule_id}] suppresses nothing here; the rule no longer "
                        "fires on this line",
                    )
                )
            # rule exists but was scope/allowlist-excluded on this file:
            # staleness is unverifiable, stay silent
    return out


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def default_config(paths: Sequence[Path] = ()) -> LintConfig:
    """The shipped allowlists, merged with ``[tool.repro.lint]`` overrides
    from the nearest ``pyproject.toml`` above the first scanned path."""
    from repro.analysis.rules import DEFAULT_ALLOWLISTS

    config = LintConfig(allowlists=dict(DEFAULT_ALLOWLISTS))
    pyproject = _find_pyproject(paths)
    if pyproject is None:
        return config
    overrides = _load_pyproject_overrides(pyproject)
    if overrides is None:
        return config
    merged = dict(config.allowlists)
    merged.update(overrides)
    return replace(config, allowlists=merged)


def _find_pyproject(paths: Sequence[Path]) -> Optional[Path]:
    for raw in paths:
        for parent in [Path(raw).resolve()] + list(Path(raw).resolve().parents):
            candidate = parent / "pyproject.toml"
            if candidate.is_file():
                return candidate
    return None


def _load_pyproject_overrides(pyproject: Path) -> Optional[Dict[str, Tuple[str, ...]]]:
    try:
        import tomllib
    except ImportError:  # python < 3.11: ship defaults, skip overrides
        return None
    try:
        with open(pyproject, "rb") as stream:
            data = tomllib.load(stream)
    except (OSError, tomllib.TOMLDecodeError):
        return None
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    allow = section.get("allowlists", {})
    if not isinstance(allow, dict):
        return None
    return {
        str(rule_id): tuple(str(p) for p in prefixes)
        for rule_id, prefixes in allow.items()
        if isinstance(prefixes, (list, tuple))
    }


def stale_allowlist_entries(root: Path, config: Optional[LintConfig] = None) -> List[Tuple[str, str]]:
    """Allowlist entries that no longer name a real file/dir under ``root``.

    A stale entry silently widens a rule's blind spot after a rename —
    the lint test suite asserts this list is empty.
    """
    if config is None:
        config = default_config((root,))
    stale: List[Tuple[str, str]] = []
    for rule_id, prefixes in sorted(config.allowlists.items()):
        for prefix in prefixes:
            target = root / prefix.rstrip("/")
            if not target.exists():
                stale.append((rule_id, prefix))
    return stale


def changed_files(
    paths: Sequence[Path],
    base: Optional[str] = None,
    repo_root: Optional[Path] = None,
) -> List[Path]:
    """Python files under ``paths`` modified vs ``base`` (git), plus untracked.

    Backs ``repro.cli lint --changed``: ``git diff --name-only <base>``
    (default HEAD) unioned with untracked files, filtered to ``*.py``
    under the requested paths.  Raises ``RuntimeError`` when git fails
    (not a repository, unknown base) — the CLI maps that to exit 2.
    """
    import subprocess

    root = Path(repo_root) if repo_root is not None else Path.cwd()
    names: Set[str] = set()
    commands = [
        ["git", "diff", "--name-only", base or "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for command in commands:
        try:
            result = subprocess.run(
                command, cwd=root, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise RuntimeError(f"{' '.join(command)} failed: {detail.strip()}") from exc
        names.update(line.strip() for line in result.stdout.splitlines() if line.strip())

    requested = [Path(p).resolve() for p in paths]
    out: List[Path] = []
    for name in sorted(names):
        candidate = (root / name).resolve()
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        for req in requested:
            if candidate == req or req in candidate.parents:
                out.append(candidate)
                break
    return out
