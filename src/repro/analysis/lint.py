"""The lint engine: file discovery, noqa suppression, and rule driving.

The engine is deliberately small — all domain knowledge lives in
:mod:`repro.analysis.rules`.  Its responsibilities:

- walk the requested paths and parse every ``*.py`` into one
  :class:`FileContext` (AST + source lines + suppression map),
- normalise each file to a *package-relative* path so allowlists written
  as ``"cli.py"`` or ``"optim/"`` match regardless of where the tree is
  checked out,
- run every selected rule and drop findings suppressed by an inline
  ``# repro: noqa[rule-id]`` comment,
- load allowlist overrides from ``[tool.repro.lint]`` in ``pyproject.toml``
  when the linted tree lives inside a project.

Suppression syntax (matching the flake8 convention but namespaced so the
two tools never fight over a comment)::

    param.data[...] = value  # repro: noqa[no-data-write] in-place load
    risky()                  # repro: noqa  -- suppresses every rule

A file that does not parse yields a single ``parse-error`` finding rather
than aborting the run — CI should report the broken file, not crash.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[a-z0-9\-_,\s]+)\])?", re.IGNORECASE)

#: Findings carry this pseudo rule id when a file cannot be parsed.
PARSE_ERROR = "parse-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and per-rule path allowlists.

    ``allowlists`` maps a rule id to package-relative path prefixes the
    rule must skip: ``"cli.py"`` matches exactly that file, ``"optim/"``
    matches the whole subpackage.  ``select``, when given, restricts the
    run to those rule ids.
    """

    select: Optional[Tuple[str, ...]] = None
    allowlists: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    def allowed(self, rule_id: str, rel_path: str) -> bool:
        """True when ``rel_path`` is allowlisted for ``rule_id``."""
        return _matches_any(rel_path, self.allowlists.get(rule_id, ()))


def _matches_any(rel_path: str, prefixes: Sequence[str]) -> bool:
    for prefix in prefixes:
        if prefix.endswith("/"):
            if rel_path.startswith(prefix):
                return True
        elif rel_path == prefix:
            return True
    return False


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        #: path relative to the ``repro`` package root (or the scan root
        #: when the file is not inside a ``repro`` package) — the
        #: coordinate system every allowlist and rule scope uses.
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._suppressions = self._parse_noqa(self.lines)

    @staticmethod
    def _parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
        """Map line number -> suppressed rule ids (None = all rules)."""
        out: Dict[int, Optional[Set[str]]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            raw = match.group("rules")
            if raw is None:
                out[lineno] = None
            else:
                out[lineno] = {part.strip() for part in raw.split(",") if part.strip()}
        return out

    def suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self._suppressions:
            return False
        rules = self._suppressions[line]
        return rules is None or rule_id in rules


def package_relative(path: Path, root: Path) -> str:
    """Normalise ``path`` into the allowlist coordinate system.

    Files inside a ``repro`` package are addressed relative to that
    package (``src/repro/optim/clip.py`` -> ``optim/clip.py``); anything
    else falls back to the scan root (fixture trees in tests keep their
    own layout, e.g. ``core/bad.py``).
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rel = parts[idx + 1 :]
        if rel:
            return "/".join(rel)
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.name


def iter_python_files(paths: Sequence[Path]) -> Iterable[Tuple[Path, Path]]:
    """Yield ``(file, scan_root)`` for every python file under ``paths``."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        elif path.suffix == ".py":
            yield path, path.parent
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Run the rule set over every python file under ``paths``."""
    from repro.analysis.rules import all_rules

    if config is None:
        config = default_config(paths)
    active = list(rules) if rules is not None else list(all_rules().values())
    if config.select is not None:
        wanted = set(config.select)
        unknown = wanted - {rule.id for rule in active}
        if unknown:
            raise KeyError(f"unknown rule id(s): {sorted(unknown)}")
        active = [rule for rule in active if rule.id in wanted]

    findings: List[Finding] = []
    for file, scan_root in iter_python_files(paths):
        rel = package_relative(file, scan_root)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            findings.append(
                Finding(str(file), exc.lineno or 1, exc.offset or 0, PARSE_ERROR, exc.msg or "syntax error")
            )
            continue
        ctx = FileContext(file, rel, source, tree)
        for rule in active:
            if rule.scope is not None and not _matches_any(rel, rule.scope):
                continue
            if config.allowed(rule.id, rel):
                continue
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding.rule_id, finding.line):
                    findings.append(finding)
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def default_config(paths: Sequence[Path] = ()) -> LintConfig:
    """The shipped allowlists, merged with ``[tool.repro.lint]`` overrides
    from the nearest ``pyproject.toml`` above the first scanned path."""
    from repro.analysis.rules import DEFAULT_ALLOWLISTS

    config = LintConfig(allowlists=dict(DEFAULT_ALLOWLISTS))
    pyproject = _find_pyproject(paths)
    if pyproject is None:
        return config
    overrides = _load_pyproject_overrides(pyproject)
    if overrides is None:
        return config
    merged = dict(config.allowlists)
    merged.update(overrides)
    return replace(config, allowlists=merged)


def _find_pyproject(paths: Sequence[Path]) -> Optional[Path]:
    for raw in paths:
        for parent in [Path(raw).resolve()] + list(Path(raw).resolve().parents):
            candidate = parent / "pyproject.toml"
            if candidate.is_file():
                return candidate
    return None


def _load_pyproject_overrides(pyproject: Path) -> Optional[Dict[str, Tuple[str, ...]]]:
    try:
        import tomllib
    except ImportError:  # python < 3.11: ship defaults, skip overrides
        return None
    try:
        with open(pyproject, "rb") as stream:
            data = tomllib.load(stream)
    except (OSError, tomllib.TOMLDecodeError):
        return None
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    allow = section.get("allowlists", {})
    if not isinstance(allow, dict):
        return None
    return {
        str(rule_id): tuple(str(p) for p in prefixes)
        for rule_id, prefixes in allow.items()
        if isinstance(prefixes, (list, tuple))
    }


def stale_allowlist_entries(root: Path, config: Optional[LintConfig] = None) -> List[Tuple[str, str]]:
    """Allowlist entries that no longer name a real file/dir under ``root``.

    A stale entry silently widens a rule's blind spot after a rename —
    the lint test suite asserts this list is empty.
    """
    if config is None:
        config = default_config((root,))
    stale: List[Tuple[str, str]] = []
    for rule_id, prefixes in sorted(config.allowlists.items()):
        for prefix in prefixes:
            target = root / prefix.rstrip("/")
            if not target.exists():
                stale.append((rule_id, prefix))
    return stale
