"""Runtime ownership sanitizer — "ASan for the engine".

The inference fast path shares mutable state by design: the
:class:`~repro.tensor.arena.BufferArena` recycles scratch buffers across
kernel calls, and the :class:`~repro.tensor.cache.PlanCache` hands the
*same* mask/table arrays to every attention and decomposition call.
Nothing in the type system stops a kernel from holding an arena buffer
past its release, or an op from scribbling over a cached plan — and one
silent aliasing bug corrupts the forecast of every later call sharing
the slot.  This module makes those contracts checkable at runtime:

- **use-after-release** — every arena checkout is stamped with a
  per-slot generation; releasing a slot (kernel end, outermost
  ``inference_mode()`` exit, ``clear()``) poison-fills the buffer and
  registers it, so the next time a stale handle flows through the engine
  (op input or output) the finding names the op and the arena tag.  Even
  reads that bypass the engine go loud: the poison is NaN, which the
  numeric sanitizer and downstream metrics cannot miss.
- **plan write-trap** — every array in a cached plan is already frozen
  read-only at insertion; the guard additionally fingerprints it
  (CRC-32 over the raw bytes) and re-verifies on every cache access and
  once more when the guard exits, so a write that re-armed the flag or
  went through a writeable base is still caught and attributed to its
  cache key.
- **tape pinning** — an arena buffer captured as a parent of a *taped*
  op would be read again by ``backward()`` long after the slot was
  recycled; the guard flags the capture at the op that did it.

Install with :func:`alias_guard` (or ``sanitize(alias=True)``, or
``repro.cli run --sanitize-alias``).  The guard layers over whatever
numeric sanitizer is active — it delegates every engine callback inward,
so NaN/dtype/broadcast checks keep running.  When nothing is installed
the arena/cache/engine each pay exactly one ``is not None`` test; the
hot path stays allocation- and branch-free.

Findings carry lint-style rule ids (``alias-use-after-release``,
``alias-plan-write``, ``alias-arena-taped``) and are mirrored into
:mod:`repro.obs` as ``anomaly`` events (kind ``alias_*``) with producer
attribution, exactly like the numeric sanitizer's.
"""

from __future__ import annotations

import contextlib
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tensor import tensor as _engine
from repro.tensor.arena import get_arena
from repro.tensor.cache import iter_plan_arrays, plan_cache

#: rule ids, in the lint Finding vocabulary (docs/static-analysis.md)
RULE_USE_AFTER_RELEASE = "alias-use-after-release"
RULE_PLAN_WRITE = "alias-plan-write"
RULE_ARENA_TAPED = "alias-arena-taped"

#: debug fill written into released float buffers — any read that dodges
#: the identity check still surfaces as a NaN in the numeric sanitizer
POISON = np.nan


@dataclass(frozen=True)
class AliasFinding:
    """One ownership/aliasing defect caught at runtime."""

    rule_id: str
    op: str
    message: str
    detail: Dict = field(default_factory=dict)
    stack: Tuple[str, ...] = ()

    def render(self) -> str:
        return f"[{self.rule_id}] op={self.op}: {self.message}"


class AliasError(RuntimeError):
    """Raised at the first finding when the guard runs in strict mode."""

    def __init__(self, finding: AliasFinding) -> None:
        stack = "".join(finding.stack)
        super().__init__(f"{finding.render()}\nuse site (most recent call last):\n{stack}")
        self.finding = finding


class AliasSanitizer:
    """Tracks arena checkouts and plan-cache fingerprints, reporting misuse.

    Implements the engine-sanitizer protocol (``check_forward`` /
    ``check_grad`` / ``check_sequence`` / ``current_producer``) so it can
    occupy the single engine slot while *delegating* every callback to
    ``inner`` — the numeric :class:`~repro.analysis.sanitizer.TensorSanitizer`
    that was installed before it, if any.

    Parameters
    ----------
    logger:
        A :class:`repro.obs.RunLogger`; every finding is mirrored as an
        ``anomaly`` event (kind ``alias_<rule>``).
    raise_on_error:
        Strict mode — raise :class:`AliasError` at the first finding
        (default).  When False, findings accumulate up to ``max_findings``.
    inner:
        The engine sanitizer to delegate to (usually whatever
        ``set_sanitizer`` held before the guard was installed).
    poison:
        Fill released float buffers with NaN (default).  Disable only for
        tests that inspect released contents.
    """

    def __init__(
        self,
        logger=None,
        raise_on_error: bool = True,
        inner=None,
        poison: bool = True,
        max_findings: int = 100,
        stack_limit: int = 12,
    ) -> None:
        self.logger = logger
        self.raise_on_error = raise_on_error
        self.inner = inner
        self.poison = poison
        self.max_findings = max_findings
        self.stack_limit = stack_limit
        self.findings: List[AliasFinding] = []
        self.current_producer: Optional[str] = None
        #: per-slot checkout generation (monotonic per arena key)
        self._generations: Dict[tuple, int] = {}
        #: id(buffer) -> (key, generation) for live checkouts
        self._live: Dict[int, Tuple[tuple, int]] = {}
        #: id(buffer) -> (key, generation, buffer) for released checkouts;
        #: the strong reference pins the id so it cannot be recycled
        self._released: Dict[int, Tuple[tuple, int, np.ndarray]] = {}
        #: plan key -> tuple of (id, crc, nbytes) fingerprints
        self._plans: Dict = {}
        self.checked_ops = 0

    # ------------------------------------------------------------------
    # arena hooks (called by BufferArena when installed)
    # ------------------------------------------------------------------
    def on_arena_checkout(self, key: tuple, buf: np.ndarray) -> None:
        generation = self._generations.get(key, 0) + 1
        self._generations[key] = generation
        self._released.pop(id(buf), None)
        self._live[id(buf)] = (key, generation)

    def on_arena_release(self, key: tuple, buf: np.ndarray) -> None:
        entry = self._live.pop(id(buf), None)
        generation = entry[1] if entry is not None else self._generations.get(key, 0)
        self._released[id(buf)] = (key, generation, buf)
        if self.poison and buf.dtype.kind == "f":
            buf.fill(POISON)

    # ------------------------------------------------------------------
    # plan-cache hooks (called by PlanCache when installed)
    # ------------------------------------------------------------------
    @staticmethod
    def _fingerprint(value) -> Tuple[Tuple[int, int, bool], ...]:
        return tuple(
            (zlib.crc32(array.tobytes()), array.nbytes, bool(array.flags.writeable))
            for array in iter_plan_arrays(value)
        )

    def on_plan_insert(self, key, value) -> None:
        self._plans[key] = (value, self._fingerprint(value))

    def on_plan_evict(self, key, value) -> None:
        self._plans.pop(key, None)

    def on_plan_access(self, key, value) -> None:
        tracked = self._plans.get(key)
        if tracked is None:
            # inserted before the guard was installed: adopt it now
            self._plans[key] = (value, self._fingerprint(value))
            return
        self._verify_plan(key, tracked, when="on access")

    def verify_plans(self) -> None:
        """Final sweep: re-fingerprint every tracked plan (guard exit)."""
        for key, tracked in list(self._plans.items()):
            self._verify_plan(key, tracked, when="at guard exit")

    def _verify_plan(self, key, tracked, when: str) -> None:
        value, expected = tracked
        actual = self._fingerprint(value)
        if actual == expected:
            return
        for index, (old, new) in enumerate(zip(expected, actual)):
            if old[:2] != new[:2]:
                self._record(
                    RULE_PLAN_WRITE,
                    self.current_producer or "plan_cache",
                    f"cached plan {key!r} (array #{index}) was mutated in place "
                    f"— detected {when}; every consumer of this key now reads "
                    "corrupt data",
                    {"plan_key": repr(key), "array_index": index,
                     "writeable": new[2]},
                )
            elif old[2] != new[2]:
                self._record(
                    RULE_PLAN_WRITE,
                    self.current_producer or "plan_cache",
                    f"cached plan {key!r} (array #{index}) had its read-only "
                    f"flag re-armed (writeable={new[2]}) — detected {when}",
                    {"plan_key": repr(key), "array_index": index,
                     "writeable": new[2]},
                )
        # re-baseline so collect mode reports each mutation once
        self._plans[key] = (value, actual)

    # ------------------------------------------------------------------
    # engine-sanitizer protocol (occupies the set_sanitizer slot)
    # ------------------------------------------------------------------
    def check_forward(self, op: str, data: np.ndarray, parents: Tuple) -> None:
        self.checked_ops += 1
        taped = _engine._GRAD_ENABLED and any(p.requires_grad for p in parents)
        self._check_array(op, data, role="output", taped=taped)
        for parent in parents:
            self._check_array(op, parent.data, role="input", taped=taped)
        if self.inner is not None:
            self.inner.check_forward(op, data, parents)

    def check_grad(self, op: str, grad: np.ndarray) -> None:
        self._check_array(op, np.asarray(grad), role="gradient", taped=False)
        if self.inner is not None:
            self.inner.current_producer = self.current_producer
            self.inner.check_grad(op, grad)

    def check_sequence(self, op: str, data: np.ndarray, time_axis: int = 1) -> None:
        if self.inner is not None:
            self.inner.check_sequence(op, data, time_axis=time_axis)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _arena_entry(self, array: np.ndarray):
        """(kind, key, generation) when ``array`` is (a view of) a tracked
        arena buffer, walking the ``.base`` chain; None otherwise."""
        seen = 0
        node = array
        while node is not None and seen < 8:
            ident = id(node)
            live = self._live.get(ident)
            if live is not None:
                return ("live", *live)
            released = self._released.get(ident)
            if released is not None:
                return ("released", released[0], released[1])
            node = node.base if isinstance(node, np.ndarray) else None
            seen += 1
        return None

    def _check_array(self, op: str, array, role: str, taped: bool) -> None:
        if not isinstance(array, np.ndarray):
            return
        entry = self._arena_entry(array)
        if entry is None:
            return
        state, key, generation = entry
        tag = key[0]
        if state == "released":
            self._record(
                RULE_USE_AFTER_RELEASE, op,
                f"{role} of '{op}' is arena buffer '{tag}' (generation "
                f"{generation}) used after its release — the slot may "
                "already belong to another caller",
                {"arena_tag": tag, "generation": generation, "role": role,
                 "shape": list(array.shape)},
            )
        elif taped:
            self._record(
                RULE_ARENA_TAPED, op,
                f"{role} of taped op '{op}' is live arena buffer '{tag}': "
                "backward() would read it after the slot is recycled — "
                "arena scratch must never enter the tape",
                {"arena_tag": tag, "generation": generation, "role": role,
                 "shape": list(array.shape)},
            )

    def _capture_stack(self) -> Tuple[str, ...]:
        frames = traceback.format_stack(limit=self.stack_limit + 2)[:-2]
        return tuple(frames)

    def _record(self, rule_id: str, op: str, message: str, detail: Dict) -> None:
        if len(self.findings) >= self.max_findings:
            return
        finding = AliasFinding(rule_id, op, message, detail, self._capture_stack())
        self.findings.append(finding)
        if self.logger is not None:
            self.logger.anomaly(
                f"alias_{rule_id.replace('alias-', '').replace('-', '_')}",
                op=op,
                message=message,
                rule_id=rule_id,
                stack="".join(finding.stack[-4:]),
                **detail,
            )
        if self.raise_on_error:
            raise AliasError(finding)

    def summary(self) -> str:
        if not self.findings:
            return (
                f"alias sanitizer: clean ({self.checked_ops} ops, "
                f"{len(self._plans)} cached plans verified)"
            )
        lines = [
            f"alias sanitizer: {len(self.findings)} finding(s) over "
            f"{self.checked_ops} ops"
        ]
        lines.extend(f"  {f.render()}" for f in self.findings)
        return "\n".join(lines)


@contextlib.contextmanager
def alias_guard(
    logger=None,
    raise_on_error: bool = True,
    arena=None,
    cache=None,
    **kwargs,
):
    """Install an :class:`AliasSanitizer` for the duration of the block.

    Hooks the process arena, the plan cache, and the engine sanitizer
    slot (layering over — and delegating to — any numeric sanitizer that
    is already installed), and restores all three on exit.  A final
    plan-cache fingerprint sweep runs on clean exit, so a mutation after
    the last cache access is still reported::

        with alias_guard() as guard:
            model.predict_with_uncertainty(...)   # raises AliasError on misuse
        assert not guard.findings
    """
    arena = arena if arena is not None else get_arena()
    cache = cache if cache is not None else plan_cache()
    guard = AliasSanitizer(
        logger=logger,
        raise_on_error=raise_on_error,
        inner=_engine.get_sanitizer(),
        **kwargs,
    )
    prev_arena = arena.set_alias_hook(guard)
    prev_cache = cache.set_alias_hook(guard)
    _engine.set_sanitizer(guard)
    try:
        yield guard
    finally:
        _engine.set_sanitizer(guard.inner)
        arena.set_alias_hook(prev_arena)
        cache.set_alias_hook(prev_cache)
    guard.verify_plans()
