"""The domain rule catalogue.

Each rule is a tiny AST visitor over one :class:`~repro.analysis.lint.FileContext`
that yields :class:`~repro.analysis.lint.Finding` objects.  Rules register
themselves in a module-level registry; ``repro.cli lint --list-rules``
renders it, and tests assert the catalogue stays in sync with the docs.

The rules encode this repo's correctness invariants:

``no-print``
    Library code must route output through :mod:`repro.obs` sinks, never
    stdout.  Only the user-facing entry points may print.
``no-data-write``
    Writing ``Tensor.data`` / ``Tensor.grad`` in-place silently detaches
    gradients; only the engine (``tensor/``) and the optimizers
    (``optim/``) may do it.
``no-global-rng``
    Sampling from numpy's *global* RNG breaks the seeded "average of 5
    runs" reproducibility contract — use :mod:`repro.tensor.random`.
``no-swallowed-exception``
    ``except: pass`` hides the exact failures the sanitizer exists to
    surface.
``no-mutable-default``
    The classic shared-state footgun.
``no-wallclock``
    Wall-clock reads inside the numeric core (``core/``, ``nn/``,
    ``tensor/``) make forward/backward passes nondeterministic;
    monotonic timers for profiling hooks are fine.
``no-float64-literal``
    Hard-coded ``np.float64`` in ``nn/``/``core/``/``baselines/`` pins
    arrays to double precision and silently defeats the float32 inference
    fast path — take the dtype from the input or
    :func:`repro.tensor.get_default_dtype`.
``inference-mode-required``
    Predict/evaluate/sample paths must use the tape-free
    :func:`repro.tensor.inference_mode` fast path, not bare ``no_grad``
    (which still takes the activation-saving kernel branches).
``noqa-unused``
    A ``# repro: noqa`` comment whose rule no longer fires on that line
    is a silent blind spot waiting for the next regression; the lint
    driver flags it (full runs only — see ``analysis/lint.py``).
``dataflow-arena-escape``
    An arena scratch buffer that outlives its kernel (returned, stored on
    ``self``, wrapped in an escaping ``Tensor``) reads recycled memory on
    the next checkout.  Interprocedural — implemented by
    :mod:`repro.analysis.dataflow`, run via ``lint --dataflow``.
``dataflow-impure-predict``
    A ``predict*``/``evaluate*`` entry point that transitively reaches a
    global-RNG draw, a ``backward()`` tape walk, or a module-state write
    is not inference-pure; concurrent serving requests would corrupt each
    other.  Interprocedural — implemented by
    :mod:`repro.analysis.dataflow`, run via ``lint --dataflow``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.analysis.lint import FileContext, Finding

#: Package-relative path prefixes each rule skips by default (overridable
#: via ``[tool.repro.lint.allowlists]`` in pyproject.toml).
DEFAULT_ALLOWLISTS: Mapping[str, Tuple[str, ...]] = {
    # user-facing entry points whose job *is* writing to stdout
    "no-print": ("cli.py", "perf/__main__.py", "__main__.py", "analysis/__main__.py"),
    # the autodiff engine and the optimizers mutate tensors by design;
    # checkpoint raw-buffer writes are confined to the atomic writer
    "no-data-write": ("optim/", "tensor/", "ckpt/atomic.py"),
    # the op profiler reads time.time() once per session to anchor its
    # monotonic timeline to calendar time for Chrome-trace export; it
    # never feeds the clock into numerics
    "no-wallclock": ("tensor/profiler.py",),
    # telemetry counters (obs/) and the sanitizers' own bookkeeping
    # (analysis/) mutate state on inference paths by design — metrics and
    # debug instrumentation are outside the purity contract
    "dataflow-impure-predict": ("obs/", "analysis/"),
}

_REGISTRY: Dict[str, "Rule"] = {}


def register(cls):
    """Class decorator adding one rule instance to the registry."""
    rule = cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Dict[str, "Rule"]:
    """Registered rules, keyed by id (copy — callers may filter freely)."""
    return dict(_REGISTRY)


class Rule:
    """One lint check.  Subclasses set ``id``/``description`` and yield
    findings from :meth:`check`; ``scope`` (path prefixes) restricts where
    the rule applies at all (e.g. determinism rules only guard the numeric
    core)."""

    id: str = ""
    description: str = ""
    scope: Optional[Tuple[str, ...]] = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(str(ctx.path), node.lineno, node.col_offset, self.id, message)


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@register
class NoPrint(Rule):
    id = "no-print"
    description = "bare print() in library code — route output through repro.obs sinks"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(ctx, node, "print() bypasses the telemetry layer; use repro.obs")


@register
class NoDataWrite(Rule):
    id = "no-data-write"
    description = "write to Tensor.data/.grad outside the engine/optimizer allowlist"

    _ATTRS = frozenset({"data", "grad"})

    def _written_attr(self, target: ast.expr) -> Optional[ast.Attribute]:
        """The ``.data``/``.grad`` attribute a target writes, if any."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr in self._ATTRS:
            return target
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                attr = self._written_attr(target)
                if attr is not None:
                    yield self.finding(
                        ctx, node,
                        f"in-place write to .{attr.attr} detaches gradients; "
                        "only optim/ and the tensor engine may mutate tensors",
                    )


@register
class NoGlobalRNG(Rule):
    id = "no-global-rng"
    description = "np.random.* global-state call — use repro.tensor.random seeded generators"

    # constructors/types are fine; sampling or seeding the global state is not
    _ALLOWED = frozenset(
        {"Generator", "BitGenerator", "SeedSequence", "default_rng", "PCG64", "Philox", "MT19937"}
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in ("np", "numpy")
                and func.attr not in self._ALLOWED
            ):
                yield self.finding(
                    ctx, node,
                    f"np.random.{func.attr}() draws from unseeded global state; "
                    "use repro.tensor.random.default_rng()/spawn_rng()",
                )


@register
class NoSwallowedException(Rule):
    id = "no-swallowed-exception"
    description = "bare except, or except Exception with a pass-only body"

    _BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _body_is_noop(body) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) and stmt.value.value is Ellipsis)
            for stmt in body
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(ctx, node, "bare except: catches SystemExit/KeyboardInterrupt too; name the exception")
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in self._BROAD
                and self._body_is_noop(node.body)
            ):
                yield self.finding(
                    ctx, node,
                    f"except {node.type.id}: pass swallows failures silently; handle or re-raise",
                )


@register
class NoMutableDefault(Rule):
    id = "no-mutable-default"
    description = "mutable default argument (list/dict/set literal or constructor)"

    _CTORS = frozenset({"list", "dict", "set"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._CTORS
            and not node.args
            and not node.keywords
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default in {node.name}() is shared across calls; default to None",
                    )


@register
class NoWallclock(Rule):
    id = "no-wallclock"
    description = "wall-clock read inside the numeric core (core/, nn/, tensor/)"
    scope = ("core/", "nn/", "tensor/")

    _TIME_FNS = frozenset({"time", "time_ns", "localtime"})
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # names bound by `from time import time, ...`
        local_time_fns = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"
            for alias in node.names
            if alias.name in self._TIME_FNS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in local_time_fns:
                yield self.finding(ctx, node, f"{func.id}() reads the wall clock; numeric code must be deterministic")
            elif isinstance(func, ast.Attribute):
                base = func.value
                if func.attr in self._TIME_FNS and isinstance(base, ast.Name) and base.id == "time":
                    yield self.finding(
                        ctx, node, f"time.{func.attr}() reads the wall clock; numeric code must be deterministic"
                    )
                elif func.attr in self._DATETIME_FNS and (
                    (isinstance(base, ast.Name) and base.id in ("datetime", "date"))
                    or (isinstance(base, ast.Attribute) and base.attr in ("datetime", "date"))
                ):
                    yield self.finding(
                        ctx, node, f"datetime.{func.attr}() reads the wall clock; numeric code must be deterministic"
                    )


@register
class NoFloat64Literal(Rule):
    id = "no-float64-literal"
    description = "hard-coded np.float64 in nn//core//baselines/ — defeats the float32 compute mode"
    scope = ("nn/", "core/", "baselines/")

    @staticmethod
    def _is_np_float64(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "float64"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if self._is_np_float64(node.func):
                    yield self.finding(
                        ctx, node,
                        "np.float64(...) forces double precision; derive the dtype from "
                        "the input or repro.tensor.get_default_dtype()",
                    )
                    continue
                for kw in node.keywords:
                    if kw.arg == "dtype" and self._is_np_float64(kw.value):
                        yield self.finding(
                            ctx, kw.value,
                            "dtype=np.float64 pins this array to double precision; derive the "
                            "dtype from the input or repro.tensor.get_default_dtype()",
                        )


@register
class InferenceModeRequired(Rule):
    id = "inference-mode-required"
    description = "bare no_grad() in a predict/evaluate path — use inference_mode()"

    #: function-name prefixes that mark a forward-only serving/eval path
    _FN_PREFIXES = ("predict", "evaluate", "infer", "sample", "forecast")

    @staticmethod
    def _is_no_grad_call(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Name):
            return func.id == "no_grad"
        return isinstance(func, ast.Attribute) and func.attr == "no_grad"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.lstrip("_").startswith(self._FN_PREFIXES):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.With, ast.AsyncWith)):
                    continue
                for item in sub.items:
                    if self._is_no_grad_call(item.context_expr):
                        yield self.finding(
                            ctx, item.context_expr,
                            f"{node.name}() is a forward-only path: no_grad() still takes "
                            "the activation-saving kernel branches; use "
                            "repro.tensor.inference_mode()",
                        )


@register
class NoqaUnused(Rule):
    id = "noqa-unused"
    description = "suppression comment whose rule no longer fires on that line"

    #: evaluated by the lint driver after all other rules ran on a file —
    #: only it knows which findings each suppression comment absorbed.
    engine_level = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class DataflowArenaEscape(Rule):
    id = "dataflow-arena-escape"
    description = "arena buffer outlives its kernel (interprocedural; lint --dataflow)"

    #: implemented by repro.analysis.dataflow (needs the whole-tree call
    #: graph, not one file); registered here so --list-rules documents it
    #: and noqa[dataflow-arena-escape] comments aren't flagged unknown.
    engine_level = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class DataflowImpurePredict(Rule):
    id = "dataflow-impure-predict"
    description = "predict/evaluate path reaches RNG, backward(), or state writes (lint --dataflow)"

    #: implemented by repro.analysis.dataflow — see DataflowArenaEscape.
    engine_level = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
