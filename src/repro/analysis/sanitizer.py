"""Runtime tensor sanitizer — ASan-style numeric checks for the autodiff tape.

When installed (via :func:`sanitize` or ``repro.cli run --sanitize``), the
engine calls back here at two points:

- **tape-node creation** (``Tensor._make``): every op output is checked
  for NaN/Inf, dtype drift away from the engine's active compute-dtype
  contract (float64 by default, float32 under
  ``repro.tensor.compute_dtype(np.float32)``), and
  double-broadcast surprises — an elementwise binary op where *neither*
  operand has the output shape, i.e. the classic ``(n,1) + (1,n)`` outer
  blow-up that silently manufactures an (n,n) tensor;
- **gradient accumulation** (``Tensor._accumulate``): every incoming
  gradient is checked for NaN/Inf before it can poison a parameter's
  ``grad`` buffer (and, one optimizer step later, Adam's moments).

The fused sequence kernels additionally report the first offending
*timestep* (:meth:`TensorSanitizer.check_sequence`), because a NaN born
at t=37 of a 96-step scan is invisible in the single fused tape node.

Each finding carries the op name, the index of the first bad element,
and a captured creation stack, and is mirrored into :mod:`repro.obs` as
an ``anomaly`` event (kind ``sanitizer_*``) when a logger is attached.
When no sanitizer is installed the engine pays exactly one ``is not
None`` test per hook — the hot path stays allocation- and branch-free.
"""

from __future__ import annotations

import contextlib
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tensor import tensor as _engine

#: elementwise binary ops checked for double-broadcast surprises
_ELEMENTWISE_BINARY = frozenset({"add", "sub", "mul", "div", "maximum", "where"})


@dataclass(frozen=True)
class SanitizerFinding:
    """One numeric defect caught at runtime."""

    kind: str  # nonfinite_forward | nonfinite_grad | dtype_drift | broadcast_surprise
    op: str
    message: str
    detail: Dict = field(default_factory=dict)
    stack: Tuple[str, ...] = ()

    def render(self) -> str:
        return f"[{self.kind}] op={self.op}: {self.message}"


class TensorSanitizerError(RuntimeError):
    """Raised at the first finding when the sanitizer runs in strict mode."""

    def __init__(self, finding: SanitizerFinding) -> None:
        stack = "".join(finding.stack)
        super().__init__(f"{finding.render()}\ncreation stack (most recent call last):\n{stack}")
        self.finding = finding


class TensorSanitizer:
    """Collects (and optionally raises on) numeric defects in the tape.

    Parameters
    ----------
    logger:
        A :class:`repro.obs.RunLogger`; every finding is mirrored as an
        ``anomaly`` event (``sanitizer_<kind>``).  None keeps findings
        in-process only.
    raise_on_error:
        Strict mode — raise :class:`TensorSanitizerError` at the first
        finding (the default; debugging wants a loud, located failure).
        When False, findings accumulate up to ``max_findings``.
    check_dtype / check_broadcast:
        Toggle the dtype-drift and double-broadcast checks (the
        non-finite checks are always on — they are the point).
    expected_dtype:
        The dtype contract to enforce.  None (the default) tracks the
        engine's active compute dtype — float64 normally, float32 inside
        a ``repro.tensor.compute_dtype(np.float32)`` block — so the drift
        check follows the mode instead of hard-coding float64.
    """

    def __init__(
        self,
        logger=None,
        raise_on_error: bool = True,
        check_dtype: bool = True,
        check_broadcast: bool = True,
        expected_dtype=None,
        max_findings: int = 100,
        stack_limit: int = 12,
    ) -> None:
        self.logger = logger
        self.raise_on_error = raise_on_error
        self.check_dtype = check_dtype
        self.check_broadcast = check_broadcast
        self._expected_dtype = None if expected_dtype is None else np.dtype(expected_dtype)
        self.max_findings = max_findings
        self.stack_limit = stack_limit
        self.findings: List[SanitizerFinding] = []
        self.checked_nodes: int = 0
        self.checked_grads: int = 0
        # id() of the last array reported by check_sequence, so the
        # generic tape-node check does not file the same defect twice
        self._sequence_reported: Optional[int] = None
        # op whose backward closure is currently running (set by the
        # engine's backward loop) — attributes bad gradients to their maker
        self.current_producer: Optional[str] = None

    @property
    def expected_dtype(self) -> np.dtype:
        """The enforced dtype: pinned at construction, or the engine's
        current compute dtype when constructed with ``expected_dtype=None``."""
        if self._expected_dtype is not None:
            return self._expected_dtype
        return _engine.get_default_dtype()

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def check_forward(self, op: str, data: np.ndarray, parents: Tuple) -> None:
        """Called by ``Tensor._make`` on every tape-node creation."""
        self.checked_nodes += 1
        if (
            data.dtype.kind == "f"
            and id(data) != self._sequence_reported
            and not np.isfinite(data).all()
        ):
            self._record(
                "nonfinite_forward", op,
                f"op produced {self._describe_nonfinite(data)}",
                self._locate(data),
            )
        if self.check_dtype and data.dtype.kind == "f" and data.dtype != self.expected_dtype:
            self._record(
                "dtype_drift", op,
                f"op produced {data.dtype} but the engine contract is {self.expected_dtype}",
                {"dtype": str(data.dtype)},
            )
        if (
            self.check_broadcast
            and op in _ELEMENTWISE_BINARY
            and len(parents) == 2
            and parents[0].data.size > 1
            and parents[1].data.size > 1
            and data.shape != parents[0].data.shape
            and data.shape != parents[1].data.shape
        ):
            self._record(
                "broadcast_surprise", op,
                f"both operands were broadcast: {parents[0].data.shape} {op} "
                f"{parents[1].data.shape} -> {data.shape}",
                {
                    "lhs_shape": list(parents[0].data.shape),
                    "rhs_shape": list(parents[1].data.shape),
                    "out_shape": list(data.shape),
                },
            )

    def check_grad(self, op: str, grad: np.ndarray) -> None:
        """Called by ``Tensor._accumulate`` on every incoming gradient."""
        self.checked_grads += 1
        if grad.dtype.kind == "f" and not np.isfinite(grad).all():
            producer = self.current_producer
            detail = self._locate(grad)
            source = "the backward seed"
            if producer:
                detail["producer_op"] = producer
                source = f"backward of '{producer}'"
            self._record(
                "nonfinite_grad", producer or op,
                f"gradient from {source} flowing into output of '{op}' has "
                f"{self._describe_nonfinite(grad)}",
                detail,
            )

    def check_sequence(self, op: str, data: np.ndarray, time_axis: int = 1) -> None:
        """Timestep-resolved non-finite check for fused scan kernels."""
        if data.dtype.kind != "f" or np.isfinite(data).all():
            return
        bad = ~np.isfinite(data)
        other_axes = tuple(a for a in range(data.ndim) if a != time_axis)
        per_step = bad.any(axis=other_axes)
        first_t = int(np.argmax(per_step))
        detail = self._locate(data)
        detail["first_bad_timestep"] = first_t
        self._sequence_reported = id(data)
        self._record(
            "nonfinite_forward", op,
            f"scan went non-finite at timestep {first_t} "
            f"({self._describe_nonfinite(data)})",
            detail,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _describe_nonfinite(data: np.ndarray) -> str:
        n_nan = int(np.isnan(data).sum())
        n_inf = int(np.isinf(data).sum())
        parts = []
        if n_nan:
            parts.append(f"{n_nan} NaN")
        if n_inf:
            parts.append(f"{n_inf} Inf")
        return " + ".join(parts) + f" of {data.size} elements"

    @staticmethod
    def _locate(data: np.ndarray) -> Dict:
        index = np.argwhere(~np.isfinite(data))
        first = [int(i) for i in index[0]] if len(index) else []
        return {"first_bad_index": first, "bad_count": int(len(index)), "shape": list(data.shape)}

    def _capture_stack(self) -> Tuple[str, ...]:
        # drop the two sanitizer-internal frames (_record + check_*) so the
        # stack ends at the engine call site that created the value
        frames = traceback.format_stack(limit=self.stack_limit + 2)[:-2]
        return tuple(frames)

    def _record(self, kind: str, op: str, message: str, detail: Dict) -> None:
        if len(self.findings) >= self.max_findings:
            return
        finding = SanitizerFinding(kind, op, message, detail, self._capture_stack())
        self.findings.append(finding)
        if self.logger is not None:
            self.logger.anomaly(
                f"sanitizer_{kind}",
                op=op,
                message=message,
                stack="".join(finding.stack[-4:]),
                **detail,
            )
        if self.raise_on_error:
            raise TensorSanitizerError(finding)

    def summary(self) -> str:
        if not self.findings:
            return (
                f"sanitizer: clean ({self.checked_nodes} tape nodes, "
                f"{self.checked_grads} gradient accumulations checked)"
            )
        lines = [
            f"sanitizer: {len(self.findings)} finding(s) over {self.checked_nodes} "
            f"tape nodes / {self.checked_grads} gradient accumulations"
        ]
        lines.extend(f"  {f.render()}" for f in self.findings)
        return "\n".join(lines)


@contextlib.contextmanager
def sanitize(
    logger=None,
    raise_on_error: bool = True,
    alias: bool = False,
    **kwargs,
):
    """Install a :class:`TensorSanitizer` for the duration of the block.

    Nestable — the previous sanitizer (usually None) is restored on exit,
    so a sanitized test cannot leak checks into the rest of the suite::

        with sanitize() as san:
            loss = model(x).sum()
            loss.backward()          # raises TensorSanitizerError on NaN
        assert not san.findings

    ``alias=True`` layers the ownership sanitizer
    (:func:`repro.analysis.alias.alias_guard`) on top: arena
    use-after-release, plan-cache write traps, and tape-pinning checks
    run alongside the numeric ones.  The installed guard is exposed as
    ``sanitizer.alias`` so callers can inspect its findings separately.
    """
    sanitizer = TensorSanitizer(logger=logger, raise_on_error=raise_on_error, **kwargs)
    previous = _engine.set_sanitizer(sanitizer)
    try:
        if alias:
            from repro.analysis.alias import alias_guard

            with alias_guard(logger=logger, raise_on_error=raise_on_error) as guard:
                sanitizer.alias = guard
                yield sanitizer
        else:
            yield sanitizer
    finally:
        _engine.set_sanitizer(previous)
