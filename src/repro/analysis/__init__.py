"""repro.analysis — static analysis and runtime sanitizers for the stack.

Three layers, one goal (trustworthy runs):

- **Lint** (:mod:`~repro.analysis.lint`, :mod:`~repro.analysis.rules`,
  :mod:`~repro.analysis.reporters`) — an AST rule framework with a
  registry, per-rule path allowlists, inline ``# repro: noqa[rule-id]``
  suppressions, and text/JSON reporters.  Run it via
  ``python -m repro.cli lint src`` (or ``python -m repro.analysis src``);
  exit code 1 means findings, making it CI-gateable.
- **Contracts** (:mod:`~repro.analysis.contracts`) — a symbolic abstract
  interpreter verifying declared ``@shape_contract`` decorators on every
  model forward across geometries and both dtype modes *before* any real
  batch runs.  Run it via ``python -m repro.cli check``.
- **Sanitizer** (:mod:`~repro.analysis.sanitizer`) — a debug mode that
  hooks every tape-node creation and gradient accumulation to catch
  NaN/Inf, dtype drift, and double-broadcast surprises at the op that
  caused them, mirrored into :mod:`repro.obs` anomaly events.  Enable
  with :func:`sanitize` or ``repro.cli run --sanitize``; zero overhead
  when off.

The contract checker shares the sanitizer's finding vocabulary
(``dtype_drift``, ``broadcast_surprise``) and the lint reporters — the
same defect reads the same whether caught statically or at runtime.

See ``docs/static-analysis.md`` for the rule catalogue and usage.
"""

from repro.analysis.contracts import (
    AbstractTensor,
    Dim,
    SymExpr,
    Violation,
    check_model,
    check_registry,
    shape_contract,
    trace_module,
)
from repro.analysis.lint import (
    Finding,
    FileContext,
    LintConfig,
    default_config,
    lint_paths,
    stale_allowlist_entries,
)
from repro.analysis.reporters import render_json, render_text, report_as_dict
from repro.analysis.rules import DEFAULT_ALLOWLISTS, Rule, all_rules, register
from repro.analysis.sanitizer import (
    SanitizerFinding,
    TensorSanitizer,
    TensorSanitizerError,
    sanitize,
)

__all__ = [
    "AbstractTensor",
    "DEFAULT_ALLOWLISTS",
    "Dim",
    "FileContext",
    "Finding",
    "LintConfig",
    "Rule",
    "SanitizerFinding",
    "SymExpr",
    "TensorSanitizer",
    "TensorSanitizerError",
    "Violation",
    "all_rules",
    "check_model",
    "check_registry",
    "default_config",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "report_as_dict",
    "sanitize",
    "shape_contract",
    "stale_allowlist_entries",
    "trace_module",
]
