"""repro.analysis — static analysis and runtime sanitizers for the stack.

Two halves, one goal (trustworthy runs):

- **Lint** (:mod:`~repro.analysis.lint`, :mod:`~repro.analysis.rules`,
  :mod:`~repro.analysis.reporters`) — an AST rule framework with a
  registry, per-rule path allowlists, inline ``# repro: noqa[rule-id]``
  suppressions, and text/JSON reporters.  Run it via
  ``python -m repro.cli lint src`` (or ``python -m repro.analysis src``);
  exit code 1 means findings, making it CI-gateable.
- **Sanitizer** (:mod:`~repro.analysis.sanitizer`) — a debug mode that
  hooks every tape-node creation and gradient accumulation to catch
  NaN/Inf, dtype drift, and double-broadcast surprises at the op that
  caused them, mirrored into :mod:`repro.obs` anomaly events.  Enable
  with :func:`sanitize` or ``repro.cli run --sanitize``; zero overhead
  when off.

See ``docs/static-analysis.md`` for the rule catalogue and usage.
"""

from repro.analysis.lint import (
    Finding,
    FileContext,
    LintConfig,
    default_config,
    lint_paths,
    stale_allowlist_entries,
)
from repro.analysis.reporters import render_json, render_text, report_as_dict
from repro.analysis.rules import DEFAULT_ALLOWLISTS, Rule, all_rules, register
from repro.analysis.sanitizer import (
    SanitizerFinding,
    TensorSanitizer,
    TensorSanitizerError,
    sanitize,
)

__all__ = [
    "DEFAULT_ALLOWLISTS",
    "FileContext",
    "Finding",
    "LintConfig",
    "Rule",
    "SanitizerFinding",
    "TensorSanitizer",
    "TensorSanitizerError",
    "all_rules",
    "default_config",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "report_as_dict",
    "sanitize",
    "stale_allowlist_entries",
]
